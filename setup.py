"""Legacy setup shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 517 editable installs fail; this file lets ``pip install -e .`` take
the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
