"""Resilience overhead: the disarmed watchdog/governor must be ~free.

Runs the interval-index benchmark's scan-shaped cell (sequenced MAX,
365-day context) two ways — resilience disarmed (the default: every
check site is two attribute loads and a branch) and armed with
generous budgets (deadline + row/undo/resident limits actually
evaluated at each checkpoint) — and emits ``BENCH_resilience.json``.

The acceptance bar is on the *disarmed* path: ≤3% on this cell against
the ``BENCH_interval_index`` baseline, which the emitted JSON makes
comparable (same dataset, query, strategy, context).  In-run we hold
the armed/disarmed ratio to a loose noise-tolerant bound and report
the measured numbers.

``TAUPSM_RESILIENCE_SIZE=SMALL`` shrinks the dataset for smoke runs.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import print_report
from repro.bench.harness import run_cell
from repro.taubench.queries import QuerySpec
from repro.temporal.stratum import SlicingStrategy

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
CONTEXT_DAYS = 365
ROUNDS = 3  # best-of-N damps scheduler noise

# the BENCH_interval_index cell: scan-shaped, no equality probes
SCAN_QUERY = QuerySpec(
    name="interval_scan",
    feature="sequenced scan without equality probes",
    routines=(),
    build_query=lambda dataset: "SELECT COUNT(*) AS n FROM item",
)

GENEROUS = dict(
    statement_timeout=3600.0,
    max_rows_scanned=10**12,
    max_undo_depth=10**9,
    max_resident_bytes=1 << 40,
)


def _size():
    return os.environ.get("TAUPSM_RESILIENCE_SIZE", "LARGE").strip().upper()


def _measure(dataset, armed):
    db = dataset.stratum.db
    resilience = db.resilience
    checks_before = resilience.checks
    if armed:
        resilience.configure(**GENEROUS)
    else:
        resilience.disable()
    try:
        best = None
        for _ in range(ROUNDS):
            cell = run_cell(
                dataset, SCAN_QUERY, SlicingStrategy.MAX, CONTEXT_DAYS,
                warm=True,
            )
            assert cell.ok, cell.error
            if best is None or cell.seconds < best.seconds:
                best = cell
        return best, resilience.checks - checks_before
    finally:
        resilience.disable()


def test_resilience_overhead(benchmark, request):
    size = _size()
    dataset = request.getfixturevalue(
        "ds1_small" if size == "SMALL" else "ds1_large"
    )
    disarmed, _ = benchmark.pedantic(
        lambda: _measure(dataset, False), rounds=1, iterations=1
    )
    armed, checks = _measure(dataset, True)
    ratio = armed.seconds / disarmed.seconds
    payload = {
        "dataset": f"DS1-{size}",
        "query": SCAN_QUERY.name,
        "strategy": "max",
        "context_days": CONTEXT_DAYS,
        "disarmed_seconds": disarmed.seconds,
        "armed_seconds": armed.seconds,
        "armed_over_disarmed": ratio,
        "watchdog_checks_when_armed": checks,
        "budgets_when_armed": GENEROUS,
        "disabled_path_bar": 1.03,  # vs the BENCH_interval_index cell
        "rows": disarmed.rows,
        "slices": disarmed.slices,
        "rows_scanned": disarmed.rows_scanned,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print_report(
        f"resilience overhead, MAX {SCAN_QUERY.name},"
        f" {CONTEXT_DAYS}-day context (DS1-{size}; best of {ROUNDS}):\n"
        f"  disarmed: {disarmed.seconds:.3f}s\n"
        f"  armed:    {armed.seconds:.3f}s"
        f"  ({checks} watchdog checks)\n"
        f"  armed/disarmed: {ratio:.3f}x  -> {OUTPUT.name}"
    )
    # identical work either way: budgets degrade nothing at this size
    assert armed.rows == disarmed.rows
    assert armed.slices == disarmed.slices
    assert armed.rows_scanned == disarmed.rows_scanned
    # the armed checkpoints really ran
    assert checks > 0
    # noise-tolerant regression bar; the 3% target is tracked in the
    # emitted JSON against the interval-index baseline
    assert ratio < 1.25, "armed-path overhead regressed"
