"""SEQ-SET vs the per-period strategies on routine-free sequenced scans.

MAX pays one engine round-trip per constant period; SEQ-SET aligns each
row onto the constant-period grid once and emits the identical rows in
one pass.  The sweep crosses context length (slice count) with dataset
size (rows per slice) for a routine-free selection — the SEQ-SET
fragment — and adds one routine-bearing cell to show the transparent
MAX fallback costs nothing extra.  Emits ``BENCH_seqset.json``.

Knobs for quicker runs:

* ``TAUPSM_SEQSET_SIZES=SMALL`` — skip the LARGE dataset (CI smoke);
* ``TAUPSM_MAX_CONTEXT=30`` — drop the one-year contexts.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import print_report
from repro.bench.harness import run_cell
from repro.bench.reporting import trace_summary
from repro.taubench import get_query
from repro.taubench.queries import QuerySpec
from repro.temporal.stratum import SlicingStrategy

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_seqset.json"
ROUNDS = 2  # report the best of N to damp scheduler noise

SELECTION_QUERY = QuerySpec(
    name="seqset_selection",
    feature="routine-free sequenced selection (the SEQ-SET fragment)",
    routines=(),
    build_query=lambda dataset: (
        "SELECT i.id, i.price FROM item i WHERE i.price > 50"
    ),
)

# a routine-bearing query: outside the fragment, so requesting SEQ-SET
# must transparently fall back to MAX
ROUTINE_QUERY = get_query("q2")

STRATEGIES = (SlicingStrategy.SEQSET, SlicingStrategy.MAX, SlicingStrategy.PERST)


def _sizes():
    raw = os.environ.get("TAUPSM_SEQSET_SIZES", "SMALL,LARGE")
    return [size.strip().upper() for size in raw.split(",") if size.strip()]


def _contexts():
    cap = int(os.environ.get("TAUPSM_MAX_CONTEXT", "365"))
    return [days for days in (30, 365) if days <= cap]


def _measure(dataset, query, strategy, days):
    best = None
    for _ in range(ROUNDS):
        cell = run_cell(dataset, query, strategy, days, warm=True)
        assert cell.ok, cell.error
        if best is None or cell.seconds < best.seconds:
            best = cell
    return best


def _cell_dict(cell):
    return {
        "seconds": cell.seconds,
        "rows": cell.rows,
        "slices": cell.slices,
        "rows_scanned": cell.rows_scanned,
        "routine_calls": cell.routine_calls,
        "statements": cell.statements,
    }


def test_seqset_vs_per_period(benchmark, request):
    datasets = [
        (size, request.getfixturevalue(f"ds1_{size.lower()}"))
        for size in _sizes()
    ]
    contexts = _contexts()
    cells = []
    lines = []
    for size, dataset in datasets:
        for days in contexts:
            by_strategy = {}
            for strategy in STRATEGIES:
                cell = _measure(dataset, SELECTION_QUERY, strategy, days)
                by_strategy[strategy.value] = cell
                if strategy is SlicingStrategy.SEQSET:
                    # covered shape: the set-oriented pass actually ran
                    assert dataset.stratum.last_strategy is SlicingStrategy.SEQSET
                    assert dataset.stratum.last_fallback is None
            seqset = by_strategy["seqset"]
            max_cell = by_strategy["max"]
            # row-identity with MAX is the whole contract
            assert seqset.rows == max_cell.rows
            assert seqset.slices == max_cell.slices
            cells.append(
                {
                    "dataset": f"DS1-{size}",
                    "context_days": days,
                    **{
                        name: _cell_dict(cell)
                        for name, cell in by_strategy.items()
                    },
                    "speedup_vs_max": max_cell.seconds / seqset.seconds,
                    "speedup_vs_perst": (
                        by_strategy["perst"].seconds / seqset.seconds
                    ),
                }
            )
            lines.append(
                f"  DS1-{size:<5} {days:>3}d:"
                f"  seqset {seqset.seconds:.4f}s"
                f"  max {max_cell.seconds:.4f}s"
                f"  perst {by_strategy['perst'].seconds:.4f}s"
                f"  ({cells[-1]['speedup_vs_max']:.1f}x vs max,"
                f" {seqset.slices} slices, {seqset.rows} rows)"
            )

    # the routine-bearing split: SEQ-SET declines and re-runs under MAX
    # with identical rows — the fallback is transparent, not slower
    largest_size, largest_dataset = datasets[-1]
    largest_days = contexts[-1]
    fallback = _measure(
        largest_dataset, ROUTINE_QUERY, SlicingStrategy.SEQSET, largest_days
    )
    assert largest_dataset.stratum.last_strategy is SlicingStrategy.MAX
    assert largest_dataset.stratum.last_fallback is not None
    max_routine = _measure(
        largest_dataset, ROUTINE_QUERY, SlicingStrategy.MAX, largest_days
    )
    assert fallback.rows == max_routine.rows
    routine_cell = {
        "dataset": f"DS1-{largest_size}",
        "context_days": largest_days,
        "query": ROUTINE_QUERY.name,
        "seqset_fallback": _cell_dict(fallback),
        "max": _cell_dict(max_routine),
        "fallback_overhead": fallback.seconds / max_routine.seconds,
    }
    lines.append(
        f"  DS1-{largest_size:<5} {largest_days:>3}d {ROUTINE_QUERY.name}"
        f" (routine-bearing): seqset->max fallback {fallback.seconds:.4f}s"
        f"  max {max_routine.seconds:.4f}s"
        f"  (overhead {routine_cell['fallback_overhead']:.2f}x)"
    )

    benchmark.pedantic(
        lambda: _measure(
            largest_dataset, SELECTION_QUERY, SlicingStrategy.SEQSET,
            largest_days,
        ),
        rounds=1,
        iterations=1,
    )

    payload = {
        "query": SELECTION_QUERY.name,
        "routine_query": ROUTINE_QUERY.name,
        "strategies": [s.value for s in STRATEGIES],
        "sizes": [size for size, _ in datasets],
        "contexts": contexts,
        "rounds": ROUNDS,
        "cells": cells,
        "routine_bearing": routine_cell,
        "trace_summary": trace_summary(largest_dataset.stratum.db),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print_report(
        f"SEQ-SET vs MAX vs PERST, {SELECTION_QUERY.name}:\n"
        + "\n".join(lines)
        + f"\n  -> {OUTPUT.name}"
    )
    # the acceptance bar: at least 3x over MAX on the largest swept cell
    assert cells[-1]["speedup_vs_max"] >= 3.0
