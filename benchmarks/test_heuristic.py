"""§VII-F: how often PERST wins, and heuristic accuracy.

The paper reports PERST faster in ~70% of its 160 data points, with the
multi-faceted heuristic choosing the wrong strategy ~13% of the time.
We pool measured cells from a Figure-12-style sweep plus the Figure-15
datasets and evaluate the same heuristic over them.
"""

from benchmarks.conftest import print_report
from repro.bench.experiments import (
    fig12_context_small,
    fig15_data_characteristics,
    heuristic_evaluation,
)


def test_heuristic_accuracy(benchmark):
    def run():
        cells = fig12_context_small().cells
        cells += fig15_data_characteristics(context_days=30).cells
        return heuristic_evaluation(cells)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(result.report)
    report = result.report
    assert "heuristic correct" in report
    # parse the correctness percentage and require better than chance
    correct_line = next(
        line for line in report.splitlines() if line.startswith("heuristic correct")
    )
    percent = int(correct_line.split("(")[1].split("%")[0])
    assert percent >= 50
