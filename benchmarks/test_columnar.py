"""Columnar ablation: vectorized filter evaluation vs the row path.

A planner-matched WHERE compiles to column-batch kernels that run over
the table's :class:`~repro.sqlengine.storage.ColumnStore` and return a
selection vector; ``vectorized_filtering_enabled`` switches the scan
back to the interpreted per-row predicate.  The sweep crosses context
length with dataset size — the paper's §VII axes — and emits
``BENCH_columnar.json``.

Both arms run with the interval index disabled so the measured delta is
attributable to the filter evaluation strategy alone (with the index on,
most candidates are pre-pruned before either path sees them).

The same file also records the durability byte volume: each table's
rows JSON-encoded per-row (the legacy checkpoint/WAL layout) vs
transposed through :func:`~repro.sqlengine.wal.encode_rows_columnar`
(the current layout).

Knobs for quicker runs:

* ``TAUPSM_COLUMNAR_SIZES=SMALL`` — skip the LARGE dataset (CI smoke);
* ``TAUPSM_MAX_CONTEXT=30`` — drop the one-year contexts.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import print_report
from repro.bench.harness import run_cell
from repro.bench.reporting import trace_summary
from repro.sqlengine.wal import encode_row, encode_rows_columnar
from repro.taubench.queries import QuerySpec
from repro.temporal.stratum import SlicingStrategy

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"
ROUNDS = 2  # report the best of N to damp scheduler noise

# the PERST algebraic fragment substitutes literal context bounds into
# the overlap predicate, so the scan's whole conjunct set — the user's
# selective price predicate plus the two date bounds — compiles to
# kernels (consumes_all) and the vectorized path applies
FILTER_QUERY = QuerySpec(
    name="columnar_filter",
    feature="sequenced selective scan with a fully kernelized WHERE",
    routines=(),
    build_query=lambda dataset: (
        "SELECT i.id, i.title FROM item i WHERE i.price >= 114.0"
    ),
)


def _sizes():
    raw = os.environ.get("TAUPSM_COLUMNAR_SIZES", "SMALL,LARGE")
    return [size.strip().upper() for size in raw.split(",") if size.strip()]


def _contexts():
    cap = int(os.environ.get("TAUPSM_MAX_CONTEXT", "365"))
    return [days for days in (30, 365) if days <= cap]


def _measure(dataset, days, vectorized):
    """Best-of-ROUNDS cell plus the vectorized counter deltas."""
    db = dataset.stratum.db
    saved_vec = db.vectorized_filtering_enabled
    saved_idx = db.interval_indexing_enabled
    db.vectorized_filtering_enabled = vectorized
    db.interval_indexing_enabled = False
    batches_before = db.obs.value("engine.vectorized_batches")
    pruned_before = db.obs.value("engine.vectorized_rows_pruned")
    try:
        best = None
        for _ in range(ROUNDS):
            cell = run_cell(
                dataset, FILTER_QUERY, SlicingStrategy.PERST, days, warm=True
            )
            assert cell.ok, cell.error
            if best is None or cell.seconds < best.seconds:
                best = cell
        batches = db.obs.value("engine.vectorized_batches") - batches_before
        pruned = db.obs.value("engine.vectorized_rows_pruned") - pruned_before
        return best, batches, pruned
    finally:
        db.vectorized_filtering_enabled = saved_vec
        db.interval_indexing_enabled = saved_idx


def _cell_dict(cell):
    return {
        "seconds": cell.seconds,
        "rows": cell.rows,
        "rows_scanned": cell.rows_scanned,
        "statements": cell.statements,
    }


def _durability_bytes(dataset):
    """Per-row vs transposed JSON volume over the dataset's tables."""
    row_total = 0
    columnar_total = 0
    for table in dataset.stratum.db.catalog.tables():
        if table.temporary:
            continue
        row_total += len(
            json.dumps(
                [encode_row(row) for row in table.rows], separators=(",", ":")
            )
        )
        columnar_total += len(
            json.dumps(encode_rows_columnar(table.rows), separators=(",", ":"))
        )
    return row_total, columnar_total


def test_columnar_ablation(benchmark, request):
    datasets = [
        (size, request.getfixturevalue(f"ds1_{size.lower()}"))
        for size in _sizes()
    ]
    contexts = _contexts()
    cells = []
    lines = []
    for size, dataset in datasets:
        for days in contexts:
            vec, batches, pruned = _measure(dataset, days, True)
            row, row_batches, _ = _measure(dataset, days, False)
            # evaluation strategy only: identical answer either way
            assert vec.rows == row.rows
            assert vec.rows_scanned == row.rows_scanned
            assert batches > 0 and pruned > 0
            assert row_batches == 0
            cells.append(
                {
                    "dataset": f"DS1-{size}",
                    "context_days": days,
                    "vectorized": _cell_dict(vec),
                    "interpreted": _cell_dict(row),
                    "vectorized_batches": batches,
                    "rows_pruned": pruned,
                    "speedup": row.seconds / vec.seconds,
                }
            )
            lines.append(
                f"  DS1-{size:<5} {days:>3}d:"
                f"  vectorized {vec.seconds:.4f}s"
                f"  interpreted {row.seconds:.4f}s"
                f"  speedup {cells[-1]['speedup']:.2f}x"
                f"  ({pruned} rows pruned in {batches} batches)"
            )

    largest_size, largest_dataset = datasets[-1]
    largest_days = contexts[-1]
    benchmark.pedantic(
        lambda: _measure(largest_dataset, largest_days, True),
        rounds=1,
        iterations=1,
    )

    row_bytes, columnar_bytes = _durability_bytes(largest_dataset)
    db = largest_dataset.stratum.db
    payload = {
        "query": FILTER_QUERY.name,
        "strategy": "perst",
        "sizes": [size for size, _ in datasets],
        "contexts": contexts,
        "rounds": ROUNDS,
        "cells": cells,
        "checkpoint_bytes": {
            "dataset": f"DS1-{largest_size}",
            "per_row": row_bytes,
            "columnar": columnar_bytes,
            "ratio": columnar_bytes / row_bytes,
        },
        "bytes_resident": db.refresh_storage_gauges(),
        "trace_summary": trace_summary(db),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print_report(
        f"Sequenced PERST {FILTER_QUERY.name}, vectorized filtering on/off:\n"
        + "\n".join(lines)
        + f"\n  checkpoint bytes: {row_bytes} per-row ->"
        f" {columnar_bytes} columnar"
        f" ({payload['checkpoint_bytes']['ratio']:.2f}x)"
        + f"\n  -> {OUTPUT.name}"
    )
    # acceptance bars: 1.5x on the largest swept cell, smaller snapshots
    assert cells[-1]["speedup"] >= 1.5
    assert columnar_bytes < row_bytes
