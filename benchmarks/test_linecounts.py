"""§VII-B table: lines of SQL before and after each transformation.

The paper: the sixteen original queries totalled ~500 lines; maximal
slicing expanded them to ~1600 (≈3.2x) and per-statement slicing to
~2000 (≈4x).  We regenerate the per-query counts and check the
expansion ordering (original < MAX < PERST in total).
"""

from benchmarks.conftest import print_report
from repro.bench.experiments import line_counts


def test_line_counts(benchmark):
    result = benchmark.pedantic(line_counts, rounds=1, iterations=1)
    print_report(result.report)
    lines = result.report.splitlines()
    total_line = next(line for line in lines if line.startswith("total"))
    parts = total_line.split()
    original, max_lines, perst_lines = int(parts[1]), int(parts[2]), int(parts[3])
    assert original < max_lines < perst_lines
    assert max_lines / original > 1.5  # substantial expansion, like the paper
