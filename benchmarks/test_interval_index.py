"""Interval-index ablation: sequenced MAX with and without scan pruning.

The per-period loop a sequenced MAX statement compiles to stabs each
temporal table once per constant period; with ``interval_indexing_enabled``
the executor serves each stab from the table's interval index instead of
re-scanning every row.  The sweep crosses context length (slice count)
with dataset size (rows per slice) — the two axes the paper's §VII
figures vary — and emits ``BENCH_interval_index.json``.

The measured query is deliberately scan-shaped (an aggregate with no
equality predicate): equality probes are served by the hash index first
and never reach the interval index, so they cannot show this effect.

Knobs for quicker runs:

* ``TAUPSM_INTERVAL_SIZES=SMALL`` — skip the LARGE dataset (CI smoke);
* ``TAUPSM_MAX_CONTEXT=30`` — drop the one-year contexts.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import print_report
from repro.bench.harness import run_cell
from repro.bench.reporting import trace_summary
from repro.taubench.queries import QuerySpec
from repro.temporal.stratum import SlicingStrategy

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_interval_index.json"
ROUNDS = 2  # report the best of N to damp scheduler noise

SCAN_QUERY = QuerySpec(
    name="interval_scan",
    feature="sequenced scan without equality probes",
    routines=(),
    build_query=lambda dataset: "SELECT COUNT(*) AS n FROM item",
)


def _sizes():
    raw = os.environ.get("TAUPSM_INTERVAL_SIZES", "SMALL,LARGE")
    return [size.strip().upper() for size in raw.split(",") if size.strip()]


def _contexts():
    cap = int(os.environ.get("TAUPSM_MAX_CONTEXT", "365"))
    return [days for days in (30, 365) if days <= cap]


def _measure(dataset, days, enabled):
    """Best-of-ROUNDS cell plus the interval-index counter deltas."""
    db = dataset.stratum.db
    saved = db.interval_indexing_enabled
    db.interval_indexing_enabled = enabled
    hits_before = db.obs.value("engine.interval_index_hits")
    pruned_before = db.obs.value("engine.interval_rows_pruned")
    try:
        best = None
        for _ in range(ROUNDS):
            cell = run_cell(
                dataset, SCAN_QUERY, SlicingStrategy.MAX, days, warm=True
            )
            assert cell.ok, cell.error
            if best is None or cell.seconds < best.seconds:
                best = cell
        hits = db.obs.value("engine.interval_index_hits") - hits_before
        pruned = db.obs.value("engine.interval_rows_pruned") - pruned_before
        return best, hits, pruned
    finally:
        db.interval_indexing_enabled = saved


def _cell_dict(cell):
    return {
        "seconds": cell.seconds,
        "rows": cell.rows,
        "slices": cell.slices,
        "rows_scanned": cell.rows_scanned,
        "statements": cell.statements,
    }


def test_interval_index_ablation(benchmark, request):
    datasets = [
        (size, request.getfixturevalue(f"ds1_{size.lower()}"))
        for size in _sizes()
    ]
    contexts = _contexts()
    cells = []
    lines = []
    for size, dataset in datasets:
        for days in contexts:
            indexed, hits, pruned = _measure(dataset, days, True)
            linear, _, _ = _measure(dataset, days, False)
            # pruning only: identical answer over strictly fewer rows
            assert indexed.rows == linear.rows
            assert indexed.slices == linear.slices
            assert hits > 0 and pruned > 0
            assert indexed.rows_scanned < linear.rows_scanned
            cells.append(
                {
                    "dataset": f"DS1-{size}",
                    "context_days": days,
                    "indexed": _cell_dict(indexed),
                    "linear": _cell_dict(linear),
                    "interval_index_hits": hits,
                    "rows_pruned": pruned,
                    "speedup": linear.seconds / indexed.seconds,
                }
            )
            lines.append(
                f"  DS1-{size:<5} {days:>3}d:"
                f"  indexed {indexed.seconds:.4f}s"
                f"  linear {linear.seconds:.4f}s"
                f"  speedup {cells[-1]['speedup']:.2f}x"
                f"  ({indexed.rows_scanned} vs {linear.rows_scanned}"
                f" rows scanned, {indexed.slices} slices)"
            )

    # feed pytest-benchmark the largest swept cell's indexed timing
    largest_size, largest_dataset = datasets[-1]
    largest_days = contexts[-1]
    benchmark.pedantic(
        lambda: _measure(largest_dataset, largest_days, True),
        rounds=1,
        iterations=1,
    )

    payload = {
        "query": SCAN_QUERY.name,
        "strategy": "max",
        "sizes": [size for size, _ in datasets],
        "contexts": contexts,
        "rounds": ROUNDS,
        "cells": cells,
        "trace_summary": trace_summary(largest_dataset.stratum.db),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print_report(
        f"Sequenced MAX {SCAN_QUERY.name}, interval index on/off:\n"
        + "\n".join(lines)
        + f"\n  -> {OUTPUT.name}"
    )
    # the acceptance bar: at least 2x on the largest swept cell
    assert cells[-1]["speedup"] >= 2.0
