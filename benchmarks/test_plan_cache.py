"""Two-phase execution ablation: MAX with and without the plan layer.

DS1-SMALL with a one-year context yields dozens of constant periods;
with `plan_caching_enabled` the per-period loop binds each statement
once and reuses the plan (and the stratum reuses the transformation),
without it every period re-walks the raw AST.  Emits
``BENCH_plan_cache.json`` with the wall times and counters.
"""

import json
from pathlib import Path

from benchmarks.conftest import print_report
from repro.bench.harness import run_cell
from repro.bench.reporting import trace_summary
from repro.taubench import get_query
from repro.temporal.stratum import SlicingStrategy

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_plan_cache.json"
CONTEXT_DAYS = 365
ROUNDS = 2  # report the best of N to damp scheduler noise


def _measure(dataset, query, enabled):
    db = dataset.stratum.db
    saved = db.plan_caching_enabled
    db.plan_caching_enabled = enabled
    db.plan_cache.clear()
    db.expr_cache.clear()
    dataset.stratum._transform_cache.clear()
    try:
        best = None
        for _ in range(ROUNDS):
            cell = run_cell(
                dataset, query, SlicingStrategy.MAX, CONTEXT_DAYS, warm=True
            )
            assert cell.ok, cell.error
            if best is None or cell.seconds < best.seconds:
                best = cell
        return best
    finally:
        db.plan_caching_enabled = saved


def _cell_dict(cell):
    return {
        "seconds": cell.seconds,
        "rows": cell.rows,
        "routine_calls": cell.routine_calls,
        "statements": cell.statements,
        "plans_compiled": cell.plans_compiled,
        "plan_cache_hits": cell.plan_cache_hits,
        "transform_cache_hits": cell.transform_cache_hits,
    }


def test_plan_cache_ablation(benchmark, ds1_small):
    query = get_query("q2")
    disabled = _measure(ds1_small, query, False)
    cached = benchmark.pedantic(
        lambda: _measure(ds1_small, query, True), rounds=1, iterations=1
    )
    payload = {
        "dataset": "DS1-SMALL",
        "query": query.name,
        "strategy": "max",
        "context_days": CONTEXT_DAYS,
        "cached": _cell_dict(cached),
        "cache_disabled": _cell_dict(disabled),
        "speedup": disabled.seconds / cached.seconds,
        "trace_summary": trace_summary(ds1_small.stratum.db),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print_report(
        f"MAX {query.name}, {CONTEXT_DAYS}-day context (DS1-SMALL):\n"
        f"  cached:         {cached.seconds:.3f}s"
        f"  ({cached.plans_compiled} plans compiled,"
        f" {cached.plan_cache_hits} plan-cache hits,"
        f" {cached.transform_cache_hits} transform-cache hits)\n"
        f"  cache-disabled: {disabled.seconds:.3f}s\n"
        f"  speedup:        {payload['speedup']:.2f}x"
        f"  -> {OUTPUT.name}"
    )
    # the whole point of the refactor: cached is strictly faster
    assert cached.seconds < disabled.seconds
    assert cached.plan_cache_hits > 0
    assert cached.transform_cache_hits > 0
    # identical work, fewer compilations
    assert cached.rows == disabled.rows
    assert cached.routine_calls == disabled.routine_calls
