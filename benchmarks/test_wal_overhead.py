"""WAL overhead: commit throughput and the cost of the disabled path.

Three insert workloads — durability off, WAL buffered (no fsync), WAL
with full fsync discipline — plus a read-only query cell with and
without durability attached (reads never log, so that ratio is the pure
cost of the ``txn.wal is not None`` checks sitting in the primitives).
Emits ``BENCH_wal_overhead.json``.

The design target is on the disabled paths: a database that never
attaches durability, and reads on one that has, must pay (near)
nothing.  fsync throughput is hardware truth and is reported, not
bounded.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import print_report
from repro.bench.harness import run_cell
from repro.sqlengine.engine import Database
from repro.taubench import get_query
from repro.taubench.io import copy_dataset_into
from repro.temporal.stratum import SlicingStrategy, TemporalStratum

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_wal_overhead.json"
ROWS = 400
ROUNDS = 3
CONTEXT_DAYS = 30


def _time_inserts(make_db):
    best = None
    for _ in range(ROUNDS):
        db = make_db()
        db.execute("CREATE TABLE bench (id INTEGER, pad CHAR(20))")
        start = time.perf_counter()
        for i in range(ROWS):
            db.execute(f"INSERT INTO bench VALUES ({i}, 'padpadpad')")
        elapsed = time.perf_counter() - start
        db.close()
        if best is None or elapsed < best:
            best = elapsed
    return best


def _time_query(dataset, query):
    best = None
    for _ in range(ROUNDS):
        cell = run_cell(
            dataset, query, SlicingStrategy.MAX, CONTEXT_DAYS, warm=True
        )
        assert cell.ok, cell.error
        if best is None or cell.seconds < best.seconds:
            best = cell
    return best


def test_wal_overhead(benchmark, ds1_small, tmp_path):
    counter = [0]

    def durable(sync):
        def make():
            counter[0] += 1
            return Database.open(
                tmp_path / f"d{counter[0]}", sync=sync,
                auto_checkpoint_bytes=1 << 40,
            )

        return make

    off_seconds = benchmark.pedantic(
        lambda: _time_inserts(Database), rounds=1, iterations=1
    )
    buffered_seconds = _time_inserts(durable(False))
    synced_seconds = _time_inserts(durable(True))

    # checkpoint cost for the workload's WAL
    db = Database.open(tmp_path / "ckpt", sync=False)
    db.execute("CREATE TABLE bench (id INTEGER, pad CHAR(20))")
    for i in range(ROWS):
        db.execute(f"INSERT INTO bench VALUES ({i}, 'padpadpad')")
    wal_bytes = db.durability.wal_size()
    start = time.perf_counter()
    db.checkpoint()
    checkpoint_seconds = time.perf_counter() - start
    db.close(checkpoint=False)

    # read path: identical query cell, durability attached vs not
    query = get_query("q2")
    plain_cell = _time_query(ds1_small, query)
    durable_ds = copy_dataset_into(
        TemporalStratum.open(tmp_path / "ds"), ds1_small
    )
    durable_cell = _time_query(durable_ds, query)
    durable_ds.stratum.close()
    read_ratio = durable_cell.seconds / plain_cell.seconds

    payload = {
        "rows": ROWS,
        "insert_off_seconds": off_seconds,
        "insert_wal_buffered_seconds": buffered_seconds,
        "insert_wal_fsync_seconds": synced_seconds,
        "wal_buffered_over_off": buffered_seconds / off_seconds,
        "wal_fsync_over_off": synced_seconds / off_seconds,
        "checkpoint_seconds": checkpoint_seconds,
        "checkpoint_wal_bytes": wal_bytes,
        "read_query": query.name,
        "read_plain_seconds": plain_cell.seconds,
        "read_durable_seconds": durable_cell.seconds,
        "read_durable_over_plain": read_ratio,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print_report(
        f"WAL overhead ({ROWS} autocommit inserts; best of {ROUNDS}):\n"
        f"  durability off:       {off_seconds:.3f}s\n"
        f"  WAL, no fsync:        {buffered_seconds:.3f}s"
        f"  ({payload['wal_buffered_over_off']:.2f}x)\n"
        f"  WAL, fsync/commit:    {synced_seconds:.3f}s"
        f"  ({payload['wal_fsync_over_off']:.2f}x)\n"
        f"  checkpoint of {wal_bytes}B WAL: {checkpoint_seconds*1e3:.1f}ms\n"
        f"  read {query.name} durable/plain: {read_ratio:.2f}x"
        f"  -> {OUTPUT.name}"
    )
    # identical answers regardless of durability
    assert durable_cell.rows == plain_cell.rows
    assert durable_cell.slices == plain_cell.slices
    # reads never touch the log
    assert read_ratio < 1.25, "disabled-path read overhead regressed"
