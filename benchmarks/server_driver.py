"""Client-side load driver for the server benchmark.

Runs as a SEPARATE process so the clients' frame encoding/decoding and
socket work happen under their own interpreter (and GIL) — exactly like
real remote clients — and can overlap with the server's worker thread.

Each client runs a closed loop: issue the query, await the response,
then wait ``RTT_MS`` milliseconds before the next request — the
standard think-time model, emulating the client-side round-trip latency
a LAN/WAN deployment would see (loopback's is only a few microseconds,
which would hide the very idle time pipelining exists to fill).

Usage: python server_driver.py HOST PORT N_CLIENTS READS_PER_CLIENT RTT_MS SQL

Prints one JSON line: {"reads": ..., "seconds": ...}.
"""

import asyncio
import json
import sys
import time

from repro.server.client import ReproClient


async def main() -> None:
    host = sys.argv[1]
    port = int(sys.argv[2])
    n_clients = int(sys.argv[3])
    reads = int(sys.argv[4])
    rtt = float(sys.argv[5]) / 1000.0
    query = sys.argv[6]
    clients = [await ReproClient.connect(host, port) for _ in range(n_clients)]
    for client in clients:  # warm the server's plan cache untimed
        await client.execute(query)

    async def drive(client):
        for _ in range(reads):
            await client.execute(query)
            if rtt:
                await asyncio.sleep(rtt)

    start = time.perf_counter()
    await asyncio.gather(*[drive(c) for c in clients])
    elapsed = time.perf_counter() - start
    for client in clients:
        await client.close()
    print(json.dumps({"reads": n_clients * reads, "seconds": elapsed}))


if __name__ == "__main__":
    asyncio.run(main())
