"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Table-function memoization** — PERST joins the invoking query with
   ``TABLE(ps_f(args, bt, et))``; a DBMS reuses the result for repeated
   argument tuples.  Disabling the memo shows how much of PERST's
   flatness it provides (and that correctness is unaffected).
2. **Constant-period computation route** — the stratum precomputes cp
   natively (sort + adjacent pairs); the paper's Figure-8 SQL is a
   quadratic self-join with NOT EXISTS.  Timing both quantifies why the
   precomputation lives in the stratum.
"""

import pytest

from benchmarks.conftest import print_report
from repro.bench.harness import run_cell
from repro.taubench import get_query
from repro.temporal.constant_periods import (
    materialize_constant_periods,
    materialize_constant_periods_via_sql,
)
from repro.temporal.stratum import SlicingStrategy


@pytest.mark.parametrize("memoize", [True, False], ids=["memo", "no-memo"])
def test_ablation_table_function_memo(benchmark, ds1_small, memoize):
    query = get_query("q2")
    query.install(ds1_small)
    db = ds1_small.stratum.db
    saved = db.memoize_table_functions
    db.memoize_table_functions = memoize
    try:
        def run():
            return run_cell(
                ds1_small, query, SlicingStrategy.PERST, 90, warm=False
            )

        cell = benchmark.pedantic(run, rounds=1, iterations=1)
        assert cell.ok and cell.rows > 0
        print_report(
            f"PERST q2, 90-day context, memoization={memoize}:"
            f" {cell.seconds:.3f}s, {cell.routine_calls} routine calls"
        )
    finally:
        db.memoize_table_functions = saved


@pytest.mark.parametrize("route", ["native", "figure8-sql"])
def test_ablation_cp_route(benchmark, ds1_small, route):
    stratum = ds1_small.stratum
    context = ds1_small.context(90)
    tables = ["item", "item_author"]

    if route == "native":
        def run():
            return materialize_constant_periods(
                stratum.db, tables, stratum.registry, context, "cp_ablation"
            )
    else:
        def run():
            return materialize_constant_periods_via_sql(
                stratum.db, tables, stratum.registry, context, "cp_ablation"
            )

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count > 0
    print_report(f"constant periods via {route}: {count} periods")
