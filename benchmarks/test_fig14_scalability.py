"""Figure 14: running time vs dataset size (SMALL / MEDIUM / LARGE).

DS1 at a fixed one-month context.  Expected shape: running times grow
with dataset size for both strategies (the paper saw two MAX exceptions
caused by DB2 plan changes, which an interpreter does not reproduce).
"""

from benchmarks.conftest import print_report
from repro.bench.experiments import fig14_scalability


def test_fig14_series(benchmark):
    result = benchmark.pedantic(
        fig14_scalability, kwargs={"context_days": 30}, rounds=1, iterations=1
    )
    print_report(result.report)
    by_key = {(c.query, c.strategy, c.dataset): c for c in result.cells}
    # growth: LARGE at least as slow as SMALL for the headline query
    for strategy in ("max", "perst"):
        small = by_key.get(("q2", strategy, "SMALL"))
        large = by_key.get(("q2", strategy, "LARGE"))
        if small and large and small.ok and large.ok:
            assert large.seconds >= small.seconds * 0.5  # monotone modulo noise
