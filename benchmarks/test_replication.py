"""Replication lag and replica read throughput.

A real primary/standby pair (two servers, one WAL-shipping link over
loopback) is driven at several paced write rates.  For every commit we
record the primary-side commit instant and the instant the standby's
``applied_csn`` first covers it (5 ms polling), giving steady-state
replication lag in both commit sequence numbers and seconds.  A second
phase compares sequential read throughput on the standby against the
primary — the replica serves snapshot reads at its applied csn, so the
two should be in the same band.  Emits ``BENCH_replication.json``.
"""

import asyncio
import json
import time
from pathlib import Path

from benchmarks.conftest import print_report
from repro.server import ReproClient, ReproServer, StandbyManager
from repro.temporal.stratum import TemporalStratum

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_replication.json"
WRITE_RATES = (25, 100, 400)  # writes/second (asks; loopback can exceed)
WRITES_PER_RATE = 80
READS = 250
QUERY = "SELECT v FROM t WHERE id = 7"


async def _paced_writes(client, rate, count, commits, primary_db):
    interval = 1.0 / rate
    next_at = time.perf_counter()
    for i in range(count):
        delay = next_at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        next_at += interval
        await client.execute(
            f"UPDATE t SET v = 'w{i}' WHERE id = {i % 50}"
        )
        commits.append(
            (primary_db.durability.txn_counter, time.perf_counter())
        )


async def _watch_applied(applier, applied_at, stop):
    seen = applier.applied_csn
    while not stop.is_set():
        current = applier.applied_csn
        if current != seen:
            now = time.perf_counter()
            for seq in range(seen + 1, current + 1):
                applied_at[seq] = now
            seen = current
        await asyncio.sleep(0.005)


async def _lag_phase(pc, primary_db, manager, rate):
    commits = []
    applied_at = {}
    stop = asyncio.Event()
    watcher = asyncio.ensure_future(
        _watch_applied(manager.applier, applied_at, stop)
    )
    start = time.perf_counter()
    await _paced_writes(pc, rate, WRITES_PER_RATE, commits, primary_db)
    last_seq = commits[-1][0]
    while manager.applier.applied_csn < last_seq:
        await asyncio.sleep(0.005)
    stop.set()
    await watcher
    elapsed = time.perf_counter() - start
    lags = [
        applied_at[seq] - committed
        for seq, committed in commits
        if seq in applied_at
    ]
    lags.sort()
    lag_csn_samples = [
        max(0, seq - manager.applier.applied_csn) for seq, _ in commits
    ]
    return {
        "write_rate_asked": rate,
        "write_rate_achieved": len(commits) / elapsed,
        "commits": len(commits),
        "lag_seconds_p50": lags[len(lags) // 2],
        "lag_seconds_p95": lags[int(len(lags) * 0.95)],
        "lag_seconds_max": lags[-1],
        "final_lag_csn": lag_csn_samples[-1],
    }


async def _read_phase(client, label, min_csn=None):
    if min_csn is not None:  # make the replica read at the latest csn
        await client.execute(QUERY, min_csn=min_csn, wait=10.0)
    start = time.perf_counter()
    for _ in range(READS):
        await client.execute(QUERY)
    elapsed = time.perf_counter() - start
    return {"side": label, "reads": READS, "seconds": elapsed,
            "reads_per_sec": READS / elapsed}


async def _sweep(base_dir):
    p_stratum = TemporalStratum.open(
        base_dir / "p", auto_checkpoint_bytes=1 << 40
    )
    primary = ReproServer(p_stratum)
    await primary.start()
    pc = await ReproClient.connect(primary.host, primary.port)
    await pc.execute("CREATE TABLE t (id INT, v VARCHAR(16))")
    for i in range(50):
        await pc.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")

    s_stratum = TemporalStratum.open(base_dir / "s")
    standby_srv = ReproServer(s_stratum)
    await standby_srv.start()
    manager = StandbyManager(
        standby_srv, primary.host, primary.port, poll_wait=1.0
    )
    await manager.start()
    sc = await ReproClient.connect(standby_srv.host, standby_srv.port)
    await sc.execute(
        QUERY, min_csn=p_stratum.db.durability.txn_counter, wait=10.0
    )

    lag_series = []
    for rate in WRITE_RATES:
        lag_series.append(await _lag_phase(pc, p_stratum.db, manager, rate))

    reads = [
        await _read_phase(pc, "primary"),
        await _read_phase(
            sc, "standby", min_csn=p_stratum.db.durability.txn_counter
        ),
    ]

    frames = s_stratum.db.obs.value("replication.batches_applied")
    await sc.close()
    await pc.close()
    await standby_srv.shutdown()
    await primary.shutdown()
    s_stratum.db.close(checkpoint=False)
    p_stratum.db.close()
    return lag_series, reads, frames


def test_replication_lag_and_replica_reads(benchmark, tmp_path):
    lag_series, reads, batches = benchmark.pedantic(
        lambda: asyncio.run(_sweep(tmp_path)), rounds=1, iterations=1
    )
    payload = {
        "writes_per_rate": WRITES_PER_RATE,
        "lag_vs_write_rate": lag_series,
        "read_throughput": reads,
        "standby_batches_applied": batches,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    lag_lines = [
        f"  {cell['write_rate_asked']:4d} w/s asked"
        f" ({cell['write_rate_achieved']:6.1f} achieved):"
        f" lag p50 {cell['lag_seconds_p50'] * 1000:6.1f} ms,"
        f" p95 {cell['lag_seconds_p95'] * 1000:6.1f} ms,"
        f" final lag {cell['final_lag_csn']} csn"
        for cell in lag_series
    ]
    read_lines = [
        f"  {cell['side']:8s}: {cell['reads_per_sec']:8.0f} reads/s"
        for cell in reads
    ]
    print_report(
        "replication lag vs write rate:\n" + "\n".join(lag_lines)
        + "\nread throughput (sequential, one client):\n"
        + "\n".join(read_lines)
        + f"\n  -> {OUTPUT.name}"
    )
    # every commit eventually applied, at every rate
    assert all(cell["final_lag_csn"] == 0 for cell in lag_series)
    # the replica must serve reads in the primary's band (not stalled
    # behind the apply loop); generous 3x floor to stay CI-stable
    primary_rps = reads[0]["reads_per_sec"]
    standby_rps = reads[1]["reads_per_sec"]
    assert standby_rps > primary_rps / 3, (primary_rps, standby_rps)
