"""Benchmark fixtures.

Every figure bench prints the regenerated series table (the rows the
paper's figure plots) and feeds pytest-benchmark one representative
timing.  Knobs for quicker runs:

* ``TAUPSM_QUERIES=q2,q7`` — restrict to a query subset;
* ``TAUPSM_MAX_CONTEXT=30`` — drop the one-year contexts;
* ``TAUPSM_FIG13_SIZE=MEDIUM`` — shrink Figure 13's dataset.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def ds1_small():
    from repro.taubench import build_dataset

    return build_dataset("DS1", "SMALL")


@pytest.fixture(scope="session")
def ds1_large():
    from repro.taubench import build_dataset

    return build_dataset("DS1", "LARGE")


def print_report(report: str) -> None:
    print()
    print("=" * 78)
    print(report)
    print("=" * 78)
