"""Figure 12: running time vs temporal-context length, DS1-SMALL.

Regenerates the full MAX/PERST series for all sixteen queries over
contexts of one day, one week, one month and one year, prints the
series table plus the §VII-C class (A/B/C/D) of each query, and
benchmarks the paper's headline cells (q2 at one day and one year under
both strategies — the crossover the paper walks through numerically).
"""

import pytest

from benchmarks.conftest import print_report
from repro.bench.experiments import fig12_context_small
from repro.bench.harness import run_cell
from repro.taubench import get_query
from repro.temporal.stratum import SlicingStrategy


def test_fig12_series(benchmark):
    result = benchmark.pedantic(fig12_context_small, rounds=1, iterations=1)
    print_report(result.report)
    ok_cells = [c for c in result.cells if c.ok]
    assert ok_cells, "figure 12 produced no measurable cells"
    assert all(c.rows > 0 for c in ok_cells)


@pytest.mark.parametrize("strategy", [SlicingStrategy.MAX, SlicingStrategy.PERST],
                         ids=["max", "perst"])
@pytest.mark.parametrize("days", [1, 365], ids=["1day", "1year"])
def test_fig12_q2_cell(benchmark, ds1_small, strategy, days):
    query = get_query("q2")
    query.install(ds1_small)

    def run():
        return run_cell(ds1_small, query, strategy, days, warm=False)

    cell = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cell.ok and cell.rows > 0
