"""Tracing overhead: the disabled path must be (near) free.

Runs the plan-cache benchmark's cell three ways — tracer disabled (the
default), then enabled — and emits ``BENCH_tracing_overhead.json``.
The acceptance bar is on the *disabled* path: instrumentation sitting
in the hot loops (span call sites, scan counters, undo-depth gauge)
must not measurably slow normal execution.  Enabled tracing allocates
real span trees, so it is reported but only loosely bounded.
"""

import json
from pathlib import Path

from benchmarks.conftest import print_report
from repro.bench.harness import run_cell
from repro.bench.reporting import trace_summary
from repro.taubench import get_query
from repro.temporal.stratum import SlicingStrategy

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_tracing_overhead.json"
CONTEXT_DAYS = 365
ROUNDS = 3  # best-of-N damps scheduler noise


def _measure(dataset, query, traced):
    db = dataset.stratum.db
    saved = db.tracer.enabled
    db.tracer.enabled = traced
    try:
        best = None
        for _ in range(ROUNDS):
            cell = run_cell(
                dataset, query, SlicingStrategy.MAX, CONTEXT_DAYS, warm=True
            )
            assert cell.ok, cell.error
            if best is None or cell.seconds < best.seconds:
                best = cell
        return best
    finally:
        db.tracer.enabled = saved


def test_tracing_overhead(benchmark, ds1_small):
    query = get_query("q2")
    disabled = benchmark.pedantic(
        lambda: _measure(ds1_small, query, False), rounds=1, iterations=1
    )
    enabled = _measure(ds1_small, query, True)
    root = ds1_small.stratum.db.tracer.last_root
    payload = {
        "dataset": "DS1-SMALL",
        "query": query.name,
        "strategy": "max",
        "context_days": CONTEXT_DAYS,
        "disabled_seconds": disabled.seconds,
        "enabled_seconds": enabled.seconds,
        "enabled_over_disabled": enabled.seconds / disabled.seconds,
        "spans_when_enabled": sum(1 for _ in root.walk()) if root else 0,
        "trace_summary": trace_summary(ds1_small.stratum.db),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print_report(
        f"tracing overhead, MAX {query.name}, {CONTEXT_DAYS}-day context"
        f" (DS1-SMALL):\n"
        f"  tracer disabled: {disabled.seconds:.3f}s\n"
        f"  tracer enabled:  {enabled.seconds:.3f}s"
        f"  ({payload['spans_when_enabled']} spans)\n"
        f"  enabled/disabled: {payload['enabled_over_disabled']:.2f}x"
        f"  -> {OUTPUT.name}"
    )
    # identical work either way
    assert enabled.rows == disabled.rows
    assert enabled.routine_calls == disabled.routine_calls
    assert enabled.slices == disabled.slices
    # a real span tree exists when enabled
    assert root is not None
    assert (
        root.find("stratum.max.loop") is not None
        or root.find("stratum.max.execute") is not None
    )
