"""Server throughput: aggregate reads/sec versus connected client count.

The server executes every statement on ONE worker thread, so scaling
does not come from parallel query execution — it comes from pipelining:
while the worker runs one client's statement, the next clients'
requests are already queued, so the worker never idles waiting out a
round-trip.  The clients live in a separate driver process
(``server_driver.py``) with its own interpreter, exactly like real
remote clients, and each runs a closed loop with an emulated
client-side round-trip latency of ``RTT_MS`` (disclosed in the payload;
loopback's real RTT is a few microseconds, which would hide the very
idle time pipelining exists to fill).  With one client the server idles
for the whole RTT of every cycle; with eight, seven other requests fill
it, and throughput climbs until the worker saturates.  The sweep
measures aggregate read throughput for 1, 2, 4 and 8 clients and emits
``BENCH_server.json``.

A second phase runs a 4-reader fleet while a writer session holds an
uncommitted update open on the very table being read: MVCC snapshot
reads must keep flowing — and keep returning only the pre-image — for
the whole window.
"""

import asyncio
import json
import os
import sys
import time
from pathlib import Path

from benchmarks.conftest import print_report
from repro.server import ReproClient, ReproServer
from repro.temporal.stratum import TemporalStratum

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_server.json"
DRIVER = Path(__file__).resolve().with_name("server_driver.py")
CLIENT_COUNTS = (1, 2, 4, 8)
READS_PER_CLIENT = 200
RTT_MS = 2.0  # emulated client-side round-trip latency per request
QUERY = "SELECT v FROM t WHERE id = 1"
ROUNDS = 3  # best-of, to damp scheduler noise


def _build_stratum():
    stratum = TemporalStratum()
    stratum.execute("CREATE TABLE t (id INT, v VARCHAR(10))")
    for i in range(100):
        stratum.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
    return stratum


def _driver_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


async def _driver_phase(host, port, n_clients):
    proc = await asyncio.create_subprocess_exec(
        sys.executable,
        str(DRIVER),
        host,
        str(port),
        str(n_clients),
        str(READS_PER_CLIENT),
        str(RTT_MS),
        QUERY,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env=_driver_env(),
    )
    out, err = await proc.communicate()
    assert proc.returncode == 0, err.decode()
    cell = json.loads(out)
    cell["clients"] = n_clients
    cell["reads_per_sec"] = cell["reads"] / cell["seconds"]
    return cell


async def _writer_window_phase(host, port):
    """Snapshot reads progress while a writer holds an open transaction."""
    writer = await ReproClient.connect(host, port)
    readers = [await ReproClient.connect(host, port) for _ in range(4)]
    for c in readers:
        await c.execute(QUERY)
    await writer.execute("BEGIN")
    await writer.execute("UPDATE t SET v = 'dirty' WHERE id = 1")

    async def drive(client):
        seen = set()
        for _ in range(25):
            result = await client.execute(QUERY)
            seen.add(result.scalar())
        return seen

    start = time.perf_counter()
    observed = await asyncio.gather(*[drive(c) for c in readers])
    elapsed = time.perf_counter() - start
    await writer.execute("ROLLBACK")
    await writer.close()
    for c in readers:
        await c.close()
    values = set().union(*observed)
    return {
        "reads_during_open_txn": 4 * 25,
        "seconds": elapsed,
        "distinct_values_observed": sorted(values),
    }


async def _sweep():
    stratum = _build_stratum()
    server = ReproServer(stratum)
    host, port = await server.start()
    series = []
    for n in CLIENT_COUNTS:
        best = None
        for _ in range(ROUNDS):
            cell = await _driver_phase(host, port, n)
            if best is None or cell["reads_per_sec"] > best["reads_per_sec"]:
                best = cell
        series.append(best)
    window = await _writer_window_phase(host, port)
    await server.shutdown()
    return series, window


def test_server_read_throughput_scales_with_clients(benchmark):
    series, window = benchmark.pedantic(
        lambda: asyncio.run(_sweep()), rounds=1, iterations=1
    )
    base = series[0]["reads_per_sec"]
    peak = max(cell["reads_per_sec"] for cell in series)
    payload = {
        "query": QUERY,
        "reads_per_client": READS_PER_CLIENT,
        "emulated_client_rtt_ms": RTT_MS,
        "series": series,
        "scaling": peak / base,
        "writer_window": window,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [
        f"  {cell['clients']} client(s): {cell['reads_per_sec']:8.0f} reads/s"
        f"  ({cell['reads']} reads in {cell['seconds']:.3f}s)"
        for cell in series
    ]
    print_report(
        "server read throughput vs client count:\n"
        + "\n".join(lines)
        + f"\n  scaling (peak/1-client): {payload['scaling']:.2f}x"
        + f"\n  reads during open writer txn: "
        + f"{window['reads_during_open_txn']} in {window['seconds']:.3f}s"
        + f"\n  -> {OUTPUT.name}"
    )
    # pipelining must actually buy throughput over the 1-client baseline
    assert payload["scaling"] >= 1.25, payload["scaling"]
    # and an open write transaction never stalls (or dirties) readers:
    # every one of the 100 reads completed and saw only the pre-image
    assert window["distinct_values_observed"] == ["v1"]
