"""Figure 15: data characteristics — DS1 vs DS2 vs DS3 (all SMALL).

DS1: weekly changes, uniform victims.  DS2: weekly, Gaussian hot spots.
DS3: daily changes (693 slices, same total change count).  Expected
shapes (paper §VII-E): DS1 ≈ DS2 overall; DS3 slower, dominated by the
slice count, especially for MAX; MAX on q2/q2b *faster* on DS2 because
those queries probe a cold (non-hot-spot) row with fewer versions.
"""

from benchmarks.conftest import print_report
from repro.bench.experiments import fig15_data_characteristics


def test_fig15_series(benchmark):
    result = benchmark.pedantic(
        fig15_data_characteristics, kwargs={"context_days": 30},
        rounds=1, iterations=1,
    )
    print_report(result.report)
    by_key = {(c.query, c.strategy, c.dataset): c for c in result.cells}
    # the number of slices dominates MAX: DS3 slower than DS1 on q2
    ds1 = by_key.get(("q2", "max", "DS1"))
    ds3 = by_key.get(("q2", "max", "DS3"))
    if ds1 and ds3 and ds1.ok and ds3.ok:
        assert ds3.seconds > ds1.seconds
