"""Figure 13: running time vs temporal-context length, DS1-LARGE.

The same sweep as Figure 12 on the ten-times-larger dataset.  The
paper's expectations, all checked in EXPERIMENTS.md: MAX grows roughly
linearly with context length; PERST stays near-flat except for the
per-period cursor queries (q7/q7b); q17b has no PERST timing anywhere.
"""

import pytest

from benchmarks.conftest import print_report
from repro.bench.experiments import fig13_context_large
from repro.bench.harness import run_cell
from repro.taubench import get_query
from repro.temporal.stratum import SlicingStrategy


def test_fig13_series(benchmark):
    result = benchmark.pedantic(fig13_context_large, rounds=1, iterations=1)
    print_report(result.report)
    by_key = {(c.query, c.strategy, c.context_days): c for c in result.cells}
    # q17b is MAX-only everywhere (paper §VII-A2)
    q17b_perst = [
        c for c in result.cells if c.query == "q17b" and c.strategy == "perst"
    ]
    assert all(c.inapplicable for c in q17b_perst)
    # MAX grows with context length for the paper's running example
    q2_max = [
        by_key[("q2", "max", d)] for d in (1, 365)
        if ("q2", "max", d) in by_key
    ]
    if len(q2_max) == 2:
        assert q2_max[1].seconds > q2_max[0].seconds


@pytest.mark.parametrize("strategy", [SlicingStrategy.MAX, SlicingStrategy.PERST],
                         ids=["max", "perst"])
def test_fig13_q2_one_year_cell(benchmark, ds1_large, strategy):
    query = get_query("q2")
    query.install(ds1_large)

    def run():
        return run_cell(ds1_large, query, strategy, 365, warm=False)

    cell = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cell.ok and cell.rows > 0
