"""MAX vs PERST: the crossover the performance study revolves around.

Runs the paper's q2 on the τPSM DS1-SMALL dataset across temporal
contexts from one day to one year, printing running time and routine
invocations for each strategy, plus what the §VII-F heuristic would
pick.  Expect MAX to win for the shortest contexts and PERST to win —
and stay nearly flat — as the context grows.

Run:  python examples/slicing_tradeoff.py
"""

from repro.bench.harness import context_bounds, run_cell
from repro.sqlengine.parser import parse_statement
from repro.taubench import build_dataset, get_query
from repro.temporal.heuristic import choose_strategy
from repro.temporal.stratum import SlicingStrategy

CONTEXTS = [1, 7, 30, 90, 365]

print("building DS1-SMALL ...")
dataset = build_dataset("DS1", "SMALL")
query = get_query("q2")
query.install(dataset)

header = (
    f"{'context':>8}  {'MAX s':>8}  {'PERST s':>8}"
    f"  {'MAX calls':>9}  {'PERST calls':>11}  {'winner':>6}  {'heuristic':>9}"
)
print()
print(header)
print("-" * len(header))
for days in CONTEXTS:
    cells = {}
    for strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST):
        cells[strategy] = run_cell(dataset, query, strategy, days)
    max_cell = cells[SlicingStrategy.MAX]
    perst_cell = cells[SlicingStrategy.PERST]
    winner = "MAX" if max_cell.seconds <= perst_cell.seconds else "PERST"
    begin, end = context_bounds(dataset, days)
    stmt = parse_statement(query.sequenced_sql(dataset, begin, end))
    pick = choose_strategy(
        stmt, dataset.stratum.db, dataset.stratum.registry, dataset.context(days)
    )
    print(
        f"{days:>7}d  {max_cell.seconds:>8.3f}  {perst_cell.seconds:>8.3f}"
        f"  {max_cell.routine_calls:>9}  {perst_cell.routine_calls:>11}"
        f"  {winner:>6}  {pick.strategy.value:>9}"
    )

print()
print("MAX invokes the routine once per satisfying row per constant period;")
print("PERST's invocation count is independent of the context length —")
print("the cost asymmetry behind Figures 12 and 13.")
