"""Quickstart: temporal tables, TUC, and a sequenced query in 60 lines.

Run:  python examples/quickstart.py
"""

from repro import Database, SlicingStrategy, TemporalStratum
from repro.sqlengine.values import Date

# A stratum wraps a conventional SQL/PSM engine (our stand-in for DB2).
stratum = TemporalStratum(Database())

# Create a table with valid-time support: rows carry [begin_time, end_time).
stratum.create_temporal_table(
    "CREATE TABLE position (emp CHAR(20), title CHAR(30),"
    " begin_time DATE, end_time DATE)"
)

# Load some history directly (simulating past current-time modifications).
stratum.db.execute(
    "INSERT INTO position VALUES"
    " ('mia', 'engineer', DATE '2010-01-01', DATE '2010-07-01')"
)
stratum.db.execute(
    "INSERT INTO position VALUES"
    " ('mia', 'manager', DATE '2010-07-01', DATE '9999-12-31')"
)

# -- temporal upward compatibility -----------------------------------------
# A plain query keeps its old meaning: it sees the *current* state.
stratum.db.now = Date.from_ymd(2010, 3, 1)
print("current title in March:",
      stratum.execute("SELECT title FROM position WHERE emp = 'mia'").rows)

stratum.db.now = Date.from_ymd(2010, 9, 1)
print("current title in September:",
      stratum.execute("SELECT title FROM position WHERE emp = 'mia'").rows)

# Current modifications preserve history: terminate + re-insert.
stratum.execute("UPDATE position SET title = 'director' WHERE emp = 'mia'")
print("after promotion:",
      stratum.execute("SELECT title FROM position WHERE emp = 'mia'").rows)

# -- a stored function, invoked with sequenced semantics --------------------
stratum.register_routine("""
CREATE FUNCTION title_of (who CHAR(20))
RETURNS CHAR(30)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE t CHAR(30);
  SET t = (SELECT title FROM position WHERE emp = who);
  RETURN t;
END
""")

# VALIDTIME evaluates the query (and the function!) at every day of the
# context independently; the result is a history.
result = stratum.execute(
    "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
    " SELECT title_of('mia') AS title",
    strategy=SlicingStrategy.PERST,
)
print("\nmia's title history:")
for values, period in result.coalesced():
    print(f"  {values[0]:<12} during {period}")

# The same statement under maximally-fragmented slicing gives the same
# answer — the two implementation strategies are interchangeable.
check = stratum.execute(
    "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
    " SELECT title_of('mia') AS title",
    strategy=SlicingStrategy.MAX,
)
assert check.coalesced() == result.coalesced()
print("\nMAX and PERST agree.")
