"""Transaction time and time travel.

The paper focuses on valid time and notes that "everything also applies
to transaction time" (§III).  This example shows the second dimension:
a ledger whose every modification is recorded, queries that travel back
to what the database *believed* at an earlier date, a sequenced
TRANSACTIONTIME query driving a stored routine, and a bitemporal
correction ("we learn in March that February's price was wrong").

Run:  python examples/audit_time_travel.py
"""

from repro import SlicingStrategy, TemporalStratum
from repro.sqlengine.values import Date

stratum = TemporalStratum()
db = stratum.db

db.execute("CREATE TABLE account (id CHAR(8), owner CHAR(20), balance FLOAT)")
db.now = Date.from_ymd(2010, 1, 1)
stratum.execute("ALTER TABLE account ADD TRANSACTIONTIME")

# a year of activity; the system stamps every change
for date_iso, sql in [
    ("2010-01-01", "INSERT INTO account (id, owner, balance) VALUES ('a1', 'iris', 100.0)"),
    ("2010-01-01", "INSERT INTO account (id, owner, balance) VALUES ('a2', 'juan', 250.0)"),
    ("2010-03-01", "UPDATE account SET balance = 180.0 WHERE id = 'a1'"),
    ("2010-05-10", "UPDATE account SET balance = 95.0 WHERE id = 'a2'"),
    ("2010-08-01", "DELETE FROM account WHERE id = 'a1'"),
]:
    db.now = Date.from_iso(date_iso)
    stratum.execute(sql)
db.now = Date.from_ymd(2010, 12, 1)

print("== present state ==")
for row in stratum.execute("SELECT id, balance FROM account ORDER BY id").rows:
    print(" ", row)

print("\n== time travel: what did we believe on 2010-04-01? ==")
stratum.transaction_clock = Date.from_ymd(2010, 4, 1)
for row in stratum.execute("SELECT id, balance FROM account ORDER BY id").rows:
    print(" ", row)
stratum.transaction_clock = None

stratum.register_routine("""
CREATE FUNCTION total_assets ()
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE t FLOAT;
  SET t = (SELECT SUM(balance) FROM account);
  RETURN t;
END
""")

print("\n== sequenced TRANSACTIONTIME: total assets as recorded over 2010 ==")
result = stratum.execute(
    "TRANSACTIONTIME [DATE '2010-01-01', DATE '2010-12-01']"
    " SELECT total_assets() AS total",
    strategy=SlicingStrategy.MAX,
)
for values, period in result.coalesced():
    print(f"  {values[0]:>7}  recorded during {period}")

print("\n== full recorded history (nonsequenced) ==")
rows = stratum.execute(
    "NONSEQUENCED TRANSACTIONTIME"
    " SELECT id, balance, tt_start, tt_stop FROM account ORDER BY id, tt_start"
).rows
for row in rows:
    stop = row[3].to_iso() if row[3].ordinal < Date.MAX_ORDINAL else "until changed"
    print(f"  {row[0]}  {row[1]:>6}  [{row[2].to_iso()}, {stop})")

# the audit invariant: nothing is ever forgotten (2 inserts + 2 updates
# leave four versions; the delete only closed one)
assert len(rows) == 4, "every version ever recorded is still queryable"
print("\naudit invariant holds: all 4 recorded versions retained.")
