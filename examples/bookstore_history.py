"""The paper's running example, end to end (Figures 1-11).

Builds the bookstore tables, registers get_author_name() (Figure 1),
runs the Figure 2 query with current semantics, the Figure 3 sequenced
query under both slicing strategies, and prints every transformed
artifact the paper shows: the current transformation (Figures 5-6), the
constant-period SQL (Figure 8), maximal slicing (Figures 9-10), and
per-statement slicing (Figure 11).

Run:  python examples/bookstore_history.py
"""

from repro import SlicingStrategy, TemporalStratum
from repro.sqlengine.values import Date
from repro.temporal.constant_periods import (
    build_constant_period_sql,
    build_time_points_sql,
)
from repro.temporal.period import Period


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


stratum = TemporalStratum()
stratum.create_temporal_table(
    "CREATE TABLE author (author_id CHAR(10), first_name CHAR(50),"
    " begin_time DATE, end_time DATE)"
)
stratum.create_temporal_table(
    "CREATE TABLE item (id CHAR(10), title CHAR(100),"
    " begin_time DATE, end_time DATE)"
)
stratum.create_temporal_table(
    "CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10),"
    " begin_time DATE, end_time DATE)"
)
db = stratum.db
db.execute("INSERT INTO author VALUES ('a1', 'Ben', DATE '2010-01-01', DATE '2010-06-01')")
db.execute("INSERT INTO author VALUES ('a1', 'Benjamin', DATE '2010-06-01', DATE '9999-12-31')")
db.execute("INSERT INTO item VALUES ('i1', 'Book One', DATE '2010-01-15', DATE '9999-12-31')")
db.execute("INSERT INTO item VALUES ('i2', 'Book Two', DATE '2010-03-01', DATE '2010-09-01')")
db.execute("INSERT INTO item_author VALUES ('i1', 'a1', DATE '2010-01-15', DATE '9999-12-31')")
db.execute("INSERT INTO item_author VALUES ('i2', 'a1', DATE '2010-03-01', DATE '2010-09-01')")

banner("Figure 1 — the stored function (registered as written)")
FIG1 = """
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name
               FROM author
               WHERE author_id = aid);
  RETURN fname;
END
"""
print(FIG1.strip())
stratum.register_routine(FIG1)

FIG2 = (
    "SELECT i.title FROM item i, item_author ia"
    " WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'"
)

banner("Figure 2 — current query (temporal upward compatibility)")
db.now = Date.from_ymd(2010, 4, 1)
print(f"-- CURRENT_DATE = {db.now.to_iso()}")
print(FIG2)
print("=>", stratum.execute(FIG2).rows)

banner("Figures 5 & 6 — the cur[[.]] transformation")
print(stratum.transform(FIG2).to_sql())

FIG3 = "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01'] " + FIG2
banner("Figure 3 — the sequenced query")
print(FIG3)

banner("Figure 8 — constant-period SQL (ts and cp)")
print(build_time_points_sql(["author", "item", "item_author"], stratum.registry))
print()
print(build_constant_period_sql(Period.from_iso("2010-01-01", "2010-12-01")))

banner("Figures 9 & 10 — maximally-fragmented slicing (max[[.]])")
print(stratum.transform(FIG3, SlicingStrategy.MAX).to_sql())

banner("Figure 11 — per-statement slicing (ps[[.]])")
print(stratum.transform(FIG3, SlicingStrategy.PERST).to_sql())

banner("Execution — the history of titles authored by 'Ben'")
for strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST):
    db.stats.reset()
    result = stratum.execute(FIG3, strategy=strategy)
    calls = {
        name: count
        for name, count in db.stats.routine_calls.items()
        if "get_author_name" in name
    }
    print(f"\n{strategy.value.upper()} (routine calls: {calls}):")
    for values, period in result.coalesced():
        print(f"  {values[0]:<10} during {period}")
