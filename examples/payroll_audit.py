"""Payroll audit: a domain scenario for Temporal SQL/PSM.

An HR database keeps salary and department assignments with valid-time
support.  Payroll logic lives in stored routines written against the
*current* state — exactly the legacy situation the paper targets.  When
an auditor asks "what was everyone's monthly cost, month by month?", the
same routines are invoked with sequenced semantics; no routine changes.

Demonstrates: temporal DDL, current modifications building history,
a stored function and procedure reused across current / sequenced /
nonsequenced contexts, and the AUTO strategy.

Run:  python examples/payroll_audit.py
"""

from repro import SlicingStrategy, TemporalStratum
from repro.sqlengine.values import Date

stratum = TemporalStratum()
db = stratum.db

stratum.create_temporal_table(
    "CREATE TABLE employee (emp_id CHAR(8), name CHAR(30), dept CHAR(12),"
    " begin_time DATE, end_time DATE)"
)
stratum.create_temporal_table(
    "CREATE TABLE salary (emp_id CHAR(8), monthly FLOAT,"
    " begin_time DATE, end_time DATE)"
)
stratum.create_temporal_table(
    "CREATE TABLE dept_budget (dept CHAR(12), monthly_cap FLOAT,"
    " begin_time DATE, end_time DATE)"
)

# Build history through *current* modifications at successive dates —
# the stratum terminates and re-inserts versions automatically.
timeline = [
    ("2010-01-01", [
        "INSERT INTO employee (emp_id, name, dept) VALUES ('e1', 'Iris', 'eng')",
        "INSERT INTO employee (emp_id, name, dept) VALUES ('e2', 'Juan', 'ops')",
        "INSERT INTO salary (emp_id, monthly) VALUES ('e1', 8000.0)",
        "INSERT INTO salary (emp_id, monthly) VALUES ('e2', 6000.0)",
        "INSERT INTO dept_budget (dept, monthly_cap) VALUES ('eng', 20000.0)",
        "INSERT INTO dept_budget (dept, monthly_cap) VALUES ('ops', 9000.0)",
    ]),
    ("2010-04-01", ["UPDATE salary SET monthly = 9000.0 WHERE emp_id = 'e1'"]),
    ("2010-06-15", ["UPDATE employee SET dept = 'eng' WHERE emp_id = 'e2'"]),
    ("2010-09-01", [
        "UPDATE salary SET monthly = 7000.0 WHERE emp_id = 'e2'",
        "UPDATE dept_budget SET monthly_cap = 15000.0 WHERE dept = 'eng'",
    ]),
    ("2010-11-20", ["DELETE FROM employee WHERE emp_id = 'e2'"]),
]
for date_iso, statements in timeline:
    db.now = Date.from_iso(date_iso)
    for sql in statements:
        stratum.execute(sql)

# Payroll routines, written for the current state only.
stratum.register_routine("""
CREATE FUNCTION dept_cost (d CHAR(12))
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE total FLOAT;
  SET total = (SELECT SUM(s.monthly)
               FROM employee e, salary s
               WHERE e.emp_id = s.emp_id AND e.dept = d);
  RETURN total;
END
""")
stratum.register_routine("""
CREATE PROCEDURE over_budget_report ()
LANGUAGE SQL
BEGIN
  SELECT b.dept, dept_cost(b.dept) AS cost, b.monthly_cap
  FROM dept_budget b
  WHERE dept_cost(b.dept) > b.monthly_cap;
END
""")

db.now = Date.from_iso("2010-07-01")
print("== current report (as of", db.now.to_iso(), ") ==")
for result in stratum.execute("CALL over_budget_report()"):
    for row in result.rows:
        print(f"  {row[0]:<6} cost {row[1]:>8.0f} cap {row[2]:>8.0f}")

print()
print("== sequenced audit: months over budget during 2010 ==")
results = stratum.execute(
    "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01'] CALL over_budget_report()",
    strategy=SlicingStrategy.AUTO,
)
print(f"(strategy chosen by the heuristic: {stratum.last_strategy.value})")
for result in results:
    for values, period in result.coalesced():
        dept, cost, cap = values
        print(f"  {dept:<6} cost {cost:>8.0f} cap {cap:>8.0f}  during {period}")

print()
print("== nonsequenced: when did any salary row change? ==")
result = stratum.execute(
    "NONSEQUENCED VALIDTIME"
    " SELECT emp_id, monthly, begin_time, end_time FROM salary"
    " ORDER BY emp_id, begin_time"
)
for row in result.rows:
    print(f"  {row[0]}  {row[1]:>7.0f}  [{row[2].to_iso()}, {row[3].to_iso()})")

# cross-check the audit against per-day evaluation of the current report
db.now = Date.from_iso("2010-10-01")
check = stratum.execute("CALL over_budget_report()")
assert check[0].rows, "eng should be over budget in October"
print()
print("spot check (2010-10-01): over-budget depts:", [r[0] for r in check[0].rows])
