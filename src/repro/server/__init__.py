"""Multi-client wire front-end for the temporal stratum.

An asyncio server (:class:`~repro.server.core.ReproServer`) accepts any
number of concurrent connections; each gets its own engine session (a
:class:`~repro.sqlengine.txn.TransactionManager` with its own snapshot,
write set, undo log, and redo buffer), so clients see snapshot-isolated
MVCC semantics end to end.  Statement execution is offloaded to a
single worker thread — the engine is not thread-safe, and under the
GIL a second executor thread buys no parallelism anyway — which keeps
the event loop responsive: clients pipeline network round-trips against
the worker, and MVCC lets one session's reads interleave between
another session's statements instead of blocking on its open
transaction.

The wire format (:mod:`~repro.server.protocol`) is length-prefixed
JSON; :class:`~repro.server.client.ReproClient` is the matching asyncio
client library, and ``python -m repro serve --db PATH`` the CLI entry
point.
"""

from repro.server.client import (
    ClientResult,
    ConnectionLostError,
    ReproClient,
    ServerError,
)
from repro.server.core import ReproServer
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameError,
    FramedReader,
)
from repro.server.replication import (
    ReplicationSource,
    StandbyApplier,
    StandbyManager,
    fingerprint_divergence,
    fingerprints_at,
    store_fingerprints,
)

__all__ = [
    "ClientResult",
    "ConnectionClosed",
    "ConnectionLostError",
    "FrameError",
    "FramedReader",
    "MAX_FRAME_BYTES",
    "ReplicationSource",
    "ReproClient",
    "ReproServer",
    "ServerError",
    "StandbyApplier",
    "StandbyManager",
    "fingerprint_divergence",
    "fingerprints_at",
    "store_fingerprints",
]
