"""Asyncio client library for the repro wire protocol.

::

    client = await ReproClient.connect("127.0.0.1", 7878)
    await client.execute("BEGIN")
    result = await client.execute("VALIDTIME SELECT name FROM author")
    print(result.rows, client.last_snapshot)
    await client.execute("COMMIT")
    await client.close()

Engine errors arrive as :class:`ServerError` with the originating
``sqlstate`` (``'40001'`` for a serialization failure the caller
should retry; ``'25006'`` when a write reaches a read-only standby).

**Reconnection.** Every request carries a monotonically increasing
request id (``rid``) that the server echoes, so a response can never be
attributed to the wrong request.  When the connection drops, the client
reconnects with bounded jittered backoff and — *only* for requests that
are safe to repeat (pings, session settings, read-only statements
outside an explicit transaction) — resends the same request under the
same rid.  Anything else surfaces as :class:`ConnectionLostError`
instead of a raw ``ConnectionError``, and a drop inside an open
transaction always does: the server-side session (and its open
transaction) died with the link, which no retry can hide.
"""

from __future__ import annotations

import asyncio
import random
import re
from typing import Any, Optional

from repro.server.protocol import (
    ClientResult,
    ConnectionClosed,
    FrameError,
    FramedReader,
    decode_result,
    encode_frame,
)

__all__ = [
    "ClientResult",
    "ConnectionLostError",
    "ReproClient",
    "ServerError",
]


class ServerError(Exception):
    """An error the server reported for one request."""

    def __init__(self, message: str, sqlstate: Optional[str] = None) -> None:
        super().__init__(message)
        self.sqlstate = sqlstate


class ConnectionLostError(ConnectionError):
    """The connection died and the request could not be safely retried
    (non-idempotent statement, open transaction, or retries exhausted)."""


# a statement is safe to resend iff it cannot have changed server state:
# plain or sequenced SELECTs (VALIDTIME UPDATE/DELETE deliberately do
# not match).  EXPLAIN is excluded: EXPLAIN ANALYZE executes.
_READ_ONLY_RE = re.compile(
    r"^\s*(?:NONSEQUENCED\s+)?(?:VALIDTIME|TRANSACTIONTIME)?"
    r"\s*(?:\[[^\]]*\])?\s*SELECT\b",
    re.IGNORECASE,
)


class ReproClient:
    """One connection = one server-side session (own MVCC snapshot)."""

    def __init__(
        self,
        reader,
        writer,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        reconnect: bool = True,
        reconnect_attempts: int = 5,
        reconnect_base_delay: float = 0.05,
        reconnect_max_delay: float = 1.0,
    ) -> None:
        self._framed = FramedReader(reader)
        self._writer = writer
        self._host = host
        self._port = port
        self._reconnect = reconnect and host is not None
        self._reconnect_attempts = reconnect_attempts
        self._reconnect_base_delay = reconnect_base_delay
        self._reconnect_max_delay = reconnect_max_delay
        self._rng = random.Random()
        self._next_rid = 1
        self._in_txn = False
        # session settings, replayed onto a fresh connection so a
        # reconnected session behaves like the one that dropped
        self._settings: dict[str, Any] = {}
        # the csn the most recent statement read through
        self.last_snapshot: Optional[int] = None
        # the replication position a standby reported for the most
        # recent statement (None when talking to a primary)
        self.last_applied_csn: Optional[int] = None
        self.reconnects = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        reconnect: bool = True,
        reconnect_attempts: int = 5,
        reconnect_base_delay: float = 0.05,
        reconnect_max_delay: float = 1.0,
    ) -> "ReproClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(
            reader,
            writer,
            host=host,
            port=port,
            reconnect=reconnect,
            reconnect_attempts=reconnect_attempts,
            reconnect_base_delay=reconnect_base_delay,
            reconnect_max_delay=reconnect_max_delay,
        )

    # -- transport ------------------------------------------------------

    def _teardown_transport(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._writer = None
        self._framed = None

    async def _open_transport(self) -> None:
        reader, writer = await asyncio.open_connection(self._host, self._port)
        self._framed = FramedReader(reader)
        self._writer = writer
        self.reconnects += 1
        for key, value in self._settings.items():
            rid = self._next_rid
            self._next_rid += 1
            self._writer.write(
                encode_frame({"op": "set", key: value, "rid": rid})
            )
            await self._writer.drain()
            response = await self._framed.read()
            if response is None:
                raise ConnectionClosed("server closed the connection")
            if not response.get("ok"):
                raise ServerError(
                    response.get("error", "could not replay session settings"),
                    response.get("sqlstate"),
                )

    def _backoff(self, attempt: int) -> float:
        delay = min(
            self._reconnect_max_delay,
            self._reconnect_base_delay * (2 ** attempt),
        )
        return delay * (0.5 + self._rng.random() / 2)  # full-ish jitter

    # -- request machinery ----------------------------------------------

    def _is_safe_to_retry(self, message: dict) -> bool:
        op = message.get("op")
        if op in ("ping", "set"):
            return True
        if op == "execute":
            return _READ_ONLY_RE.match(message.get("sql", "")) is not None
        return False

    async def request(
        self, message: dict, *, retryable: Optional[bool] = None
    ) -> dict:
        """Send one raw request, return the raw response dict.

        Used by the replication tailer and the cross-node scrubber;
        ``retryable`` overrides the built-in safe-to-resend detection.
        """
        rid = self._next_rid
        self._next_rid += 1
        message = dict(message)
        message["rid"] = rid
        can_retry = (
            self._reconnect
            and not self._in_txn
            and (
                retryable
                if retryable is not None
                else self._is_safe_to_retry(message)
            )
        )
        attempt = 0
        while True:
            try:
                if self._writer is None:
                    await self._open_transport()
                self._writer.write(encode_frame(message))
                await self._writer.drain()
                response = await self._framed.read()
                if response is None:
                    raise ConnectionClosed("server closed the connection")
                break
            except (ConnectionClosed, ConnectionError, OSError) as exc:
                self._teardown_transport()
                dropped_txn = self._in_txn
                self._in_txn = False  # the server-side session is gone
                if dropped_txn:
                    raise ConnectionLostError(
                        "connection dropped inside an open transaction;"
                        " its state is lost — reconnect and retry the"
                        f" whole transaction ({exc})"
                    ) from exc
                if not can_retry or attempt >= self._reconnect_attempts:
                    raise ConnectionLostError(
                        f"connection lost and request is not retryable"
                        f" (or retries exhausted): {exc}"
                    ) from exc
                await asyncio.sleep(self._backoff(attempt))
                attempt += 1
        echoed = response.get("rid")
        if echoed is not None and echoed != rid:
            raise FrameError(
                f"response rid {echoed} does not match request rid {rid}"
            )
        return response

    async def _roundtrip(self, message: dict) -> Any:
        response = await self.request(message)
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown server error"),
                response.get("sqlstate"),
            )
        if message.get("op") == "execute":
            head = message.get("sql", "").strip().split(None, 1)
            verb = head[0].upper() if head else ""
            if verb == "BEGIN":
                self._in_txn = True
            elif verb in ("COMMIT", "ROLLBACK"):
                self._in_txn = False
        if "snapshot" in response:
            self.last_snapshot = response["snapshot"]
        if "applied_csn" in response:
            self.last_applied_csn = response["applied_csn"]
        return decode_result(response["result"]) if "result" in response else None

    # -- public API -----------------------------------------------------

    async def execute(
        self,
        sql: str,
        *,
        min_csn: Optional[int] = None,
        wait: Optional[float] = None,
    ) -> Any:
        """Run one statement; returns a :class:`ClientResult`, a row
        count, a list (CALL result sets), text, or ``None``.

        Against a standby, ``min_csn`` demands read-your-writes: the
        statement runs only once the replica has applied at least that
        commit sequence number, waiting up to ``wait`` seconds.
        """
        message: dict[str, Any] = {"op": "execute", "sql": sql}
        if min_csn is not None:
            message["min_csn"] = min_csn
            if wait is not None:
                message["wait"] = wait
        return await self._roundtrip(message)

    async def set_timeout(self, seconds: Optional[float]) -> None:
        """Set (or with ``None`` clear) this session's statement
        deadline; other sessions are unaffected."""
        await self._roundtrip({"op": "set", "timeout": seconds})
        self._settings["timeout"] = seconds

    async def set_strategy(self, strategy: str) -> None:
        """Set this session's sequenced slicing strategy."""
        await self._roundtrip({"op": "set", "strategy": strategy})
        self._settings["strategy"] = strategy

    async def ping(self) -> None:
        await self._roundtrip({"op": "ping"})

    async def close(self) -> None:
        """Polite shutdown: quit, then close the transport."""
        if self._writer is None:
            return
        try:
            await self.request({"op": "quit"}, retryable=False)
        except (ConnectionError, FrameError, OSError):
            pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._writer = None
        self._framed = None

    async def __aenter__(self) -> "ReproClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
