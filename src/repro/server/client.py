"""Asyncio client library for the repro wire protocol.

::

    client = await ReproClient.connect("127.0.0.1", 7878)
    await client.execute("BEGIN")
    result = await client.execute("VALIDTIME SELECT name FROM author")
    print(result.rows, client.last_snapshot)
    await client.execute("COMMIT")
    await client.close()

Engine errors arrive as :class:`ServerError` with the originating
``sqlstate`` (``'40001'`` for a serialization failure the caller
should retry).
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.server.protocol import (
    ClientResult,
    FrameError,
    decode_result,
    encode_frame,
    read_frame,
)

__all__ = ["ClientResult", "ReproClient", "ServerError"]


class ServerError(Exception):
    """An error the server reported for one request."""

    def __init__(self, message: str, sqlstate: Optional[str] = None) -> None:
        super().__init__(message)
        self.sqlstate = sqlstate


class ReproClient:
    """One connection = one server-side session (own MVCC snapshot)."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        # the csn the most recent statement read through
        self.last_snapshot: Optional[int] = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "ReproClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _roundtrip(self, message: dict) -> Any:
        self._writer.write(encode_frame(message))
        await self._writer.drain()
        response = await read_frame(self._reader)
        if response is None:
            raise FrameError("server closed the connection")
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown server error"),
                response.get("sqlstate"),
            )
        if "snapshot" in response:
            self.last_snapshot = response["snapshot"]
        return decode_result(response["result"]) if "result" in response else None

    async def execute(self, sql: str) -> Any:
        """Run one statement; returns a :class:`ClientResult`, a row
        count, a list (CALL result sets), text, or ``None``."""
        return await self._roundtrip({"op": "execute", "sql": sql})

    async def set_timeout(self, seconds: Optional[float]) -> None:
        """Set (or with ``None`` clear) this session's statement
        deadline; other sessions are unaffected."""
        await self._roundtrip({"op": "set", "timeout": seconds})

    async def set_strategy(self, strategy: str) -> None:
        """Set this session's sequenced slicing strategy."""
        await self._roundtrip({"op": "set", "strategy": strategy})

    async def ping(self) -> None:
        await self._roundtrip({"op": "ping"})

    async def close(self) -> None:
        """Polite shutdown: quit, then close the transport."""
        try:
            await self._roundtrip({"op": "quit"})
        except (ConnectionError, FrameError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ReproClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
