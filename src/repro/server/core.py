"""The asyncio server: connections on the loop, statements on a worker.

One :class:`ReproServer` owns a listening socket and a single-thread
executor.  Connection handling (frame parsing, response writes) stays
on the event loop; every engine call — session open/close and
statement execution — is submitted to the worker, which serializes
them.  Concurrency comes from pipelining: while the worker runs one
client's statement, the loop keeps reading and queueing every other
client's requests, and MVCC snapshot isolation keeps those interleaved
statements consistent.

Shutdown is a graceful drain: stop accepting, close client transports
(an in-flight statement still completes on the worker), wait for the
handlers to finish their session teardown, then stop the worker.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro.sqlengine.errors import ExecutionError, SqlError
from repro.server.protocol import (
    FrameError,
    FramedReader,
    encode_frame,
    encode_result,
)
from repro.server.session import ServerSession


class ReproServer:
    """Serve a temporal stratum to concurrent wire clients."""

    def __init__(self, stratum, host: str = "127.0.0.1", port: int = 0) -> None:
        self.stratum = stratum
        self.db = stratum.db
        self.host = host
        self.port = port
        # all engine access funnels through this one thread: the engine
        # is not thread-safe, and the GIL would serialize CPU-bound
        # statement execution anyway
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-db"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()
        self._connections: set = set()
        self._session_seq = 0
        self._closing = False
        # replication: a ReplicationSource is created lazily when the
        # first repl_* op arrives (primary role); `standby` is installed
        # by StandbyManager.start (standby role)
        self._replication = None
        self.standby = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> tuple:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain and shut down."""
        await stop.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: no new connections, in-flight statements
        finish, sessions tear down, then the worker stops."""
        self._closing = True
        if self.standby is not None:
            await self.standby.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._worker.shutdown(wait=True)

    # -- connection handling ---------------------------------------------

    async def _db(self, fn, *args) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._worker, fn, *args)

    async def _client_connected(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        self._connections.add(writer)
        try:
            await self._handle(reader, writer)
        finally:
            self._handlers.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def _handle(self, reader, writer) -> None:
        if self._closing:
            return
        self._session_seq += 1
        name = f"client-{self._session_seq}"
        framed = FramedReader(reader)
        try:
            session = await self._open_session(name)
        except ExecutionError as exc:
            await self._send(writer, {
                "ok": False, "error": str(exc), "sqlstate": None,
            })
            return
        try:
            while True:
                try:
                    request = await framed.read()
                except FrameError as exc:
                    # a torn or oversized frame poisons the stream:
                    # report once (with the stream offset the bad frame
                    # began at), then drop the connection
                    self.db.obs.inc("server.frame_errors", 1)
                    await self._send(writer, {
                        "ok": False, "error": str(exc), "sqlstate": None,
                    })
                    break
                if request is None:
                    break  # clean EOF
                response = await self._dispatch(session, request)
                if "rid" in request:
                    response["rid"] = request["rid"]
                if not await self._send(writer, response):
                    break
                if request.get("op") == "quit":
                    break
        finally:
            # disconnect tear-down: rolls back an open transaction and
            # releases the session's snapshot pin, no matter how the
            # connection ended
            await self._db(session.close)

    async def _send(self, writer, message: dict) -> bool:
        try:
            writer.write(encode_frame(message))
            await writer.drain()
            return True
        except FrameError as exc:
            # the *response* overflowed the frame cap: report a typed
            # error in its place instead of dying in the drain path
            fallback = {
                "ok": False,
                "error": f"response too large for the wire: {exc}",
                "sqlstate": "54000",
            }
            if "rid" in message:
                fallback["rid"] = message["rid"]
            try:
                writer.write(encode_frame(fallback))
                await writer.drain()
                return True
            except (ConnectionError, OSError):
                return False
        except (ConnectionError, OSError):
            return False

    async def _open_session(self, name: str) -> ServerSession:
        # registration needs the store quiescent only for the dormant →
        # multi-session transition; with the server owning all sessions
        # that window is tiny, so a short retry loop suffices
        for _ in range(200):
            try:
                return await self._db(ServerSession.open, self.stratum, name)
            except ExecutionError:
                await asyncio.sleep(0.005)
        raise ExecutionError(
            "could not register a session: writes stayed in flight"
        )

    # -- request dispatch ------------------------------------------------

    def _replication_source(self):
        if self._replication is None:
            from repro.server.replication import ReplicationSource

            self._replication = ReplicationSource(
                self.db, asyncio.get_running_loop()
            )
        return self._replication

    async def _dispatch(self, session: ServerSession, request: dict) -> dict:
        op = request.get("op")
        if op == "execute":
            sql = request.get("sql")
            if not isinstance(sql, str):
                return {
                    "ok": False,
                    "error": "execute needs a 'sql' string",
                    "sqlstate": None,
                }
            min_csn = request.get("min_csn")
            if min_csn is not None and self.standby is not None:
                timeout = float(request.get("wait") or 5.0)
                if not await self.standby.wait_applied(min_csn, timeout):
                    return {
                        "ok": False,
                        "error": (
                            f"standby lag: applied_csn"
                            f" {self.standby.applier.applied_csn} has not"
                            f" reached min_csn {min_csn} within {timeout}s"
                        ),
                        "sqlstate": "55000",
                        "applied_csn": self.standby.applier.applied_csn,
                    }
            try:
                result, snapshot, applied = await self._db(
                    session.run_statement, sql
                )
            except SqlError as exc:
                return {
                    "ok": False,
                    "error": str(exc),
                    "sqlstate": getattr(exc, "sqlstate", None),
                }
            response = {
                "ok": True,
                "result": encode_result(result),
                "snapshot": snapshot,
            }
            if applied is not None:
                response["applied_csn"] = applied
            return response
        if op == "set":
            try:
                kwargs = {}
                if "timeout" in request:
                    kwargs["timeout"] = request["timeout"]
                if "strategy" in request:
                    kwargs["strategy"] = request["strategy"]
                session.configure(**kwargs)
            except ValueError as exc:
                return {"ok": False, "error": str(exc), "sqlstate": None}
            return {"ok": True, "result": {"kind": "ok"}}
        if op == "ping":
            return {
                "ok": True,
                "result": {"kind": "ok"},
                "snapshot": self.db.mvcc.csn,
            }
        if op == "quit":
            return {"ok": True, "result": {"kind": "ok"}}
        if op in ("repl_handshake", "repl_wal", "repl_snapshot",
                  "repl_fingerprint", "repl_status"):
            return await self._dispatch_replication(op, request)
        if op == "promote":
            return await self._promote()
        return {
            "ok": False,
            "error": f"unknown op {op!r}",
            "sqlstate": None,
        }

    async def _dispatch_replication(self, op: str, request: dict) -> dict:
        from repro.sqlengine.errors import ReplicationError

        if op == "repl_status" and self.standby is not None:
            return {"ok": True, **self.standby.status()}
        if self.db.durability is None:
            return {
                "ok": False,
                "error": "replication requires a durable store"
                         " (serve with --db)",
                "sqlstate": None,
            }
        try:
            source = self._replication_source()
            if op == "repl_handshake":
                payload = await self._db(
                    source.handshake,
                    request.get("generation"),
                    request.get("offset"),
                )
            elif op == "repl_wal":
                generation = request.get("generation")
                offset = request.get("offset")
                wait = float(request.get("wait") or 0.0)
                payload = await self._db(source.wal_chunk, generation, offset)
                if wait > 0 and not payload.get("resync") and not payload["data"]:
                    # long-poll: park on the loop until a commit lands
                    await source.wait_for_commit(wait)
                    payload = await self._db(
                        source.wal_chunk, generation, offset
                    )
            elif op == "repl_snapshot":
                payload = await self._db(
                    source.snapshot_chunk, request.get("offset", 0)
                )
            elif op == "repl_fingerprint":
                payload = await self._db(source.fingerprints, self.stratum)
            else:  # repl_status on a primary
                payload = await self._db(source.status)
                payload["role"] = "primary"
            return {"ok": True, **payload}
        except (ReplicationError, SqlError, OSError, ValueError) as exc:
            return {"ok": False, "error": str(exc), "sqlstate": None}

    async def _promote(self) -> dict:
        from repro.sqlengine.errors import ReplicationError

        if self.standby is None:
            return {
                "ok": False,
                "error": "this node is not a standby",
                "sqlstate": None,
            }
        standby = self.standby
        try:
            await standby.stop()  # no frames may land mid-promotion
            generation = await self._db(standby.applier.promote)
        except (ReplicationError, SqlError) as exc:
            return {"ok": False, "error": str(exc), "sqlstate": None}
        self.standby = None  # writes flow; repl ops now serve as primary
        return {
            "ok": True,
            "result": {"kind": "ok"},
            "generation": generation,
            "applied_csn": standby.applier.applied_csn,
        }
