"""WAL-shipping replication: primary source, standby applier, failover.

The design leans entirely on invariants the durability layer already
maintains:

* ``commit_buffered`` appends whole transactions — ``begin`` frames,
  redo records, one ``commit`` frame carrying the transaction sequence
  number and the clock — in a single write.  Every byte on the
  primary's disk is therefore committed, and any *frame-aligned prefix*
  of the file is a valid redo stream.
* The commit sequence number (``DurabilityManager.txn_counter``) is
  durable, monotone, and stamped into both commit frames and
  checkpoints, so it doubles as the replication position: a standby
  that has applied commit ``N`` reports ``applied_csn = N``.
* The standby keeps its local ``wal.log`` a **verbatim byte prefix** of
  the primary's: shipped bytes land with :meth:`append_replicated`
  before they are applied in memory.  Resume-from-offset after any
  disconnect is then trivial — the resume point *is* the local file
  size — a crashed standby recovers through the ordinary
  :mod:`~repro.sqlengine.recovery` path, and the offline scrubber
  (``repro verify``) works on a standby store unchanged.
* Apply goes through :func:`recovery._apply_record` under the root
  transaction with explicit MVCC claims, so standby reader sessions
  keep real snapshot isolation while the applier streams commits in
  under them.

A checkpoint on the primary bumps the WAL generation and resets the
file; the standby detects the generation change in the next chunk
response and re-bootstraps from the shipped snapshot.  Promotion
(``repro promote``) folds the applied state into a local checkpoint —
bumping the generation so the dead primary's log can never be confused
with the new timeline — and only then lifts the read-only gate.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import shutil
import struct
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional

from repro.sqlengine.errors import ReplicationError
from repro.sqlengine.recovery import _apply_record, _apply_snapshot
from repro.sqlengine.values import Date
from repro.sqlengine.wal import read_frames

# chunk sizes are chosen so a base64-encoded chunk (~4/3×) stays well
# under the 8 MiB wire-frame cap
WAL_CHUNK_BYTES = 1 << 20
SNAPSHOT_CHUNK_BYTES = 1 << 20

_FRAME_HEADER = struct.Struct("<II")

# redo tags whose record[1] names the table they mutate (claimed before
# apply so pinned standby readers keep their snapshots)
_TABLE_TAGS = frozenset(
    ("ins", "upd", "cell", "wrow", "delpos", "setrows", "addcol")
)


# ---------------------------------------------------------------------------
# fingerprints (divergence scrubbing)
# ---------------------------------------------------------------------------


def store_fingerprints(db, stratum=None) -> dict[str, Any]:
    """Per-table content hashes plus registry/clock state.

    Routines are deliberately excluded: a standby serving sequenced
    queries installs transform-routine clones locally, which are
    semantically derived state, not replicated state.
    """
    tables = {}
    for table in sorted(db.catalog.tables(), key=lambda t: t.name.lower()):
        if table.temporary:
            continue
        digest = hashlib.sha256()
        spec = [
            [
                [c.name, c.type.name, c.not_null, c.primary_key]
                for c in table.columns
            ],
            [[_printable(v) for v in row] for row in table.rows],
        ]
        digest.update(
            json.dumps(spec, separators=(",", ":")).encode("utf-8")
        )
        tables[table.name.lower()] = digest.hexdigest()
    registries: dict[str, list] = {}
    if stratum is not None:
        for dim, registry in (
            ("vt", stratum.registry),
            ("tt", stratum.tt_registry),
        ):
            registries[dim] = sorted(
                [info.name.lower(), info.begin_column, info.end_column]
                for info in registry.infos()
            )
    manager = db.durability
    return {
        "commit_seq": manager.txn_counter if manager is not None else None,
        "generation": manager.generation if manager is not None else None,
        "now": db.now.ordinal,
        "tables": tables,
        "registries": registries,
    }


def _printable(value: Any) -> Any:
    from repro.sqlengine.values import Null

    if value is Null:
        return None
    if isinstance(value, Date):
        return {"d": value.ordinal}
    return value


def fingerprint_divergence(
    local: dict[str, Any], remote: dict[str, Any]
) -> list[str]:
    """Compare two fingerprint dicts taken at the same commit_seq."""
    problems = []
    if local.get("commit_seq") != remote.get("commit_seq"):
        problems.append(
            f"fingerprints are not comparable: local commit_seq"
            f" {local.get('commit_seq')} vs remote {remote.get('commit_seq')}"
        )
        return problems
    if local["now"] != remote["now"]:
        problems.append(
            f"CURRENT_DATE diverged: local ordinal {local['now']}"
            f" vs remote {remote['now']}"
        )
    local_tables, remote_tables = local["tables"], remote["tables"]
    for name in sorted(set(local_tables) | set(remote_tables)):
        if name not in local_tables:
            problems.append(f"table {name!r} exists only on the remote")
        elif name not in remote_tables:
            problems.append(f"table {name!r} exists only locally")
        elif local_tables[name] != remote_tables[name]:
            problems.append(f"table {name!r} content hash diverged")
    if local.get("registries") and remote.get("registries"):
        if local["registries"] != remote["registries"]:
            problems.append("temporal registries diverged")
    return problems


def fingerprints_at(store_path, commit_seq: int) -> dict[str, Any]:
    """Offline fingerprints of a durable store *as of* ``commit_seq``.

    The store directory is copied aside and recovered with a replay
    cap, so a live (or just-killed) node's files are never touched and
    commits past the common sequence number are ignored.
    """
    from repro.temporal.stratum import TemporalStratum

    source = Path(store_path)
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
        copy = Path(tmp) / "store"
        shutil.copytree(source, copy)
        stratum = TemporalStratum.open(copy, replay_cap=commit_seq)
        try:
            return store_fingerprints(stratum.db, stratum)
        finally:
            stratum.close(checkpoint=False)


# ---------------------------------------------------------------------------
# primary side
# ---------------------------------------------------------------------------


class ReplicationSource:
    """Serves the primary's WAL (and checkpoint) to standbys.

    Chunk/handshake/fingerprint methods run on the server's worker
    thread — they touch engine state; :meth:`wait_for_commit` runs on
    the event loop, woken by the durability manager's post-commit hook,
    which is what turns the request/response protocol into long-poll
    streaming.
    """

    def __init__(self, db, loop: asyncio.AbstractEventLoop) -> None:
        if db.durability is None:
            raise ReplicationError(
                "replication requires an attached durable store"
            )
        self.db = db
        self.manager = db.durability
        self._loop = loop
        self._commit_event = asyncio.Event()
        self.manager.on_commit.append(self._commit_hook)

    def _commit_hook(self) -> None:  # worker thread → loop
        self._loop.call_soon_threadsafe(self._commit_event.set)

    async def wait_for_commit(self, timeout: float) -> None:
        """Block (on the loop) until a commit lands or ``timeout``."""
        self._commit_event.clear()
        try:
            await asyncio.wait_for(self._commit_event.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    # -- worker-thread request handlers ---------------------------------

    def status(self) -> dict[str, Any]:
        manager = self.manager
        return {
            "generation": manager.generation,
            "wal_size": manager.wal_size(),
            "commit_seq": manager.txn_counter,
        }

    def handshake(self, generation: Any, offset: Any) -> dict[str, Any]:
        """Decide how a standby at (generation, offset) catches up."""
        status = self.status()
        if (
            generation == status["generation"]
            and isinstance(offset, int)
            and 0 <= offset <= status["wal_size"]
        ):
            mode = "resume"
        else:
            mode = "snapshot"
        snapshot_path = self.manager.snapshot_path
        status["mode"] = mode
        status["snapshot_size"] = (
            snapshot_path.stat().st_size if snapshot_path.exists() else 0
        )
        return status

    def wal_chunk(
        self, generation: Any, offset: Any, limit: int = WAL_CHUNK_BYTES
    ) -> dict[str, Any]:
        status = self.status()
        if generation != status["generation"]:
            # a checkpoint reset the log: the standby must re-bootstrap
            status["resync"] = True
            status["data"] = ""
            return status
        data = self.manager.read_wal_range(
            int(offset), min(int(limit), WAL_CHUNK_BYTES)
        )
        status["resync"] = False
        status["offset"] = int(offset)
        status["data"] = base64.b64encode(data).decode("ascii")
        if data:
            self.db.obs.inc("replication.frames_shipped", 1)
            self.db.obs.inc("replication.bytes_shipped", len(data))
        return status

    def snapshot_chunk(
        self, offset: Any, limit: int = SNAPSHOT_CHUNK_BYTES
    ) -> dict[str, Any]:
        status = self.status()
        path = self.manager.snapshot_path
        raw = path.read_bytes() if path.exists() else b""
        chunk = raw[int(offset) : int(offset) + min(int(limit), SNAPSHOT_CHUNK_BYTES)]
        status["size"] = len(raw)
        status["offset"] = int(offset)
        status["data"] = base64.b64encode(chunk).decode("ascii")
        self.db.obs.inc("replication.snapshot_chunks_shipped", 1)
        return status

    def fingerprints(self, stratum=None) -> dict[str, Any]:
        return store_fingerprints(self.db, stratum)


# ---------------------------------------------------------------------------
# standby side: the applier state machine
# ---------------------------------------------------------------------------


class StandbyApplier:
    """Transport-agnostic standby state machine (worker thread only).

    Feed it ``(start_offset, bytes)`` batches in any chaotic order:
    duplicated prefixes are trimmed against the local WAL size, gaps
    raise a (recoverable) :class:`ReplicationError` so the caller
    re-requests from :attr:`applied_offset`, torn tails are simply not
    applied.  Only *complete* ``begin..commit`` groups take effect, and
    each lands on the local disk **before** it mutates memory — a crash
    at any point recovers through the ordinary recovery path to exactly
    the applied prefix.
    """

    def __init__(self, stratum) -> None:
        self.stratum = stratum
        self.db = stratum.db
        if self.db.durability is None:
            raise ReplicationError("a standby needs an attached durable store")
        self.manager = self.db.durability
        # plain-int mirrors, safe for cross-thread reads from the loop
        self.applied_offset = self.manager.wal_size()
        self.applied_csn = self.manager.txn_counter
        self.commits_applied = 0
        self.poisoned = False
        self.promoted = False

    # -- replica mode ----------------------------------------------------

    def enter_replica_mode(self) -> None:
        """Make the store read-only for every session but the applier's.

        Sessions get ``txn.wal = None`` so nothing they do (transform
        clone installs in particular) can append to the local WAL and
        break the byte-prefix invariant.
        """
        db = self.db
        db.mvcc.read_only = True
        db.root_txn.wal = None
        for txn in db._session_txns:
            txn.wal = None

    def exit_replica_mode(self) -> None:
        db = self.db
        db.mvcc.read_only = False
        db.root_txn.wal = self.manager
        for txn in db._session_txns:
            txn.wal = self.manager

    # -- the feed --------------------------------------------------------

    def feed(self, start_offset: int, data: bytes) -> int:
        """Ingest one shipped batch; returns bytes durably applied."""
        if self.poisoned:
            raise ReplicationError(
                "standby applier is poisoned by an earlier apply failure;"
                " restart the standby to recover from its local WAL"
            )
        local = self.applied_offset
        if start_offset > local:
            raise ReplicationError(
                f"gap in shipped WAL stream: applied through byte {local},"
                f" batch starts at {start_offset}"
            )
        skip = local - start_offset
        if skip >= len(data):
            return 0  # pure duplicate of already-applied bytes
        if skip:
            data = data[skip:]
        records, _ = read_frames(data)
        applied = 0
        offset = 0
        group_start: Optional[int] = None
        pending: list[list] = []
        for record in records:
            length = _FRAME_HEADER.unpack_from(data, offset)[0]
            record_end = offset + _FRAME_HEADER.size + length
            tag = record[0]
            if tag == "walhdr":
                if local != 0 or offset != 0:
                    raise ReplicationError(
                        "unexpected walhdr frame mid-stream: the primary"
                        " checkpointed; re-bootstrap required"
                    )
                if record[1] != self.manager.generation:
                    raise ReplicationError(
                        f"shipped WAL header generation {record[1]} does not"
                        f" match negotiated generation"
                        f" {self.manager.generation}"
                    )
                self._persist(data[offset:record_end])
                applied = record_end
            elif tag == "begin":
                group_start = offset
                pending = []
            elif tag == "commit":
                if group_start is not None:
                    self._apply_commit(
                        pending, record, data[group_start:record_end]
                    )
                    applied = record_end
                    group_start = None
                    pending = []
            elif group_start is not None:
                pending.append(record)
            offset = record_end
        if applied:
            self.db.obs.inc("replication.batches_applied", 1)
            self.db.obs.set_gauge(
                "replication.applied_csn", self.applied_csn
            )
        return applied

    def _persist(self, raw: bytes) -> None:
        self.manager.append_replicated(raw)
        self.applied_offset = self.manager.wal_size()

    def _apply_commit(
        self, pending: list[list], commit: list, raw: bytes
    ) -> None:
        db = self.db
        manager = self.manager
        db.activate_txn(db.root_txn)
        txn = db.root_txn
        mvcc = db.mvcc
        # disk first: if we die between the append and the in-memory
        # apply, restart recovery replays the local WAL to this exact
        # state — memory is never ahead of disk
        self._persist(raw)
        try:
            if mvcc.multi:
                for record in pending:
                    if (
                        record[0] in _TABLE_TAGS
                        and db.catalog.has_table(record[1])
                    ):
                        mvcc.claim(txn, db.catalog.get_table(record[1]))
            manager.replaying = True
            try:
                for record in pending:
                    _apply_record(manager, record)
                    self.db.obs.inc("replication.records_applied", 1)
            finally:
                manager.replaying = False
            db._now = Date(commit[2])
            manager.txn_counter = max(manager.txn_counter, commit[1])
            self.applied_csn = manager.txn_counter
            if mvcc.multi and txn.write_set:
                mvcc.release_writes(txn, committed=True)
            self.commits_applied += 1
            self.db.obs.inc("replication.commits_applied", 1)
        except BaseException:
            # disk and memory may now disagree mid-transaction; refuse
            # further feeds — a restart recovers cleanly from disk
            self.poisoned = True
            raise

    # -- bootstrap -------------------------------------------------------

    def bootstrap(self, snapshot_bytes: bytes, generation: int) -> None:
        """Replace all local state with a shipped checkpoint.

        Requires quiescence (no pinned reader snapshots, no in-flight
        claims): the rebuild swaps every table out from under the MVCC
        chains.  Raises a *transient* :class:`ReplicationError` when
        readers are mid-statement; the manager retries.
        """
        from repro.sqlengine.checkpoint import SNAPSHOT_MAGIC, load_snapshot

        db = self.db
        manager = self.manager
        mvcc = db.mvcc
        if mvcc.pins or not mvcc.quiescent():
            exc = ReplicationError(
                "cannot bootstrap while reader snapshots are pinned"
            )
            exc.transient = True
            raise exc
        db.activate_txn(db.root_txn)
        payload = None
        if snapshot_bytes:
            # install durably first (tmp + fsync + rename), then rebuild
            tmp_path = manager.snapshot_path.with_suffix(".json.ship")
            with open(tmp_path, "wb") as handle:
                handle.write(snapshot_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, manager.snapshot_path)
            payload = load_snapshot(manager.snapshot_path)
            if payload is None or payload.get("magic") != SNAPSHOT_MAGIC:
                raise ReplicationError("shipped snapshot failed validation")
            if payload["generation"] != generation:
                raise ReplicationError(
                    f"shipped snapshot generation {payload['generation']}"
                    f" does not match announced generation {generation}"
                )
        elif manager.snapshot_path.exists():
            manager.snapshot_path.unlink()
        manager.reset_wal_raw(generation)
        # wipe in-memory state: catalog, registries, caches, chains
        catalog = db.catalog
        catalog._tables.clear()
        catalog._views.clear()
        catalog._routines.clear()
        catalog.schema_version += 1
        stratum = manager.stratum
        if stratum is not None:
            for registry in (stratum.registry, stratum.tt_registry):
                registry._tables.clear()
                registry.version += 1
            stratum._nonseq_only_routines = set()
            stratum._inner_cp_requirements = {}
            stratum._transform_cache.clear()
            stratum._installed_clones.clear()
        db.plan_cache.clear()
        db.expr_cache.clear()
        db.table_function_cache.clear()
        db.cp_cache.clear()
        for resource in list(mvcc._chained):
            resource.version_chain.clear()
            resource._snapshot_views.clear()
        mvcc._chained.clear()
        manager.replaying = True
        try:
            if payload is not None:
                _apply_snapshot(manager, payload)
                manager.txn_counter = payload.get("txn_counter", 0)
            else:
                manager.txn_counter = 0
        finally:
            manager.replaying = False
        manager.generation = generation
        txn = db.root_txn
        if mvcc.multi and txn.write_set:
            mvcc.release_writes(txn, committed=True)
        self.applied_offset = manager.wal_size()
        self.applied_csn = manager.txn_counter
        self.db.obs.inc("replication.bootstraps", 1)

    # -- promotion -------------------------------------------------------

    def promote(self) -> int:
        """Fail over: checkpoint the applied state (bumping the
        generation, so the dead primary's WAL can never be mistaken for
        ours), then lift the read-only gate.  Returns the new
        generation.  Writes stay refused until this returns."""
        db = self.db
        db.activate_txn(db.root_txn)
        # the root txn must log to the WAL again before the checkpoint
        # (checkpoint commits through it) and sessions after it
        db.root_txn.wal = self.manager
        generation = self.manager.checkpoint()
        self.exit_replica_mode()
        self.promoted = True
        self.applied_offset = self.manager.wal_size()
        self.db.obs.inc("replication.promotions", 1)
        return generation


# ---------------------------------------------------------------------------
# standby side: the asyncio tailer
# ---------------------------------------------------------------------------


class StandbyManager:
    """Owns the replication link: connect, hand-shake, bootstrap, tail,
    reconnect with jittered backoff, and expose lease/lag state.

    ``link_filter`` is the chaos hook: a callable mapping one received
    ``(offset, bytes)`` batch to a list of perturbed batches (torn,
    duplicated, reordered, stalled — see
    :class:`repro.sqlengine.resilience.ReplicationChaos`).
    """

    def __init__(
        self,
        server,
        primary_host: str,
        primary_port: int,
        *,
        poll_wait: float = 5.0,
        lease_timeout: float = 15.0,
        reconnect_base_delay: float = 0.05,
        reconnect_max_delay: float = 2.0,
        link_filter: Optional[Callable] = None,
    ) -> None:
        self.server = server
        self.applier = StandbyApplier(server.stratum)
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.poll_wait = poll_wait
        self.lease_timeout = lease_timeout
        self.reconnect_base_delay = reconnect_base_delay
        self.reconnect_max_delay = reconnect_max_delay
        self.link_filter = link_filter
        self.primary_commit_seq: Optional[int] = None
        self.last_contact: Optional[float] = None
        self.reconnects = 0
        self.connected = False
        self._stop = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._applied_event = asyncio.Event()
        self._rng_state = 0x5EED
        # received-but-unapplied bytes, starting at applied_offset: a
        # commit group larger than one chunk accumulates here across
        # polls instead of livelocking on a window it can never finish
        self._tail = b""

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        await self.server._db(self.applier.enter_replica_mode)
        self.server.standby = self
        self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        self._stop.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None

    def primary_alive(self) -> bool:
        """The lease: has the primary answered recently?"""
        if self.last_contact is None:
            return False
        loop = asyncio.get_event_loop()
        return (loop.time() - self.last_contact) < self.lease_timeout

    def status(self) -> dict[str, Any]:
        applier = self.applier
        lag = None
        if self.primary_commit_seq is not None:
            lag = max(0, self.primary_commit_seq - applier.applied_csn)
        return {
            "role": "standby" if not applier.promoted else "primary",
            "applied_csn": applier.applied_csn,
            "applied_offset": applier.applied_offset,
            "primary_commit_seq": self.primary_commit_seq,
            "lag_csn": lag,
            "connected": self.connected,
            "primary_alive": self.primary_alive(),
            "reconnects": self.reconnects,
            "bootstraps": self.server.db.obs.value("replication.bootstraps"),
        }

    async def wait_applied(self, min_csn: int, timeout: float) -> bool:
        """Bounded wait until ``applied_csn >= min_csn`` (read-your-writes)."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while self.applier.applied_csn < min_csn:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            self._applied_event.clear()
            if self.applier.applied_csn >= min_csn:
                return True
            try:
                await asyncio.wait_for(self._applied_event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    # -- the tail loop ---------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        delay = min(
            self.reconnect_max_delay,
            self.reconnect_base_delay * (2 ** min(attempt, 10)),
        )
        # deterministic cheap jitter (xorshift), good enough to de-sync
        # a fleet of standbys without dragging in random state
        self._rng_state ^= (self._rng_state << 13) & 0xFFFFFFFF
        self._rng_state ^= self._rng_state >> 17
        self._rng_state ^= (self._rng_state << 5) & 0xFFFFFFFF
        return delay * (0.5 + (self._rng_state % 1000) / 2000.0)

    async def _run(self) -> None:
        from repro.server.client import ReproClient

        attempt = 0
        while not self._stop.is_set():
            client = None
            try:
                client = await ReproClient.connect(
                    self.primary_host, self.primary_port, reconnect=False
                )
                await self._stream(client)
                attempt = 0
            except asyncio.CancelledError:
                raise
            except ReplicationError as exc:
                if self.applier.poisoned:
                    raise  # unrecoverable without a restart
                # gap/reorder blip: re-request from the applied offset
                self.server.db.obs.inc("replication.link_errors", 1)
            except Exception:
                self.connected = False
                self.reconnects += 1
                self.server.db.obs.inc("replication.reconnects", 1)
                try:
                    await asyncio.wait_for(
                        self._stop.wait(), self._backoff(attempt)
                    )
                except asyncio.TimeoutError:
                    pass
                attempt += 1
            finally:
                if client is not None:
                    try:
                        await client.close()
                    except Exception:
                        pass

    async def _stream(self, client) -> None:
        """One connection's worth of hand-shake + tailing."""
        applier = self.applier
        self._tail = b""  # a fresh link re-ships anything buffered
        response = await client.request(
            {
                "op": "repl_handshake",
                "generation": applier.manager.generation,
                "offset": applier.applied_offset,
            },
            retryable=False,
        )
        self._note_contact(response)
        if not response.get("ok"):
            raise ReplicationError(response.get("error", "handshake refused"))
        if response["mode"] == "snapshot":
            await self._bootstrap(client)
        self.connected = True
        while not self._stop.is_set():
            response = await client.request(
                {
                    "op": "repl_wal",
                    "generation": applier.manager.generation,
                    "offset": applier.applied_offset + len(self._tail),
                    "wait": self.poll_wait,
                },
                retryable=False,
            )
            if not response.get("ok"):
                raise ReplicationError(
                    response.get("error", "repl_wal refused")
                )
            self._note_contact(response)
            if response.get("resync"):
                self._tail = b""
                await self._bootstrap(client)
                continue
            data = base64.b64decode(response["data"])
            if not data:
                self._update_lag()
                continue
            batches = [(response["offset"], data)]
            if self.link_filter is not None:
                batches = self.link_filter(response["offset"], data)
            for off, chunk in batches:
                if await self._deliver(off, chunk):
                    self._applied_event.set()
            self._update_lag()

    async def _deliver(self, off: int, chunk: bytes) -> int:
        """Integrate one (possibly perturbed) batch into the tail
        buffer and apply whatever complete commit groups it closes."""
        applier = self.applier
        base = applier.applied_offset
        buffered_end = base + len(self._tail)
        if off > buffered_end:
            raise ReplicationError(
                f"gap in shipped WAL stream: have bytes through"
                f" {buffered_end}, batch starts at {off}"
            )
        skip = buffered_end - off
        if skip >= len(chunk):
            return 0  # pure duplicate of bytes already buffered/applied
        self._tail += chunk[skip:]
        applied = await self.server._db(applier.feed, base, self._tail)
        if applied:
            self._tail = self._tail[applier.applied_offset - base:]
        return applied

    async def _bootstrap(self, client) -> None:
        """Fetch the primary's checkpoint in chunks and rebuild."""
        chunks: list[bytes] = []
        offset = 0
        while True:
            response = await client.request(
                {"op": "repl_snapshot", "offset": offset}, retryable=False
            )
            if not response.get("ok"):
                raise ReplicationError(
                    response.get("error", "repl_snapshot refused")
                )
            self._note_contact(response)
            chunk = base64.b64decode(response["data"])
            chunks.append(chunk)
            offset += len(chunk)
            if offset >= response["size"] or not chunk:
                break
        snapshot_bytes = b"".join(chunks)
        generation = response["generation"]
        # readers drain between statements; retry briefly for quiescence
        for _ in range(200):
            try:
                await self.server._db(
                    self.applier.bootstrap, snapshot_bytes, generation
                )
                self._applied_event.set()
                return
            except ReplicationError as exc:
                if not getattr(exc, "transient", False):
                    raise
                await asyncio.sleep(0.01)
        raise ReplicationError(
            "bootstrap could not acquire quiescence: readers kept"
            " snapshots pinned"
        )

    def _note_contact(self, response: dict) -> None:
        self.last_contact = asyncio.get_event_loop().time()
        if "commit_seq" in response:
            self.primary_commit_seq = response["commit_seq"]

    def _update_lag(self) -> None:
        if self.primary_commit_seq is None:
            return
        lag = max(0, self.primary_commit_seq - self.applier.applied_csn)
        self.server.db.obs.set_gauge("replication.lag_csn", lag)
