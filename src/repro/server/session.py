"""One connected client's engine session.

Everything here runs on the server's single database worker thread —
never on the event loop — so plain attribute swaps (``activate_txn``,
the statement-timeout save/restore) need no locking: the worker
serializes all engine access.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.temporal.stratum import SlicingStrategy

_UNSET = object()


class ServerSession:
    """A session's transaction manager plus per-session settings."""

    def __init__(self, stratum, txn) -> None:
        self.stratum = stratum
        self.txn = txn
        # per-session statement deadline: installed into the (global)
        # resilience config only for the duration of this session's own
        # statements, so one client's `.timeout` never affects another
        self.timeout: Optional[float] = None
        self.strategy = SlicingStrategy.AUTO

    @classmethod
    def open(cls, stratum, name: str) -> "ServerSession":
        return cls(stratum, stratum.db.create_session(name))

    def configure(self, timeout: Any = _UNSET, strategy: Any = _UNSET) -> None:
        if timeout is not _UNSET:
            self.timeout = timeout
        if strategy is not _UNSET:
            self.strategy = SlicingStrategy(str(strategy).lower())

    def run_statement(self, sql: str) -> tuple:
        """Execute one statement; returns ``(result, snapshot_csn)``.

        The snapshot is pinned *here*, before execution, so the
        response can report the csn the statement read through even for
        autocommit statements (whose pin is otherwise released before
        the result leaves the engine).  A ``BEGIN`` inherits the pin —
        the transaction's repeatable-read snapshot dates from the
        arrival of the BEGIN statement itself.
        """
        db = self.stratum.db
        db.activate_txn(self.txn)
        mvcc = db.mvcc
        txn = self.txn
        pinned = txn.snapshot is None
        if pinned:
            mvcc.pin(txn)
        resilience = db.resilience
        previous_timeout = resilience.statement_timeout
        resilience.statement_timeout = self.timeout
        try:
            result = self.stratum.execute(sql, strategy=self.strategy)
            snapshot = txn.snapshot
            if snapshot is None:  # COMMIT/ROLLBACK released the pin
                snapshot = mvcc.csn
            return result, snapshot
        finally:
            resilience.statement_timeout = previous_timeout
            if pinned and not txn.explicit:
                mvcc.unpin(txn)

    def close(self) -> None:
        """Tear down on disconnect: any open transaction rolls back and
        the snapshot pin is released (``Database.close_session``)."""
        self.stratum.db.close_session(self.txn)
