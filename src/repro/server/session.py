"""One connected client's engine session.

Everything here runs on the server's single database worker thread —
never on the event loop — so plain attribute swaps (``activate_txn``,
the statement-timeout save/restore) need no locking: the worker
serializes all engine access.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import ReadOnlyError
from repro.sqlengine.parser import parse_statement
from repro.temporal.stratum import SlicingStrategy, parse_set_strategy

_UNSET = object()


def _assert_read_allowed(stmt) -> None:
    """The standby's syntactic write gate.

    SELECT (plain or sequenced), transaction control, and EXPLAIN over
    an allowed statement pass; everything else — DML, DDL, CALL, and
    any PSM statement — raises a typed 25006.  The MVCC claim guard is
    the backstop for writes reached *through* an allowed statement
    (a function invoked by a SELECT mutating a table); this gate stops
    schema/registry mutations, which never claim a table.
    """
    if isinstance(stmt, (ast.Select, ast.TransactionStatement)):
        return
    if isinstance(stmt, ast.ExplainStatement) and not stmt.analyze:
        _assert_read_allowed(stmt.statement)
        return
    raise ReadOnlyError(
        f"cannot execute {type(stmt).__name__} on a read-only standby"
        " (25006); promote it first or write to the primary"
    )


class ServerSession:
    """A session's transaction manager plus per-session settings."""

    def __init__(self, stratum, txn) -> None:
        self.stratum = stratum
        self.txn = txn
        # per-session statement deadline: installed into the (global)
        # resilience config only for the duration of this session's own
        # statements, so one client's `.timeout` never affects another
        self.timeout: Optional[float] = None
        self.strategy = SlicingStrategy.AUTO
        # replication position captured when this session's snapshot
        # was pinned (standby role only)
        self._applied_at_pin: Optional[int] = None

    @classmethod
    def open(cls, stratum, name: str) -> "ServerSession":
        return cls(stratum, stratum.db.create_session(name))

    def configure(self, timeout: Any = _UNSET, strategy: Any = _UNSET) -> None:
        if timeout is not _UNSET:
            self.timeout = timeout
        if strategy is not _UNSET:
            self.strategy = SlicingStrategy(str(strategy).lower())

    def run_statement(self, sql: str) -> tuple:
        """Execute one statement; returns
        ``(result, snapshot_csn, applied_csn)``.

        The snapshot is pinned *here*, before execution, so the
        response can report the csn the statement read through even for
        autocommit statements (whose pin is otherwise released before
        the result leaves the engine).  A ``BEGIN`` inherits the pin —
        the transaction's repeatable-read snapshot dates from the
        arrival of the BEGIN statement itself.

        On a standby, ``applied_csn`` is the replication position
        captured at the same instant the pin was taken — the commit
        sequence number this statement's snapshot corresponds to — so
        every replica response makes its staleness explicit.  On a
        primary it is ``None``.
        """
        db = self.stratum.db
        # session setting, not SQL: intercepted before the parser (the
        # shell's `.strategy` equivalent for wire clients)
        chosen = parse_set_strategy(sql)
        if chosen is not None:
            self.strategy = chosen
            return f"sequenced strategy = {chosen.value}", db.mvcc.csn, None
        db.activate_txn(self.txn)
        mvcc = db.mvcc
        txn = self.txn
        statement = parse_statement(sql)
        if mvcc.read_only and txn is not db.root_txn:
            _assert_read_allowed(statement)
        pinned = txn.snapshot is None
        if pinned:
            mvcc.pin(txn)
            if mvcc.read_only and db.durability is not None:
                # the applier keeps txn_counter current; captured under
                # the pin so it names exactly this snapshot's position
                self._applied_at_pin = db.durability.txn_counter
        applied = (
            self._applied_at_pin
            if (mvcc.read_only and db.durability is not None)
            else None
        )
        resilience = db.resilience
        previous_timeout = resilience.statement_timeout
        resilience.statement_timeout = self.timeout
        try:
            result = self.stratum.execute_ast(statement, self.strategy)
            snapshot = txn.snapshot
            if snapshot is None:  # COMMIT/ROLLBACK released the pin
                snapshot = mvcc.csn
            return result, snapshot, applied
        finally:
            resilience.statement_timeout = previous_timeout
            if pinned and not txn.explicit:
                mvcc.unpin(txn)

    def close(self) -> None:
        """Tear down on disconnect: any open transaction rolls back and
        the snapshot pin is released (``Database.close_session``)."""
        self.stratum.db.close_session(self.txn)
