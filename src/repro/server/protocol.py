"""The wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON (always a JSON object).  Requests carry an ``op``
(``execute`` / ``set`` / ``ping`` / ``quit``); responses carry ``ok``
plus either an encoded ``result`` and the ``snapshot`` csn the
statement read through, or ``error`` text with its ``sqlstate``.

Cell values reuse the WAL's JSON coding (:func:`encode_value`), so a
:class:`~repro.sqlengine.values.Date` travels as ``{"d": ordinal}`` and
SQL NULL as JSON ``null`` — one codec for both persistence and wire.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Optional

from repro.sqlengine.executor import ResultSet
from repro.sqlengine.wal import decode_row, encode_row
from repro.temporal.stratum import TemporalResult

MAX_FRAME_BYTES = 8 * 1024 * 1024  # reject anything larger outright

_HEADER = struct.Struct(">I")


class FrameError(Exception):
    """A malformed, torn, or oversized frame.

    ``offset`` (when known) is the byte offset into the stream at which
    the offending frame began, so a malformed peer is diagnosable from
    the server log instead of leaving an opaque traceback in the drain
    path.
    """

    def __init__(self, message: str, offset: Optional[int] = None) -> None:
        if offset is not None:
            message = f"{message} (stream offset {offset})"
        super().__init__(message)
        self.offset = offset


class ConnectionClosed(FrameError):
    """The transport dropped: clean or torn EOF, or an I/O error.

    Distinguished from plain :class:`FrameError` (a *protocol*
    violation) so the client can tell "the link died — maybe retry"
    from "the peer is speaking garbage — don't".
    """


def encode_frame(message: dict) -> bytes:
    """One JSON object → length-prefixed bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


class FramedReader:
    """A frame reader that tracks its cumulative stream offset.

    Short reads never surface here: ``StreamReader.readexactly``
    assembles full reads from partial ones, and the event loop retries
    ``EINTR``-interrupted syscalls internally (PEP 475).  What this
    wrapper adds is *attribution*: every torn, oversized, or
    undecodable frame raises :class:`FrameError` carrying the byte
    offset at which the bad frame began, and transport ``OSError``s
    surface as typed :class:`ConnectionClosed` instead of leaking
    asyncio tracebacks out of the server's drain path.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        max_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self.max_bytes = max_bytes
        self.offset = 0  # bytes consumed from the stream so far

    async def read(self) -> Optional[dict]:
        """Read one frame; ``None`` on clean EOF between frames."""
        start = self.offset
        try:
            header = await self._reader.readexactly(_HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            self.offset += len(exc.partial)
            raise ConnectionClosed(
                "torn frame: connection closed mid-header", start
            ) from exc
        except OSError as exc:
            raise ConnectionClosed(
                f"connection I/O error: {exc}", start
            ) from exc
        self.offset += _HEADER.size
        (length,) = _HEADER.unpack(header)
        if length > self.max_bytes:
            raise FrameError(
                f"frame of {length} bytes exceeds the"
                f" {self.max_bytes}-byte limit",
                start,
            )
        try:
            payload = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            self.offset += len(exc.partial)
            raise ConnectionClosed(
                "torn frame: connection closed mid-payload", start
            ) from exc
        except OSError as exc:
            raise ConnectionClosed(
                f"connection I/O error: {exc}", start
            ) from exc
        self.offset += length
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(
                f"frame payload is not valid JSON: {exc}", start
            ) from exc
        if not isinstance(message, dict):
            raise FrameError("frame payload must be a JSON object", start)
        return message


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF between frames.

    A connection dropped mid-header or mid-payload, an oversized
    length, or a non-JSON payload raise :class:`FrameError` — the
    caller decides whether that tears down the connection (server) or
    surfaces to the application (client).
    """
    return await FramedReader(reader, max_bytes).read()


# -- result coding ---------------------------------------------------------


def encode_result(result: Any) -> dict:
    """One stratum result (DDL/DML/query/CALL) → a JSON-able envelope."""
    if result is None:
        return {"kind": "ok"}
    if isinstance(result, bool):  # before int: bool is an int subclass
        return {"kind": "text", "text": str(result)}
    if isinstance(result, int):
        return {"kind": "count", "count": result}
    if isinstance(result, TemporalResult):
        return {
            "kind": "temporal",
            "columns": list(result.columns),
            "rows": [encode_row(row) for row in result.rows],
        }
    if isinstance(result, ResultSet):
        return {
            "kind": "rows",
            "columns": list(result.columns),
            "rows": [encode_row(row) for row in result.rows],
        }
    if isinstance(result, list):  # CALL: a list of result sets
        return {"kind": "list", "items": [encode_result(r) for r in result]}
    return {"kind": "text", "text": str(result)}


def decode_result(payload: dict) -> Any:
    """Inverse of :func:`encode_result`, into client-side objects."""
    kind = payload.get("kind")
    if kind == "ok":
        return None
    if kind == "count":
        return payload["count"]
    if kind in ("rows", "temporal"):
        return ClientResult(
            kind,
            list(payload["columns"]),
            [decode_row(row) for row in payload["rows"]],
        )
    if kind == "list":
        return [decode_result(item) for item in payload["items"]]
    if kind == "text":
        return payload["text"]
    raise FrameError(f"unknown result kind {kind!r}")


class ClientResult:
    """A decoded query result: columns plus rows of SQL values.

    ``kind`` distinguishes plain (``rows``) from sequenced
    (``temporal``, last two columns are the validity period) results.
    """

    __slots__ = ("kind", "columns", "rows")

    def __init__(self, kind: str, columns: list, rows: list) -> None:
        self.kind = kind
        self.columns = columns
        self.rows = rows

    def scalar(self) -> Any:
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError("result is not a single scalar")
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"ClientResult({self.kind}, columns={self.columns},"
            f" rows={len(self.rows)})"
        )
