"""Experiment definitions for every figure and table in §VII.

Each function regenerates one artifact:

* :func:`line_counts` — §VII-B's code-expansion observation (original ≈30
  lines per query; MAX ≈100; PERST ≈125);
* :func:`fig12_context_small` — Figure 12: MAX vs PERST over temporal
  context length {1 day, 1 week, 1 month, 1 year} on DS1-SMALL;
* :func:`fig13_context_large` — Figure 13: the same on DS1-LARGE;
* :func:`fig14_scalability` — Figure 14: dataset size sweep S/M/L;
* :func:`fig15_data_characteristics` — Figure 15: DS1/DS2/DS3-SMALL
  (slice count and change distribution);
* :func:`heuristic_evaluation` — §VII-F: fraction of cells PERST wins
  and the accuracy of the multi-faceted heuristic.

Environment knobs (benchmarks can take a while at full scale):
``TAUPSM_QUERIES=q2,q7`` restricts the query set;
``TAUPSM_MAX_CONTEXT=30`` caps the longest context.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.bench.harness import CellResult, run_grid
from repro.bench.reporting import classify_queries, format_series_table
from repro.taubench.datasets import Dataset, build_dataset
from repro.taubench.queries import ALL_QUERIES, QuerySpec, get_query
from repro.temporal.heuristic import choose_strategy
from repro.temporal.stratum import SlicingStrategy

CONTEXTS = [1, 7, 30, 365]  # day, week, month, year (paper §VII-C)
_STRATEGIES = [SlicingStrategy.MAX, SlicingStrategy.PERST]


def _selected_queries() -> list[QuerySpec]:
    names = os.environ.get("TAUPSM_QUERIES")
    if not names:
        return list(ALL_QUERIES)
    return [get_query(n.strip()) for n in names.split(",") if n.strip()]


def _selected_contexts() -> list[int]:
    cap = int(os.environ.get("TAUPSM_MAX_CONTEXT", "365"))
    return [c for c in CONTEXTS if c <= cap]


@dataclass
class ExperimentResult:
    """Cells plus a printable report."""

    name: str
    cells: list[CellResult]
    report: str

    def __str__(self) -> str:
        return self.report


def _context_sweep(dataset: Dataset, title: str, name: str) -> ExperimentResult:
    queries = _selected_queries()
    contexts = _selected_contexts()
    cells = run_grid(dataset, queries, _STRATEGIES, contexts)
    table = format_series_table(
        cells, row_key="query", column_key="context_days", title=title
    )
    calls_table = format_series_table(
        cells,
        row_key="query",
        column_key="context_days",
        metric="routine_calls",
        title="routine invocations (machine-independent cost driver, §V/§VI):"
        " MAX grows with the constant-period count, PERST does not",
    )
    classes = classify_queries(
        [q.name for q in queries], dataset.spec.key, contexts, cells
    )
    class_lines = ["", "query classes (paper §VII-C):"]
    for query_name, klass in classes.items():
        class_lines.append(
            f"  {query_name}: {klass if klass else 'n/a (MAX only)'}"
        )
    report = table + "\n\n" + calls_table + "\n" + "\n".join(class_lines)
    return ExperimentResult(name=name, cells=cells, report=report)


def fig12_context_small() -> ExperimentResult:
    """Figure 12: varying temporal context on DS1-SMALL."""
    dataset = build_dataset("DS1", "SMALL")
    return _context_sweep(
        dataset,
        "Figure 12 — running time (s) vs temporal context, DS1-SMALL",
        "fig12",
    )


def fig13_context_large() -> ExperimentResult:
    """Figure 13: varying temporal context on DS1-LARGE."""
    size = os.environ.get("TAUPSM_FIG13_SIZE", "LARGE")
    dataset = build_dataset("DS1", size)
    return _context_sweep(
        dataset,
        f"Figure 13 — running time (s) vs temporal context, DS1-{size}",
        "fig13",
    )


def fig14_scalability(context_days: int = 30) -> ExperimentResult:
    """Figure 14: running time vs dataset size (S/M/L), fixed context."""
    queries = _selected_queries()
    cells: list[CellResult] = []
    for size in ["SMALL", "MEDIUM", "LARGE"]:
        dataset = build_dataset("DS1", size)
        for cell in run_grid(dataset, queries, _STRATEGIES, [context_days]):
            cell.dataset = size  # display key: the size is the x-axis
            cells.append(cell)
    report = format_series_table(
        cells,
        row_key="query",
        column_key="dataset",
        title=f"Figure 14 — running time (s) vs dataset size, DS1,"
        f" {context_days}-day context",
    )
    return ExperimentResult(name="fig14", cells=cells, report=report)


def fig15_data_characteristics(context_days: int = 30) -> ExperimentResult:
    """Figure 15: DS1 (weekly/uniform), DS2 (weekly/Gaussian), DS3
    (daily/uniform), all SMALL."""
    queries = _selected_queries()
    cells: list[CellResult] = []
    for dataset_name in ["DS1", "DS2", "DS3"]:
        dataset = build_dataset(dataset_name, "SMALL")
        for cell in run_grid(dataset, queries, _STRATEGIES, [context_days]):
            cell.dataset = dataset_name
            cells.append(cell)
    report = format_series_table(
        cells,
        row_key="query",
        column_key="dataset",
        title=f"Figure 15 — running time (s) vs data characteristics,"
        f" SMALL, {context_days}-day context",
    )
    return ExperimentResult(name="fig15", cells=cells, report=report)


# ---------------------------------------------------------------------------
# §VII-B line counts
# ---------------------------------------------------------------------------


def line_counts() -> ExperimentResult:
    """§VII-B: code size before/after each transformation.

    The paper counted lines of hand-formatted SQL files; formatting is
    not comparable across a machine renderer, so we measure *tokens*
    (formatting-independent) on the originals and both transformations,
    all produced by the same renderer.
    """
    from repro.sqlengine.lexer import tokenize
    from repro.sqlengine.parser import parse_statement
    from repro.temporal.max_slicing import transform_query_max
    from repro.temporal.perst_slicing import PerstTransformer

    def tokens_of(sql: str) -> int:
        return len(tokenize(sql)) - 1  # drop EOF

    dataset = build_dataset("DS1", "SMALL")
    stratum = dataset.stratum
    lines = ["§VII-B — SQL tokens per query (original → MAX → PERST)"]
    header = f"{'query':6s} {'original':>9s} {'MAX':>7s} {'PERST':>7s}"
    lines.append(header)
    lines.append("-" * len(header))
    totals = [0, 0, 0]
    cells: list[CellResult] = []
    for query in ALL_QUERIES:
        query.install(dataset)
        original = sum(tokens_of(r) for r in query.routines)
        original += tokens_of(query.conventional_sql(dataset))
        stmt = parse_statement(
            query.sequenced_sql(dataset, "2010-02-01", "2010-03-01")
        )
        max_result = transform_query_max(
            stmt, stratum.db.catalog, stratum.registry, "taupsm_cp"
        )
        max_tokens = tokens_of(max_result.to_sql())
        try:
            perst_result = PerstTransformer(
                stratum.db.catalog, stratum.registry
            ).transform(stmt)
            perst_tokens = tokens_of(perst_result.to_sql())
        except Exception:
            perst_tokens = 0
        lines.append(
            f"{query.name:6s} {original:9d} {max_tokens:7d} {perst_tokens:7d}"
        )
        totals[0] += original
        totals[1] += max_tokens
        totals[2] += perst_tokens
    lines.append("-" * len(header))
    lines.append(f"{'total':6s} {totals[0]:9d} {totals[1]:7d} {totals[2]:7d}")
    lines.append(
        f"expansion: MAX {totals[1] / totals[0]:.2f}x,"
        f" PERST {totals[2] / totals[0]:.2f}x over the original"
    )
    lines.append(
        "(paper, in lines of formatted SQL: ~500 original grew to ~1600 MAX"
        " / ~2000 PERST, i.e. ~3.2x / ~4x; PERST is the larger expansion)"
    )
    return ExperimentResult(name="line_counts", cells=cells, report="\n".join(lines))


# ---------------------------------------------------------------------------
# §VII-F heuristic accuracy
# ---------------------------------------------------------------------------


def heuristic_evaluation(cells: list[CellResult]) -> ExperimentResult:
    """Evaluate the §VII-F heuristic against measured cells.

    For every (query, dataset, context) with both strategies measured,
    compare the heuristic's pick to the actually-faster strategy.
    """
    from repro.sqlengine.parser import parse_statement
    from repro.temporal.heuristic import estimate_costs

    by_key: dict[tuple, dict[str, CellResult]] = {}
    for cell in cells:
        by_key.setdefault(
            (cell.query, cell.dataset, cell.context_days), {}
        )[cell.strategy] = cell
    datasets: dict[str, Dataset] = {}
    total = perst_wins = correct = near_tie_ok = cost_correct = 0
    rule_counts: dict[str, int] = {}
    for (query_name, dataset_key, context_days), pair in sorted(by_key.items()):
        max_cell = pair.get("max")
        perst_cell = pair.get("perst")
        if max_cell is None or not max_cell.ok:
            continue
        total += 1
        if perst_cell is None or not perst_cell.ok:
            actual = "max"
            near_tie = False
        else:
            actual = "perst" if perst_cell.seconds < max_cell.seconds else "max"
            slower = max(perst_cell.seconds, max_cell.seconds)
            faster = min(perst_cell.seconds, max_cell.seconds)
            near_tie = slower <= faster * 1.25
        if actual == "perst":
            perst_wins += 1
        dataset = datasets.get(dataset_key)
        if dataset is None:
            name, _, size = dataset_key.partition(".")
            if name not in ("DS1", "DS2", "DS3"):
                name, size = "DS1", dataset_key if dataset_key in (
                    "SMALL", "MEDIUM", "LARGE"
                ) else "SMALL"
            dataset = build_dataset(name, size or "SMALL")
            datasets[dataset_key] = dataset
        query = get_query(query_name)
        query.install(dataset)
        begin, end = _context_iso(dataset, context_days)
        stmt = parse_statement(query.sequenced_sql(dataset, begin, end))
        choice = choose_strategy(
            stmt, dataset.stratum.db, dataset.stratum.registry,
            dataset.context(context_days),
        )
        rule_counts[choice.rule] = rule_counts.get(choice.rule, 0) + 1
        if choice.strategy.value == actual:
            correct += 1
            near_tie_ok += 1
        elif near_tie:
            near_tie_ok += 1  # picked the "wrong" side of a near-tie
        # the §VIII future-work cost model, scored against the same cells
        if query.perst_applicable:
            estimate = estimate_costs(
                stmt, dataset.stratum.db, dataset.stratum.registry,
                dataset.context(context_days),
            )
            cost_pick = "perst" if estimate.prefers_perst else "max"
        else:
            cost_pick = "max"
        if cost_pick == actual:
            cost_correct += 1
    report_lines = [
        "§VII-F — heuristic evaluation",
        f"cells measured:        {total}",
        f"PERST faster:          {perst_wins}"
        f" ({100.0 * perst_wins / total:.0f}%)" if total else "no cells",
        f"heuristic correct:     {correct}"
        f" ({100.0 * correct / total:.0f}%)" if total else "",
        f"heuristic wrong:       {total - correct}"
        f" ({100.0 * (total - correct) / total:.0f}%)" if total else "",
        f"correct or near-tie:   {near_tie_ok}"
        f" ({100.0 * near_tie_ok / total:.0f}%)"
        "  (misses where the strategies were within 25%)" if total else "",
        f"cost model correct:    {cost_correct}"
        f" ({100.0 * cost_correct / total:.0f}%)"
        "  (§VIII future-work replacement for the heuristic)" if total else "",
        f"rule firings:          {dict(sorted(rule_counts.items()))}",
        "(paper: PERST faster in ~70% of 160 points; heuristic wrong ~13%)",
    ]
    return ExperimentResult(
        name="heuristic", cells=cells, report="\n".join(report_lines)
    )


def _context_iso(dataset: Dataset, days: int) -> tuple[str, str]:
    from repro.sqlengine.values import Date

    period = dataset.context(days)
    return Date(period.begin).to_iso(), Date(period.end).to_iso()
