"""Run one (query, strategy, dataset, context) cell and collect metrics.

Wall-clock time is environment-specific; the engine's own counters
(routine invocations, statements executed, rows written) are the
machine-independent cost drivers the paper's analysis is based on, so
every cell records both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.sqlengine.values import Date
from repro.taubench.datasets import Dataset
from repro.taubench.queries import QuerySpec
from repro.temporal.errors import PerStatementInapplicableError, TemporalError
from repro.temporal.stratum import SlicingStrategy


@dataclass
class CellResult:
    """One measurement cell."""

    query: str
    strategy: str
    dataset: str
    context_days: int
    seconds: float = 0.0
    rows: int = 0
    routine_calls: int = 0
    statements: int = 0
    rows_written: int = 0
    inapplicable: bool = False
    error: Optional[str] = None
    # two-phase execution counters (bind/plan layer + stratum transform
    # cache); appended after the original fields so positional callers
    # keep working
    plans_compiled: int = 0
    plan_cache_hits: int = 0
    transform_cache_hits: int = 0
    # observability counters (also appended-only): constant periods
    # materialized and base-table rows scanned during the timed run
    slices: int = 0
    rows_scanned: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None and not self.inapplicable


def context_bounds(dataset: Dataset, days: int) -> tuple[str, str]:
    period = dataset.context(days)
    return Date(period.begin).to_iso(), Date(period.end).to_iso()


def run_cell(
    dataset: Dataset,
    query: QuerySpec,
    strategy: SlicingStrategy,
    context_days: int,
    warm: bool = True,
) -> CellResult:
    """Execute one cell; returns timings and engine counters.

    ``warm`` runs the statement once untimed first (the paper measured
    with a warm cache to focus on CPU cost).
    """
    cell = CellResult(
        query=query.name,
        strategy=strategy.value,
        dataset=dataset.spec.key,
        context_days=context_days,
    )
    if strategy is SlicingStrategy.PERST and not query.perst_applicable:
        cell.inapplicable = True
        return cell
    query.install(dataset)
    begin_iso, end_iso = context_bounds(dataset, context_days)
    sequenced = query.sequenced_sql(dataset, begin_iso, end_iso)
    stratum = dataset.stratum
    try:
        if warm:
            stratum.execute(sequenced, strategy=strategy)
        stats = stratum.db.stats
        before = stats.snapshot()
        slices_before = stratum.db.obs.value("stratum.slices")
        started = time.perf_counter()
        result = stratum.execute(sequenced, strategy=strategy)
        cell.seconds = time.perf_counter() - started
        after = stats.snapshot()
        cell.slices = stratum.db.obs.value("stratum.slices") - slices_before
        cell.rows = (
            sum(len(r) for r in result) if isinstance(result, list) else len(result)
        )
        cell.routine_calls = (
            after["total_routine_calls"] - before["total_routine_calls"]
        )
        cell.statements = after["statements"] - before["statements"]
        cell.rows_written = after["rows_written"] - before["rows_written"]
        cell.plans_compiled = after["plans_compiled"] - before["plans_compiled"]
        cell.plan_cache_hits = (
            after["plan_cache_hits"] - before["plan_cache_hits"]
        )
        cell.transform_cache_hits = (
            after["transform_cache_hits"] - before["transform_cache_hits"]
        )
        cell.rows_scanned = after["rows_scanned"] - before["rows_scanned"]
    except PerStatementInapplicableError:
        cell.inapplicable = True
    except TemporalError as exc:
        cell.error = str(exc)
    return cell


def run_grid(
    dataset: Dataset,
    queries: list[QuerySpec],
    strategies: list[SlicingStrategy],
    contexts: list[int],
    warm: bool = True,
) -> list[CellResult]:
    """The full cross product of cells for one dataset."""
    cells: list[CellResult] = []
    for query in queries:
        for days in contexts:
            for strategy in strategies:
                cells.append(run_cell(dataset, query, strategy, days, warm=warm))
    return cells
