"""Experiment harness regenerating the paper's figures (§VII)."""

from repro.bench.harness import CellResult, run_cell, run_grid
from repro.bench.experiments import (
    CONTEXTS,
    fig12_context_small,
    fig13_context_large,
    fig14_scalability,
    fig15_data_characteristics,
    heuristic_evaluation,
    line_counts,
)
from repro.bench.reporting import classify_queries, format_series_table

__all__ = [
    "CellResult",
    "run_cell",
    "run_grid",
    "CONTEXTS",
    "fig12_context_small",
    "fig13_context_large",
    "fig14_scalability",
    "fig15_data_characteristics",
    "heuristic_evaluation",
    "line_counts",
    "classify_queries",
    "format_series_table",
]
