"""Result formatting and the paper's query classification (§VII-C).

Classes over a temporal-context sweep:

* **A** — PERST always faster;
* **B** — MAX faster for short contexts, PERST overtakes (crossover);
* **C** — MAX always faster;
* **D** — MAX starts faster and PERST approaches/meets it at the longest
  context (within a tolerance band).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.harness import CellResult

_APPROACH_TOLERANCE = 1.35  # "approaches or meets" band for class D


def cell_lookup(cells: list[CellResult]) -> dict[tuple, CellResult]:
    return {
        (c.query, c.strategy, c.dataset, c.context_days): c for c in cells
    }


def classify_query(
    query: str,
    dataset: str,
    contexts: list[int],
    cells: list[CellResult],
) -> Optional[str]:
    """Class A/B/C/D for one query's context sweep, or None (no PERST)."""
    lookup = cell_lookup(cells)
    pairs = []
    for days in contexts:
        max_cell = lookup.get((query, "max", dataset, days))
        perst_cell = lookup.get((query, "perst", dataset, days))
        if max_cell is None or perst_cell is None or not max_cell.ok:
            return None
        if not perst_cell.ok:
            return None
        pairs.append((max_cell.seconds, perst_cell.seconds))
    perst_faster = [p < m for m, p in pairs]
    if all(perst_faster):
        return "A"
    if not any(perst_faster):
        final_max, final_perst = pairs[-1]
        if final_perst <= final_max * _APPROACH_TOLERANCE:
            return "D"
        return "C"
    if perst_faster[-1] and not perst_faster[0]:
        return "B"
    # mixed in other orders: closest match is B (a crossover exists)
    return "B"


def classify_queries(
    queries: list[str], dataset: str, contexts: list[int], cells: list[CellResult]
) -> dict[str, Optional[str]]:
    return {
        q: classify_query(q, dataset, contexts, cells) for q in queries
    }


def format_series_table(
    cells: list[CellResult],
    row_key: str = "query",
    column_key: str = "context_days",
    metric: str = "seconds",
    title: str = "",
) -> str:
    """An aligned text table: rows × columns of one metric, both strategies.

    Mirrors the figures: one row per query, one column per x-axis value,
    each cell showing ``MAX/PERST``.
    """
    rows = sorted({getattr(c, row_key) for c in cells}, key=_natural)
    columns = sorted({getattr(c, column_key) for c in cells}, key=_natural)
    lookup: dict[tuple, CellResult] = {}
    for cell in cells:
        lookup[(getattr(cell, row_key), getattr(cell, column_key), cell.strategy)] = cell
    header = [row_key] + [f"{column_key}={c}" for c in columns]
    widths = [max(8, len(h)) for h in header]
    lines = []
    if title:
        lines.append(title)
    body: list[list[str]] = []
    for row in rows:
        formatted = [str(row)]
        for column in columns:
            max_cell = lookup.get((row, column, "max"))
            perst_cell = lookup.get((row, column, "perst"))
            formatted.append(
                f"{_fmt(max_cell, metric)}/{_fmt(perst_cell, metric)}"
            )
        body.append(formatted)
    for formatted in body:
        for i, value in enumerate(formatted):
            widths[i] = max(widths[i], len(value))
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for formatted in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(formatted, widths)))
    lines.append("")
    lines.append(f"cells show MAX/PERST {metric}; 'n/a' = transformation inapplicable")
    return "\n".join(lines)


COUNTER_METRICS = [
    "routine_calls",
    "rows_written",
    "plans_compiled",
    "plan_cache_hits",
    "transform_cache_hits",
    "slices",
    "rows_scanned",
]


def format_counters(cells: list[CellResult], title: str = "") -> str:
    """One row per cell: the machine-independent cost counters, the
    two-phase execution counters alongside routine calls / rows written."""
    header = ["query", "strategy", "context_days", "seconds"] + COUNTER_METRICS
    body: list[list[str]] = []
    for cell in cells:
        body.append(
            [cell.query, cell.strategy, str(cell.context_days)]
            + [_fmt(cell, m) for m in ["seconds"] + COUNTER_METRICS]
        )
    widths = [len(h) for h in header]
    for row in body:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = [title] if title else []
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def trace_summary(db) -> dict:
    """A JSON-able view of one database's observability state.

    Emitted into the ``BENCH_*.json`` files (and uploaded as a CI
    artifact) so a benchmark run carries the metrics that produced it:
    slice counts, per-slice/per-invocation timing means, rows
    scanned/written by source, cache traffic, undo-log depth.
    """
    # recompute the storage gauge so the payload carries the columnar
    # footprint of the run that produced it
    db.refresh_storage_gauges()
    summary = {
        "stats": db.stats.snapshot(),
        "metrics": db.obs.snapshot(),
    }
    if db.durability is not None:
        summary["wal"] = db.durability.state()
    return summary


def _fmt(cell: Optional[CellResult], metric: str) -> str:
    if cell is None:
        return "?"
    if cell.inapplicable:
        return "n/a"
    if cell.error:
        return "ERR"
    value = getattr(cell, metric)
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _natural(value):
    if isinstance(value, int):
        return (0, value, "")
    text = str(value)
    digits = "".join(ch for ch in text if ch.isdigit())
    return (1, int(digits) if digits else 0, text)
