"""Point-wise transformation: evaluate SQL at a single time granule.

This is the shared core of three transformations:

* **current** semantics (§IV-C): point = ``CURRENT_DATE``;
* **maximally-fragmented slicing** (§V): point = ``cp.begin_time`` in the
  invoking query and the ``begin_time_in`` parameter inside routines;
* **per-statement slicing's loop fallback** (§VI-C): point =
  ``taupsm_cp.begin_time`` of the per-statement constant-period loop.

Given a statement and a point expression, every SELECT gains, for each
temporal table in *its own* FROM clause, the overlap condition
``t.begin_time <= point AND point < t.end_time``; calls to routines that
(transitively) read temporal data are renamed per ``rename_map`` with
the point (or other extra arguments) appended.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sqlengine import ast_nodes as ast
from repro.temporal.errors import TemporalError
from repro.temporal.schema import TemporalRegistry
from repro.temporal.transform_util import (
    add_condition,
    add_join_condition,
    and_all,
    classify_from_sources,
    overlap_at_point,
    rename_routine_calls,
    selects_in,
)


def add_point_conditions(
    node: ast.Node,
    point: ast.Expression,
    registry: TemporalRegistry,
    skip: tuple = (),
) -> None:
    """Add overlap-at-point predicates to every SELECT under ``node``.

    Each SELECT gets conditions only for the temporal tables its own FROM
    clause mentions (the paper: "added to *all* the where clauses whose
    associated from clause mentions a temporal table").  Temporal tables
    on the right side of a LEFT join take their condition in the ON
    clause so null-extension survives.

    ``skip`` names Select nodes (by identity) to leave untouched —
    SEQ-SET replaces the root select's overlap predicates with its
    alignment operator but still point-transforms nested subqueries.
    """
    for select in selects_in(node):
        if any(select is skipped for skipped in skip):
            continue
        where_pairs, join_pairs = classify_from_sources(select)
        conditions = []
        for table_name, alias in where_pairs:
            info = registry.get(table_name)
            if info is not None:
                conditions.append(
                    overlap_at_point(alias, point, info.begin_column, info.end_column)
                )
        add_condition(select, and_all(conditions))
        for join, pairs in join_pairs:
            for table_name, alias in pairs:
                info = registry.get(table_name)
                if info is not None:
                    add_join_condition(
                        join,
                        overlap_at_point(
                            alias, point, info.begin_column, info.end_column
                        ),
                    )


def forbid_temporal_dml(node: ast.Node, registry: TemporalRegistry) -> None:
    """Sequenced/current routines must not modify temporal base tables.

    The paper's workload is read-only routines (READS SQL DATA); writes
    to temporary tables and variables are fine, but a point-wise
    evaluated write to a temporal base table would be applied once per
    slice and corrupt history.
    """
    for child in ast.walk(node):
        if isinstance(child, (ast.Insert, ast.Update, ast.Delete)):
            if registry.is_temporal(child.table):
                raise TemporalError(
                    f"routine modifies temporal table {child.table!r};"
                    " sequenced/current transformation supports read-only"
                    " access to temporal tables"
                )


def transform_statement_at_point(
    stmt: ast.Statement,
    point: ast.Expression,
    registry: TemporalRegistry,
    rename_map: dict[str, str],
    extra_args: Optional[Callable[[], list[ast.Expression]]] = None,
) -> None:
    """In-place point-wise transformation of a statement tree."""
    forbid_temporal_dml(stmt, registry)
    add_point_conditions(stmt, point, registry)
    rename_routine_calls(stmt, rename_map, extra_args)
