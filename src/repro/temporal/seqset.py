"""Set-oriented sequenced evaluation (SEQ-SET).

MAX evaluates a sequenced query once per constant period — thousands of
engine round-trips on a long context.  Following Dignös/Glavic/Böhlen
(*Snapshot Semantics for Temporal Multiset Relations*), a routine-free
sequenced SELECT can instead be compiled once into a single set-oriented
plan over the same constant-period grid:

* **TemporalAlign** — each FROM table's rows are mapped onto the grid in
  one pass: a row valid over ``[b, e)`` is alive in exactly the periods
  whose begin point ``pb`` satisfies ``b <= pb < e`` (MAX's stab
  predicate), which over the sorted period begins is the contiguous
  index range ``[bisect_left(begins, b), bisect_left(begins, e))``.
  Candidate rows come from the table's :class:`IntervalIndex` overlap
  probe against the temporal context (NULL-bounded rows drop out by the
  index's documented contract, exactly as a NULL comparison drops them
  under MAX), and single-table conjuncts that have vectorized kernels
  are applied **once** over the candidate set instead of once per
  period.
* **IntervalJoin** — the aligned inputs are combined period-major in
  FROM order with candidate positions ascending, reproducing MAX's
  nested-loop emission order byte for byte; multi-table conjuncts run as
  one compiled residual predicate per combination.

Rows are emitted per period (each aligned row is handled as one
coalesced run of adjacent periods internally and expanded at emission),
so results are row-identical to MAX, including DISTINCT (first
occurrence per period) and column naming.

Coverage is deliberately conservative: any statement shape outside the
proven-identical fragment raises :class:`SeqSetUnsupportedError` at
compile time (and :class:`SeqSetRuntimeFallback` when the vectorized
path degrades at run time), and the stratum falls back to MAX — the
fallback reproduces MAX's results *and errors* exactly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.engine import Database
from repro.sqlengine.executor import (
    Binding,
    Env,
    _contains_aggregate,
    _split_conjuncts,
)
from repro.sqlengine.exprcompile import (
    BatchFilter,
    _batch_kernel,
    compile_expression,
)
from repro.sqlengine.planner import IntervalJoin, TemporalAlign
from repro.sqlengine.values import Date, sort_key, truth
from repro.temporal import analysis
from repro.temporal.errors import TemporalError
from repro.temporal.period import Period
from repro.temporal.pointwise import add_point_conditions
from repro.temporal.schema import TemporalRegistry
from repro.temporal.transform_util import and_all, clone, unique_name

CP_COLMAP = {"begin_time": 0, "end_time": 1}


class SeqSetUnsupportedError(TemporalError):
    """The statement shape is outside the SEQ-SET fragment."""


class SeqSetRuntimeFallback(Exception):
    """The vectorized path is unavailable for this execution (governor
    degradation, column-store surprise); re-run the statement under MAX."""


class _AlignedSource:
    """One FROM table's compiled alignment state."""

    __slots__ = (
        "name", "binding", "alias", "colmap", "temporal",
        "begin_index", "end_index", "kernels",
    )

    def __init__(self, name: str, binding: str) -> None:
        self.name = name
        self.binding = binding  # original spelling, for kernel compilation
        self.alias = binding.lower()
        self.colmap: dict[str, int] = {}
        self.temporal = False
        self.begin_index: Optional[int] = None
        self.end_index: Optional[int] = None
        self.kernels: list = []


class SeqSetPlan:
    """A compiled set-oriented plan for one sequenced SELECT."""

    __slots__ = (
        "select", "cp_alias", "sources", "residual_c", "residual_count",
        "projections", "columns", "distinct", "temporal_tables",
        "needs_env", "root",
    )

    def __init__(self) -> None:
        self.select: Optional[ast.Select] = None
        self.cp_alias = "cp"
        self.sources: list[_AlignedSource] = []
        self.residual_c = None
        self.residual_count = 0
        self.projections: list[tuple] = []
        self.columns: list[str] = []
        self.distinct = False
        self.temporal_tables: list[str] = []
        self.needs_env = False
        self.root: Optional[IntervalJoin] = None


def _unsupported(reason: str) -> SeqSetUnsupportedError:
    return SeqSetUnsupportedError(reason)


def _collect_taken_names(stmt: ast.Select) -> set[str]:
    """Every alias or qualifier the statement uses (lowercased), so the
    synthetic cp binding cannot capture or shadow any of them."""
    taken: set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.TableRef):
            taken.add(node.binding.lower())
            taken.add(node.name.lower())
        elif isinstance(node, (ast.SubqueryRef, ast.TableFunctionRef)):
            taken.add(node.alias.lower())
        elif isinstance(node, ast.Name) and node.qualifier is not None:
            taken.add(node.qualifier.lower())
    return taken


def compile_seqset(
    db: Database,
    registry: TemporalRegistry,
    stmt: ast.Statement,
    other_registry: Optional[TemporalRegistry] = None,
) -> SeqSetPlan:
    """Compile a sequenced SELECT into a :class:`SeqSetPlan`, or raise
    :class:`SeqSetUnsupportedError` naming the first uncovered feature."""
    if not isinstance(stmt, ast.Select):
        raise _unsupported(
            f"sequenced {type(stmt).__name__} has no set-oriented form"
        )
    if stmt.set_op:
        raise _unsupported(f"set operation ({stmt.set_op})")
    if stmt.group_by or stmt.having:
        raise _unsupported("grouping (MAX groups per constant period)")
    if stmt.order_by:
        raise _unsupported("ORDER BY")
    if stmt.limit is not None:
        raise _unsupported("LIMIT")
    if not stmt.from_items:
        raise _unsupported("no FROM clause")
    for item in stmt.items:
        if item.is_star:
            raise _unsupported("star projection")
        if _contains_aggregate(item.expr):
            raise _unsupported(
                "aggregate projection (MAX aggregates per constant period)"
            )
    routines = analysis.reachable_routines(stmt, db.catalog)
    if routines:
        raise _unsupported(
            "invokes routine(s) " + ", ".join(sorted(routines))
        )
    if other_registry is not None and analysis.reads_temporal(
        stmt, db.catalog, other_registry
    ):
        raise _unsupported(
            "reads temporal tables along the other time dimension"
        )
    for from_item in stmt.from_items:
        if not isinstance(from_item, ast.TableRef):
            raise _unsupported(
                f"FROM source {type(from_item).__name__}"
            )
        if db.catalog.has_view(from_item.name):
            raise _unsupported(f"view {from_item.name} in FROM")
        if not db.catalog.has_table(from_item.name):
            raise _unsupported(f"unknown table {from_item.name}")

    # the transformed statement: modifier stripped, nested subqueries
    # point-transformed against the synthetic cp binding (the root
    # select's overlap predicates are replaced by the alignment itself)
    select = clone(stmt)
    select.modifier = None
    cp_alias = unique_name("cp", _collect_taken_names(select))
    point = ast.Name(qualifier=cp_alias, name="begin_time")
    add_point_conditions(select, point, registry, skip=(select,))

    executor = db.executor
    plan = SeqSetPlan()
    plan.select = select
    plan.cp_alias = cp_alias
    plan.distinct = bool(select.distinct)
    plan.temporal_tables = analysis.reachable_temporal_tables(
        stmt, db.catalog, registry
    )

    layout: dict = {}
    tables = []
    for from_item in select.from_items:
        table = db.catalog.get_table(from_item.name)
        source = _AlignedSource(table.name, from_item.binding)
        if source.alias in layout:
            raise _unsupported(f"duplicate FROM alias {source.alias}")
        source.colmap = {
            c.lower(): i for i, c in enumerate(table.column_names)
        }
        layout[source.alias] = source.colmap
        info = registry.get(from_item.name)
        if info is not None:
            if not (
                table.has_column(info.begin_column)
                and table.has_column(info.end_column)
            ):
                raise _unsupported(
                    f"{table.name} is missing its period columns"
                )
            source.temporal = True
            source.begin_index = table.column_index(info.begin_column)
            source.end_index = table.column_index(info.end_column)
        plan.sources.append(source)
        tables.append(table)
    if cp_alias in layout:  # pragma: no cover - unique_name prevents this
        raise _unsupported("cp alias collision")
    layout_with_cp = dict(layout)
    layout_with_cp[cp_alias] = CP_COLMAP

    # conjunct classification: a conjunct with a vectorized kernel on one
    # source is applied once over that source's aligned candidates; the
    # rest become one compiled residual predicate per emitted combination
    residual: list[ast.Expression] = []
    for conjunct in _split_conjuncts(select.where):
        kernel = None
        for source, table in zip(plan.sources, tables):
            kernel = _batch_kernel(
                executor, table, source.binding, conjunct, select.from_items
            )
            if kernel is not None:
                source.kernels.append(kernel)
                break
        if kernel is None:
            residual.append(conjunct)
    residual_expr = and_all(residual)
    if residual_expr is not None:
        plan.residual_c = compile_expression(
            executor, residual_expr, layout_with_cp
        )
        if plan.residual_c is None:
            raise _unsupported("predicate outside the compiled fragment")
        plan.residual_count = len(residual)

    for item in select.items:
        slot = None
        for index, (source, table) in enumerate(zip(plan.sources, tables)):
            column = executor._column_of(
                item.expr, table, source.binding, select.from_items
            )
            if column is not None:
                slot = ("slot", index, column)
                break
        if slot is not None:
            plan.projections.append(slot)
        else:
            compiled = compile_expression(executor, item.expr, layout_with_cp)
            if compiled is None:
                raise _unsupported("select item outside the compiled fragment")
            plan.projections.append(("closure", compiled, None))
    plan.columns = executor._output_columns(select, Env())
    plan.needs_env = plan.residual_c is not None or any(
        kind == "closure" for kind, _, _ in plan.projections
    )
    plan.root = IntervalJoin(
        inputs=[
            TemporalAlign(
                name=source.name,
                alias=source.alias,
                pair=(
                    (
                        tables[i].column_names[source.begin_index],
                        tables[i].column_names[source.end_index],
                    )
                    if source.temporal
                    else None
                ),
                kernel_count=len(source.kernels),
                temporal=source.temporal,
            )
            for i, source in enumerate(plan.sources)
        ],
        residual_conjuncts=plan.residual_count,
        distinct=plan.distinct,
    )
    return plan


def seqset_applicable(
    stmt: ast.Statement,
    db: Database,
    registry: TemporalRegistry,
    other_registry: Optional[TemporalRegistry] = None,
) -> tuple[bool, str]:
    """Can SEQ-SET evaluate this statement?  (Mirrors
    :func:`repro.temporal.heuristic.perst_applicable`.)"""
    try:
        compile_seqset(db, registry, stmt, other_registry=other_registry)
    except SeqSetUnsupportedError as exc:
        return False, str(exc)
    return True, ""


def execute_seqset(
    db: Database,
    plan: SeqSetPlan,
    context: Period,
    cp_table_name: str,
) -> tuple[list[str], list[list[Any]]]:
    """Run a compiled plan against the materialized constant periods.

    Returns ``(columns, rows)`` with the period columns appended —
    row-identical to what MAX's transformed query would produce.
    """
    periods = db.catalog.get_table(cp_table_name).rows
    period_count = len(periods)
    period_begins = [row[0].ordinal for row in periods]
    resilience = db.resilience
    obs = db.obs

    env = Env()
    cp_row: list[Any] = [None, None]
    env.bindings[plan.cp_alias] = Binding(CP_COLMAP, cp_row)

    row_lists: list[list] = []
    bucket_lists: list[list[list[int]]] = []
    bindings: list[Binding] = []
    for source in plan.sources:
        table = db.read_table(source.name)
        rows = table.rows
        if source.temporal:
            begin_index, end_index = source.begin_index, source.end_index
            if db.interval_indexing_enabled:
                index = table.interval_index(begin_index, end_index)
                positions = index.search_positions(
                    context.end - 1, context.begin + 1
                )
                obs.inc("engine.interval_index_hits")
                pruned = len(rows) - len(positions)
                if pruned:
                    obs.inc("engine.interval_rows_pruned", pruned)
            else:
                # linear scan with the same membership rule the index
                # documents: Date-bounded rows overlapping the context
                # (the index is pruning-only — disabling it must never
                # change a result)
                positions = [
                    position
                    for position, row in enumerate(rows)
                    if isinstance(row[begin_index], Date)
                    and isinstance(row[end_index], Date)
                    and row[begin_index].ordinal <= context.end - 1
                    and row[end_index].ordinal >= context.begin + 1
                ]
        else:
            positions = list(range(len(rows)))
        if source.kernels:
            if not resilience.allow_columnar(table):
                raise SeqSetRuntimeFallback(
                    "resource governor denied the columnar store for"
                    f" {source.name}"
                )
            filtered = BatchFilter(source.kernels, True).apply(
                table, positions, env
            )
            if filtered is None:
                raise SeqSetRuntimeFallback(
                    f"vectorized filter unavailable on {source.name}"
                )
            positions = filtered
        obs.inc("engine.rows_scanned", len(positions))
        if source.temporal:
            buckets: list[list[int]] = [[] for _ in range(period_count)]
            begin_index, end_index = source.begin_index, source.end_index
            for position in positions:
                row = rows[position]
                lo = bisect_left(period_begins, row[begin_index].ordinal)
                hi = bisect_left(period_begins, row[end_index].ordinal)
                for k in range(lo, hi):
                    buckets[k].append(position)
        else:
            # a non-temporal table is alive in every period (MAX cross
            # joins it with the cp table unconditioned)
            buckets = [positions] * period_count
        binding = Binding(source.colmap, ())
        env.bindings[source.alias] = binding
        row_lists.append(rows)
        bucket_lists.append(buckets)
        bindings.append(binding)

    columns = plan.columns + ["begin_time", "end_time"]
    out: list[list[Any]] = []
    projections = plan.projections
    residual_c = plan.residual_c
    distinct = plan.distinct
    depth = len(plan.sources)

    # fast path: single table, fully-kernelized predicate, slot-only
    # projection — pure index arithmetic, no Env in the loop
    if (
        depth == 1
        and residual_c is None
        and not distinct
        and not plan.needs_env
    ):
        indexes = [column for _, _, column in projections]
        rows = row_lists[0]
        buckets = bucket_lists[0]
        armed = resilience.armed
        for k in range(period_count):
            if armed:
                resilience.check()
            bucket = buckets[k]
            if not bucket:
                continue
            begin, end = periods[k]
            for position in bucket:
                row = rows[position]
                values = [row[i] for i in indexes]
                values.append(begin)
                values.append(end)
                out.append(values)
        return columns, out

    def expand(level: int, seen: Optional[set], begin, end) -> None:
        rows = row_lists[level]
        binding = bindings[level]
        bucket = bucket_lists[level][current_period[0]]
        last = level == depth - 1
        for position in bucket:
            binding.row = rows[position]
            if not last:
                expand(level + 1, seen, begin, end)
                continue
            if residual_c is not None and not truth(residual_c(env)):
                continue
            values = []
            for kind, a, b in projections:
                if kind == "slot":
                    values.append(bindings[a].row[b])
                else:
                    values.append(a(env))
            if seen is not None:
                key = tuple(sort_key(v) for v in values)
                if key in seen:
                    continue
                seen.add(key)
            values.append(begin)
            values.append(end)
            out.append(values)

    current_period = [0]
    for k in range(period_count):
        # watchdog: like MAX's loop, every period is a cancellation point
        if resilience.armed:
            resilience.check()
        if any(not bucket_lists[i][k] for i in range(depth)):
            continue
        begin, end = periods[k]
        cp_row[0] = begin
        cp_row[1] = end
        current_period[0] = k
        # DISTINCT dedupes within a period only: under MAX the appended
        # period columns make rows from different periods distinct
        expand(0, set() if distinct else None, begin, end)
    return columns, out
