"""The temporal stratum (paper §III, §IV).

:class:`TemporalStratum` sits in front of a conventional
:class:`~repro.sqlengine.Database` exactly like the paper's stratum sits
in front of DB2: Temporal SQL/PSM comes in, conventional SQL/PSM goes
down to the engine.

* Tables gain valid-time support via ``ALTER TABLE t ADD VALIDTIME`` or
  :meth:`TemporalStratum.create_temporal_table`.
* Statements without a temporal modifier keep their legacy meaning on
  the current state (temporal upward compatibility): they are run
  through the ``cur⟦·⟧`` transformation when they touch temporal tables.
* ``VALIDTIME [bt, et] Q`` executes Q with sequenced semantics using
  either maximally-fragmented slicing (MAX) or per-statement slicing
  (PERST); ``SlicingStrategy.AUTO`` applies the paper's §VII-F
  heuristic.
* ``NONSEQUENCED VALIDTIME Q`` runs Q conventionally with timestamp
  columns exposed.

Use :meth:`TemporalStratum.transform` to inspect the conventional SQL a
statement turns into (the paper's Figures 5-11).
"""

from __future__ import annotations

import enum
import re
import time
from typing import Any, Optional, Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Routine
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.executor import Binding, Env, ResultSet
from repro.sqlengine.parser import parse_script, parse_statement
from repro.sqlengine.storage import Column
from repro.sqlengine.types import SqlType
from repro.sqlengine.values import Date, Null, truth
from repro.temporal import analysis
from repro.temporal.constant_periods import materialize_constant_periods
from repro.temporal.current import CurrentTransformResult, transform_current
from repro.temporal.errors import SequencedContextError, TemporalError
from repro.temporal.max_slicing import (
    MaxTransformResult,
    statement_key,
    transform_query_max,
)
from repro.temporal.period import Period, coalesce
from repro.temporal.perst_slicing import (
    BEGIN_PARAM,
    END_PARAM,
    PerstTransformer,
    PerstTransformResult,
)
from repro.obs.tracing import _NOOP as _NO_SPAN
from repro.temporal.schema import TemporalRegistry, TemporalTableInfo
from repro.temporal.transform_util import clone, rewrite_expressions

MAX_CP_TABLE = "taupsm_cp"


class SlicingStrategy(enum.Enum):
    """How to evaluate a sequenced statement.

    ``AUTO`` applies the paper's §VII-F rule heuristic (extended with a
    SEQ-SET rule); ``COST`` uses the §VIII future-work cost model
    (predicted relative cost from the constant-period count and expected
    routine invocations) instead.  ``SEQSET`` compiles routine-free
    queries into one set-oriented pass (interval alignment + interval
    join, :mod:`repro.temporal.seqset`) and transparently falls back to
    MAX whenever a routine is invoked or the shape is not covered.
    """

    MAX = "max"
    PERST = "perst"
    AUTO = "auto"
    COST = "cost"
    SEQSET = "seqset"


_SET_STRATEGY_RE = re.compile(
    r"^\s*SET\s+STRATEGY\s+(\w+)\s*;?\s*$", re.IGNORECASE
)


def parse_set_strategy(sql: str) -> Optional[SlicingStrategy]:
    """Recognize the session statement ``SET STRATEGY <name>``.

    Returns the named :class:`SlicingStrategy`, ``None`` when ``sql`` is
    not a SET STRATEGY statement at all, and raises
    :class:`TemporalError` for an unknown strategy name — callers (the
    shell, a server session) intercept this before the SQL parser sees
    the text.
    """
    match = _SET_STRATEGY_RE.match(sql)
    if match is None:
        return None
    try:
        return SlicingStrategy(match.group(1).lower())
    except ValueError:
        names = ", ".join(member.value for member in SlicingStrategy)
        raise TemporalError(
            f"unknown strategy {match.group(1)!r}; expected one of: {names}"
        ) from None


class TemporalResult:
    """A sequenced result: value columns plus a validity period per row."""

    def __init__(self, columns: list[str], rows: list[list[Any]]) -> None:
        if len(columns) < 2:
            raise TemporalError("temporal result needs period columns")
        self.columns = columns
        self.rows = rows

    @property
    def value_columns(self) -> list[str]:
        return self.columns[:-2]

    def temporal_rows(self) -> list[tuple[tuple, Period]]:
        """Rows as (value_tuple, Period) pairs."""
        out = []
        for row in self.rows:
            begin, end = row[-2], row[-1]
            out.append(
                (tuple(row[:-2]), Period(begin.ordinal, end.ordinal))
            )
        return out

    def coalesced(self) -> list[tuple[tuple, Period]]:
        """Canonical coalesced form (for comparisons)."""
        return coalesce(self.temporal_rows())

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TemporalResult({self.columns}, {len(self.rows)} rows)"


class TemporalStratum:
    """Temporal SQL/PSM in, conventional SQL/PSM down to the engine."""

    def __init__(self, db: Optional[Database] = None) -> None:
        self.db = db if db is not None else Database()
        self.registry = TemporalRegistry()  # valid time
        self.tt_registry = TemporalRegistry()  # transaction time
        self._installed_clones: set[str] = set()
        self._nonseq_only_routines: set[str] = set()
        self._inner_cp_requirements: dict[str, list[str]] = {}
        # transformed-statement cache: (flavor, statement text, registry
        # versions, …) → (catalog schema version at store, payload).  An
        # entry is served only while the catalog schema version still
        # matches, so DDL and routine redefinition can never expose a
        # stale transformation; registry versions are part of the key.
        # Gated by db.plan_caching_enabled (one ablation switch for the
        # whole two-phase path).
        self._transform_cache: dict = {}
        self.last_strategy: Optional[SlicingStrategy] = None
        # the CostEstimate behind the most recent COST-mode decision
        self.last_estimate = None
        # why the most recent SEQ-SET attempt fell back to MAX (None
        # when the last sequenced statement ran without a fallback)
        self.last_fallback: Optional[str] = None
        # transaction clock: None tracks db.now; set a past date for
        # time-travel ("as of") reads of transaction-time tables
        self.transaction_clock: Optional[Date] = None
        # undo-log integration: registry changes are logged like catalog
        # changes, and a rollback that restores the catalog's schema
        # version must also drop transformations cached during the
        # rolled-back window (they would falsely revalidate once later
        # DDL pushes the version back up)
        self.registry.txn = self.db.txn
        self.tt_registry.txn = self.db.txn
        # session switches (Database.activate_txn) must repoint these too
        self.db.txn_followers.extend([self.registry, self.tt_registry])
        self.db.txn.rollback_hooks.append(self._evict_stale_transforms)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path,
        *,
        now: Optional[Date] = None,
        sync: bool = True,
        auto_checkpoint_bytes: Optional[int] = None,
        replay_cap: Optional[int] = None,
    ) -> "TemporalStratum":
        """Open (or create) a durable temporal database at ``path``.

        The stratum is bound before recovery runs, so temporal-table
        registrations and stratum routine bookkeeping are rebuilt along
        with the catalog.
        """
        stratum = cls(Database(now=now))
        stratum.attach_durability(
            path,
            sync=sync,
            auto_checkpoint_bytes=auto_checkpoint_bytes,
            replay_cap=replay_cap,
        )
        return stratum

    def attach_durability(
        self,
        path,
        *,
        sync: bool = True,
        auto_checkpoint_bytes: Optional[int] = None,
        replay_cap: Optional[int] = None,
    ):
        """Bind a WAL + snapshot directory to the underlying database,
        registering this stratum so registry changes are durable."""
        return self.db.attach_durability(
            path,
            stratum=self,
            sync=sync,
            auto_checkpoint_bytes=auto_checkpoint_bytes,
            replay_cap=replay_cap,
        )

    def checkpoint(self) -> int:
        return self.db.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        """Idempotent close of the underlying database (see
        :meth:`repro.sqlengine.engine.Database.close`)."""
        self.db.close(checkpoint=checkpoint)

    def __enter__(self) -> "TemporalStratum":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.db.close(checkpoint=exc_type is None)

    def verify(self, *, quarantine: bool = False):
        """Scrub the attached durable store; see :meth:`Database.verify`."""
        return self.db.verify(quarantine=quarantine)

    @property
    def clock(self) -> Date:
        """The transaction-time clock (defaults to ``db.now``)."""
        return self.transaction_clock if self.transaction_clock is not None else self.db.now

    # ------------------------------------------------------------------
    # transform cache
    # ------------------------------------------------------------------

    TRANSFORM_CACHE_CAPACITY = 256

    def _cache_key(self, flavor: str, stmt: ast.Statement, *extra) -> tuple:
        """Key for one transformation: flavor tag + statement text +
        registry versions + the transaction clock (embedded as a literal
        by the transaction-currency pass), plus path-specific extras."""
        return (
            flavor,
            statement_key(stmt),
            self.registry.version,
            self.tt_registry.version,
            self.clock.ordinal,
            *extra,
        )

    def _transform_fetch(self, key: tuple) -> Any:
        if not self.db.plan_caching_enabled:
            return None
        entry = self._transform_cache.get(key)
        if entry is None:
            return None
        version, payload = entry
        if version != self.db.catalog.schema_version:
            del self._transform_cache[key]
            return None
        # LRU refresh: re-insert at the end of the (insertion-ordered)
        # dict so hot transformations survive capacity pressure
        self._transform_cache[key] = self._transform_cache.pop(key)
        self.db.stats.transform_cache_hits += 1
        return payload

    def _evict_stale_transforms(self) -> None:
        current = self.db.catalog.schema_version
        stale = [
            key for key, (version, _) in self._transform_cache.items()
            if version > current
        ]
        for key in stale:
            del self._transform_cache[key]

    def _transform_store(self, key: tuple, payload: Any) -> None:
        """Record a transformation against the *current* schema version —
        called after routine clones are installed, so the version already
        reflects them and stays stable across reuse."""
        if not self.db.plan_caching_enabled:
            return
        cache = self._transform_cache
        if key not in cache and len(cache) >= self.TRANSFORM_CACHE_CAPACITY:
            # evict the least recently used entry (dict order: oldest
            # first, fetches re-insert at the end)
            del cache[next(iter(cache))]
        cache[key] = (self.db.catalog.schema_version, payload)

    # ------------------------------------------------------------------
    # registration / DDL
    # ------------------------------------------------------------------

    def execute(
        self,
        sql: str,
        strategy: SlicingStrategy = SlicingStrategy.AUTO,
    ) -> Any:
        """Parse and execute one Temporal SQL/PSM statement."""
        return self.execute_ast(parse_statement(sql), strategy)

    def execute_script(
        self, sql: str, strategy: SlicingStrategy = SlicingStrategy.AUTO
    ) -> list[Any]:
        return [self.execute_ast(stmt, strategy) for stmt in parse_script(sql)]

    def execute_ast(
        self,
        stmt: ast.Statement,
        strategy: SlicingStrategy = SlicingStrategy.AUTO,
    ) -> Any:
        if isinstance(stmt, ast.TransactionStatement):
            return self.db.txn.execute_statement(stmt)
        if isinstance(stmt, ast.ExplainStatement):
            from repro.obs.explain import explain_statement

            return explain_statement(self, stmt.statement, stmt.analyze, strategy)
        # one savepoint around the whole temporal statement: a sequenced
        # statement expands into many engine statements (the MAX
        # per-period CALL loop, PERST's delete+insert pairs, currency
        # close+reinsert), and a failure partway through must not leave a
        # partially-applied temporal operation behind
        txn = self.db.txn
        resilience = self.db.resilience
        # pin the snapshot for the whole temporal statement: the engine
        # statements it expands into inherit it, so a sequenced query
        # reads one consistent version of every underlying table
        pinned = txn.snapshot is None
        if pinned:
            self.db.mvcc.pin(txn)
        # the temporal statement is the top-level unit the watchdog
        # deadline covers: the per-period engine statements it expands
        # into re-enter Database.execute_ast at depth > 0
        resilience.begin_statement()
        token = txn.mark()
        tracer = self.db.tracer
        span_cm = (
            tracer.span("statement", sql=stmt.to_sql())
            if tracer.enabled
            else _NO_SPAN
        )
        try:
            with span_cm:
                result = self._execute_ast_inner(stmt, strategy)
        except BaseException:
            txn.rollback_to(token)
            raise
        finally:
            resilience.end_statement()
            if pinned and not txn.explicit:
                self.db.mvcc.unpin(txn)
        txn.release(token)
        return result

    def _execute_ast_inner(
        self,
        stmt: ast.Statement,
        strategy: SlicingStrategy,
    ) -> Any:
        if isinstance(stmt, ast.AlterTable):
            if stmt.action == "ADD TRANSACTIONTIME":
                return self.add_transactiontime(stmt.name)
            return self.add_validtime(stmt.name)
        if isinstance(stmt, (ast.CreateFunction, ast.CreateProcedure)):
            return self.register_routine_ast(stmt)
        if isinstance(stmt, ast.CreateView) and stmt.select.modifier is not None:
            return self._create_sequenced_view(stmt)
        modifier = getattr(stmt, "modifier", None)
        if modifier is None:
            return self._execute_current_or_plain(stmt)
        registry = (
            self.tt_registry if modifier.dimension == "TRANSACTION" else self.registry
        )
        if modifier.flavor is ast.TemporalFlavor.NONSEQUENCED:
            return self._execute_nonsequenced(stmt, modifier.dimension)
        context = self._resolve_context(stmt, modifier, registry)
        return self._execute_sequenced(stmt, context, strategy, registry)

    def add_validtime(self, table_name: str) -> TemporalTableInfo:
        """``ALTER TABLE t ADD VALIDTIME``: give ``t`` valid-time support.

        Missing timestamp columns are added; existing rows become valid
        over the whole timeline (the usual migration semantics).
        """
        table = self.db.catalog.get_table(table_name)
        info = TemporalTableInfo(name=table.name)
        columns_added = False
        for column_name, default in (
            (info.begin_column, Date(Date.MIN_ORDINAL)),
            (info.end_column, Date(Date.MAX_ORDINAL)),
        ):
            if not table.has_column(column_name):
                table.add_column(Column(column_name, SqlType("DATE")), default)
                columns_added = True
        if columns_added:
            # the table's shape changed out-of-band: compiled plans that
            # bound against the old column layout must not be reused
            self.db.catalog.note_schema_change()
        self.registry.add(info, table)
        return info

    def add_transactiontime(self, table_name: str) -> TemporalTableInfo:
        """``ALTER TABLE t ADD TRANSACTIONTIME``: system-maintained
        ``[tt_start, tt_stop)`` columns; see :mod:`repro.temporal.transaction`."""
        from repro.temporal.transaction import add_transactiontime

        return add_transactiontime(self.db, self.tt_registry, table_name, self.clock)

    def _create_sequenced_view(self, stmt: "ast.CreateView") -> None:
        """A view whose body carries a temporal modifier (paper §III lists
        view definitions among the statements modifiers apply to).

        Sequenced bodies are transformed with per-statement slicing's
        algebraic fragment (self-contained SQL, no cp tables), so the
        stored view stays an ordinary view whose rows carry a validity
        period; nonsequenced bodies are stored raw.
        """
        modifier = stmt.select.modifier
        if modifier.flavor is ast.TemporalFlavor.NONSEQUENCED:
            body = clone(stmt.select)
            body.modifier = None
            self.db.catalog.add_view(stmt.name, body)
            return None
        registry = (
            self.tt_registry if modifier.dimension == "TRANSACTION" else self.registry
        )
        self._check_sequenced_preconditions(stmt.select)
        transformer = PerstTransformer(self.db.catalog, registry)
        result = transformer.transform(stmt.select)
        if result.cp_requirements:
            raise TemporalError(
                "sequenced views support the algebraic fragment only"
                " (no per-statement constant-period loops)"
            )
        self._install_routines(result.routines)
        body = clone(result.statement)
        context = self._resolve_context(stmt.select, modifier, registry)
        substitute_context(body, context)
        self.db.catalog.add_view(stmt.name, body)
        return None

    def create_temporal_table(self, ddl: str) -> TemporalTableInfo:
        """CREATE TABLE followed by ADD VALIDTIME, as one call."""
        stmt = parse_statement(ddl)
        if not isinstance(stmt, ast.CreateTable):
            raise TemporalError("create_temporal_table expects CREATE TABLE")
        self.db.execute_ast(stmt)
        return self.add_validtime(stmt.name)

    def register_routine(self, sql: str) -> None:
        """Register a Temporal SQL/PSM routine (stored in original form)."""
        stmt = parse_statement(sql)
        if not isinstance(stmt, (ast.CreateFunction, ast.CreateProcedure)):
            raise TemporalError("register_routine expects CREATE FUNCTION/PROCEDURE")
        self.register_routine_ast(stmt)

    def register_routine_ast(
        self, stmt: Union[ast.CreateFunction, ast.CreateProcedure]
    ) -> None:
        kind = "FUNCTION" if isinstance(stmt, ast.CreateFunction) else "PROCEDURE"
        if analysis.has_inner_modifier(stmt.body):
            prepared = self._prepare_inner_modifiers(stmt)
            self.db.catalog.add_routine(Routine(kind=kind, definition=prepared))
            self._nonseq_only_routines.add(stmt.name.lower())
        else:
            self.db.catalog.add_routine(Routine(kind=kind, definition=stmt))
        # durable form: the *original* (pre-rewrite) definition, so
        # recovery re-registers through the stratum and rebuilds the
        # nonsequenced-only bookkeeping the catalog records can't carry
        txn = self.db.txn
        if txn.wal is not None:
            txn.wal.record_stratum_routine(stmt.to_sql())
        # a re-registration invalidates any clones derived from old bodies
        self._installed_clones = {
            c for c in self._installed_clones
            if not c.endswith("_" + stmt.name.lower())
        }

    # ------------------------------------------------------------------
    # transformation inspection
    # ------------------------------------------------------------------

    def transform(
        self,
        sql: str,
        strategy: SlicingStrategy = SlicingStrategy.MAX,
    ) -> Union[CurrentTransformResult, MaxTransformResult, PerstTransformResult]:
        """Return the conventional SQL/PSM a statement transforms into."""
        stmt = parse_statement(sql)
        modifier = getattr(stmt, "modifier", None)
        if modifier is None:
            return transform_current(stmt, self.db.catalog, self.registry)
        if modifier.flavor is ast.TemporalFlavor.NONSEQUENCED:
            plain = clone(stmt)
            plain.modifier = None
            return CurrentTransformResult(statement=plain, routines=[])
        self._check_sequenced_preconditions(stmt)
        if strategy is SlicingStrategy.PERST:
            transformer = PerstTransformer(self.db.catalog, self.registry)
            result = transformer.transform(stmt)
            context = self._resolve_context(stmt, modifier)
            substitute_context(result.statement, context)
            return result
        return transform_query_max(stmt, self.db.catalog, self.registry, MAX_CP_TABLE)

    # ------------------------------------------------------------------
    # current / nonsequenced execution
    # ------------------------------------------------------------------

    def _execute_current_or_plain(self, stmt: ast.Statement) -> Any:
        touches_vt = analysis.reads_temporal(stmt, self.db.catalog, self.registry)
        touches_tt = analysis.reads_temporal(stmt, self.db.catalog, self.tt_registry)
        if not touches_vt and not touches_tt:
            return self.db.execute_ast(stmt)
        self._reject_nonseq_only(stmt, "current")
        if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            dml_result = self._execute_dml(stmt)
            if dml_result is not NotImplemented:
                return dml_result
        tracer = self.db.tracer
        key = self._cache_key("cur", stmt)
        cached = self._transform_fetch(key)
        if cached is not None:
            with tracer.span("stratum.transform", strategy="current") as span:
                span.set(cached=True)
            return self.db.execute_ast(cached)
        with tracer.span("stratum.transform", strategy="current") as span:
            span.set(cached=False)
            self.db.stats.transforms += 1
            if touches_vt:
                result = transform_current(stmt, self.db.catalog, self.registry)
                self._install_routines(result.routines)
                stmt = result.statement
            if touches_tt:
                stmt = self._apply_transaction_currency(stmt)
            self._transform_store(key, stmt)
        return self.db.execute_ast(stmt)

    def _execute_dml(self, stmt) -> Any:
        """Dispatch modifications of temporal tables.

        Returns NotImplemented when the statement is not a temporal DML
        (plain tables, or a SELECT-shaped statement) so the caller falls
        through to the read path.
        """
        is_vt = self.registry.is_temporal(stmt.table)
        is_tt = self.tt_registry.is_temporal(stmt.table)
        if is_vt and is_tt:
            raise TemporalError(
                "direct modification of a bitemporal table through the"
                " stratum is not supported; load history at the engine"
                " level or use a transaction-time-only table"
            )
        if is_tt:
            from repro.temporal.transaction import TransactionTimeDml

            dml = TransactionTimeDml(self.db, self.tt_registry)
            if isinstance(stmt, ast.Insert):
                return dml.execute_insert(stmt, self.clock)
            if isinstance(stmt, ast.Update):
                return dml.execute_update(stmt, self.clock)
            return dml.execute_delete(stmt, self.clock)
        if is_vt:
            if isinstance(stmt, ast.Update):
                return self._execute_current_update(stmt)
            if isinstance(stmt, ast.Delete):
                return self._execute_current_delete(stmt)
            return NotImplemented  # current INSERT handled by transform
        return NotImplemented

    def _apply_transaction_currency(self, stmt: ast.Statement) -> ast.Statement:
        """Restrict transaction-time tables to the rows believed at the
        clock — the second dimension's current semantics, applied after
        any valid-time transformation (so it also covers the clones the
        first pass installed)."""
        result = transform_current(
            stmt,
            self.db.catalog,
            self.tt_registry,
            prefix="curtt_",
            point=ast.Literal(value=self.clock),
        )
        self._install_routines(result.routines)
        return result.statement

    def _execute_current_update(self, stmt: ast.Update) -> int:
        """TUC UPDATE: terminate currently-valid rows, insert new versions."""
        info = self.registry.get(stmt.table)
        table = self.db.catalog.get_table(stmt.table)
        # claim before the scan: this read-then-mutate path must see (and
        # conflict against) the live table, never a snapshot view
        self.db.txn.claim_write(table)
        now = self.db.now
        alias = stmt.alias or stmt.table
        colmap = {c.lower(): i for i, c in enumerate(table.column_names)}
        begin_index = table.column_index(info.begin_column)
        end_index = table.column_index(info.end_column)
        executor = self.db.executor
        env = Env()
        matches = []
        for row in table.rows:
            begin, end = row[begin_index], row[end_index]
            if not (begin.ordinal <= now.ordinal < end.ordinal):
                continue
            env.bindings[alias.lower()] = Binding(colmap, row)
            if stmt.where is None or truth(executor.evaluate(stmt.where, env)):
                matches.append(row)
        for row in matches:
            env.bindings[alias.lower()] = Binding(colmap, row)
            new_row = list(row)
            for column, expr in stmt.assignments:
                new_row[table.column_index(column)] = executor.evaluate(expr, env)
            new_row[begin_index] = now
            new_row[end_index] = Date(Date.MAX_ORDINAL)
            if row[begin_index].ordinal == now.ordinal:
                # row became valid today: overwrite in place
                table.write_row(row, new_row)
            else:
                table.set_cell(row, end_index, now)
                table.insert(new_row)
        self.db.stats.count_rows(len(matches), "current_rewrite")
        return len(matches)

    def _execute_current_delete(self, stmt: ast.Delete) -> int:
        """TUC DELETE: terminate currently-valid rows at ``now``.

        Rows that first became valid today are removed outright (they
        were never visible), avoiding empty ``[now, now)`` periods.
        """
        info = self.registry.get(stmt.table)
        table = self.db.catalog.get_table(stmt.table)
        self.db.txn.claim_write(table)
        now = self.db.now
        alias = stmt.alias or stmt.table
        colmap = {c.lower(): i for i, c in enumerate(table.column_names)}
        begin_index = table.column_index(info.begin_column)
        end_index = table.column_index(info.end_column)
        executor = self.db.executor
        env = Env()
        kept: list[list[Any]] = []
        closed: list[list[Any]] = []
        count = 0
        for row in table.rows:
            begin, end = row[begin_index], row[end_index]
            current = begin.ordinal <= now.ordinal < end.ordinal
            if current:
                env.bindings[alias.lower()] = Binding(colmap, row)
                matches = stmt.where is None or truth(
                    executor.evaluate(stmt.where, env)
                )
            else:
                matches = False
            if not matches:
                kept.append(row)
                continue
            count += 1
            if begin.ordinal < now.ordinal:
                closed.append(row)
                kept.append(row)
            # else: row inserted today — drop it entirely
        for row in closed:
            table.set_cell(row, end_index, now)
        if count:
            table.replace_rows(kept)
        self.db.stats.count_rows(count, "current_rewrite")
        return count

    def _execute_nonsequenced(self, stmt: ast.Statement, dimension: str = "VALID") -> Any:
        with self.db.tracer.span("stratum.nonsequenced", dim=dimension.lower()):
            plain = clone(stmt)
            plain.modifier = None
            self._refresh_inner_cp_tables(stmt)
            # nonsequenced exposes the named dimension's timestamps raw, but
            # the *other* dimension keeps its current semantics on tables
            # that carry it
            if dimension == "VALID":
                if analysis.reads_temporal(plain, self.db.catalog, self.tt_registry):
                    plain = self._apply_transaction_currency(plain)
            else:
                if analysis.reads_temporal(plain, self.db.catalog, self.registry):
                    result = transform_current(plain, self.db.catalog, self.registry)
                    self._install_routines(result.routines)
                    plain = result.statement
            return self.db.execute_ast(plain)

    # ------------------------------------------------------------------
    # sequenced execution
    # ------------------------------------------------------------------

    def _resolve_context(
        self,
        stmt: ast.Statement,
        modifier: ast.TemporalModifier,
        registry: Optional[TemporalRegistry] = None,
    ) -> Period:
        registry = registry if registry is not None else self.registry
        if modifier.begin is not None:
            env = Env()
            begin = self.db.executor.evaluate(modifier.begin, env)
            end = self.db.executor.evaluate(modifier.end, env)
            if not isinstance(begin, Date) or not isinstance(end, Date):
                raise TemporalError("temporal context bounds must be DATEs")
            return Period(begin.ordinal, end.ordinal)
        # default: the span of the data, so cp stays finite
        tables = analysis.reachable_temporal_tables(stmt, self.db.catalog, registry)
        points: set[int] = set()
        for name in tables:
            info = registry.get(name)
            table = self.db.read_table(name)
            points |= table.change_points(
                table.column_index(info.begin_column),
                table.column_index(info.end_column),
            )
        if not points:
            return Period(Date.MIN_ORDINAL, Date.MAX_ORDINAL)
        return Period(min(points), max(points))

    def _check_sequenced_preconditions(self, stmt: ast.Statement) -> None:
        self._reject_nonseq_only(stmt, "sequenced")

    def _reject_nonseq_only(self, stmt: ast.Statement, flavor: str) -> None:
        flagged = [
            name
            for name in analysis.reachable_routines(stmt, self.db.catalog)
            if name in self._nonseq_only_routines
        ]
        if flagged:
            raise SequencedContextError(
                f"routine(s) {', '.join(sorted(flagged))} contain explicit"
                f" temporal modifiers and may only be invoked from a"
                f" nonsequenced context (attempted: {flavor})"
            )

    def _execute_sequenced(
        self,
        stmt: ast.Statement,
        context: Period,
        strategy: SlicingStrategy,
        registry: Optional[TemporalRegistry] = None,
    ) -> Union[TemporalResult, list[TemporalResult]]:
        registry = registry if registry is not None else self.registry
        self._check_sequenced_preconditions(stmt)
        if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            from repro.temporal.modifications import (
                execute_sequenced_modification,
            )

            if registry is self.tt_registry:
                raise TemporalError(
                    "transaction time is system-maintained; sequenced"
                    " TRANSACTIONTIME modifications are not meaningful"
                )
            plain = clone(stmt)
            plain.modifier = None
            return execute_sequenced_modification(
                self.db, registry, plain, context
            )
        self.last_fallback = None
        other_registry = (
            self.registry if registry is self.tt_registry else self.tt_registry
        )
        if strategy is SlicingStrategy.AUTO:
            from repro.temporal.heuristic import choose_strategy

            strategy = choose_strategy(
                stmt, self.db, registry, context,
                other_registry=other_registry,
            ).strategy
        elif strategy is SlicingStrategy.COST:
            from repro.temporal.heuristic import estimate_costs, perst_applicable
            from repro.temporal.seqset import seqset_applicable

            applicable, _why = perst_applicable(stmt, self.db, registry)
            covered, _s_why = seqset_applicable(
                stmt, self.db, registry, other_registry=other_registry
            )
            if not applicable and not covered:
                strategy = SlicingStrategy.MAX
            else:
                # measured unit costs when the registry has samples,
                # static calibration otherwise
                estimate = estimate_costs(
                    stmt, self.db, registry, context, obs=self.db.obs,
                    include_seqset=covered,
                )
                self.last_estimate = estimate
                candidates = [(estimate.max_cost, 0, SlicingStrategy.MAX)]
                if applicable:
                    candidates.append(
                        (estimate.perst_cost, 1, SlicingStrategy.PERST)
                    )
                if covered and estimate.seqset_cost is not None:
                    candidates.append(
                        (estimate.seqset_cost, 2, SlicingStrategy.SEQSET)
                    )
                strategy = min(candidates)[2]
        self.last_strategy = strategy
        if strategy is SlicingStrategy.SEQSET:
            outcome = self._execute_sequenced_seqset(stmt, context, registry)
            if outcome is not NotImplemented:
                return outcome
            # transparent fallback: MAX reproduces results (and errors)
            # for every statement SEQ-SET declines
            self.last_strategy = SlicingStrategy.MAX
            return self._execute_sequenced_max(stmt, context, registry)
        if strategy is SlicingStrategy.MAX:
            return self._execute_sequenced_max(stmt, context, registry)
        return self._execute_sequenced_perst(stmt, context, registry)

    # -- MAX ---------------------------------------------------------------

    def _execute_sequenced_max(
        self,
        stmt: ast.Statement,
        context: Period,
        registry: Optional[TemporalRegistry] = None,
    ) -> Union[TemporalResult, list[TemporalResult]]:
        registry = registry if registry is not None else self.registry
        dim = "tt" if registry is self.tt_registry else "vt"
        tracer = self.db.tracer
        key = self._cache_key("max", stmt, dim)
        cached = self._transform_fetch(key)
        if cached is not None:
            # context only drives the cp materialization (redone per
            # execution over the live data), never the transformation
            with tracer.span("stratum.transform", strategy="max", dim=dim) as span:
                span.set(cached=True)
                temporal_tables, statement = cached
            with tracer.span("stratum.constant_periods", cp_table=MAX_CP_TABLE) as span:
                slices = materialize_constant_periods(
                    self.db, temporal_tables, registry, context, MAX_CP_TABLE
                )
                span.set(slices=slices)
        else:
            with tracer.span("stratum.transform", strategy="max", dim=dim) as span:
                span.set(cached=False)
                self.db.stats.transforms += 1
                result = transform_query_max(
                    stmt, self.db.catalog, registry, MAX_CP_TABLE
                )
            with tracer.span("stratum.constant_periods", cp_table=MAX_CP_TABLE) as span:
                slices = materialize_constant_periods(
                    self.db, result.temporal_tables, registry, context, MAX_CP_TABLE
                )
                span.set(slices=slices)
            self._install_routines(result.routines)
            statement = self._apply_other_dimension_currency(
                result.statement, registry
            )
            self._transform_store(key, (result.temporal_tables, statement))
        if isinstance(statement, ast.Select):
            started = time.perf_counter()
            with tracer.span("stratum.max.execute", slices=slices):
                engine_result = self.db.execute_ast(statement)
            self.db.obs.timer("stratum.max.slice_seconds").record(
                time.perf_counter() - started, slices
            )
            return TemporalResult(engine_result.columns, engine_result.rows)
        if isinstance(statement, ast.CallStatement):
            return self._drive_max_call(statement, context, slices)
        raise TemporalError(
            f"sequenced {type(stmt).__name__} unsupported under MAX"
        )

    def _apply_other_dimension_currency(
        self, statement: ast.Statement, registry: TemporalRegistry
    ) -> ast.Statement:
        """After a sequenced transformation along one dimension, restrict
        the other dimension to its current state on tables that carry it
        (bitemporal composition, paper §III)."""
        if registry is self.registry:
            other = self.tt_registry
            if analysis.reads_temporal(statement, self.db.catalog, other):
                return self._apply_transaction_currency(statement)
            return statement
        other = self.registry
        if analysis.reads_temporal(statement, self.db.catalog, other):
            result = transform_current(statement, self.db.catalog, other)
            self._install_routines(result.routines)
            return result.statement
        return statement

    def _drive_max_call(
        self, call_stmt: ast.CallStatement, context: Period, slices: int = 0
    ) -> list[TemporalResult]:
        """Invoke the max_ procedure once per constant period (§V).

        Result sets from each invocation are stamped with the period.
        """
        cp = self.db.catalog.get_table(MAX_CP_TABLE)
        stamped: list[TemporalResult] = []
        # one clone for the whole loop: the point argument is a shared
        # literal whose value advances per period, so the engine sees the
        # same statement (and routine-body) AST every iteration and its
        # plan cache can hit on every period after the first
        per_period = clone(call_stmt)
        placeholder = ast.Literal(value=None)
        per_period.args = per_period.args + [placeholder]
        tracer = self.db.tracer
        stats = self.db.stats
        resilience = self.db.resilience
        calls_before = stats.total_routine_calls
        started = time.perf_counter()
        with tracer.span("stratum.max.loop", slices=slices):
            for row in list(cp.rows):
                # watchdog: a MAX evaluation is thousands of routine
                # calls (q2 = 2703 on DS1); every constant period is a
                # cancellation point
                if resilience.armed:
                    resilience.check()
                begin, end = row[0], row[1]
                placeholder.value = begin
                if tracer.enabled:
                    with tracer.span(
                        "stratum.max.period",
                        begin=begin.to_iso(), end=end.to_iso(),
                    ):
                        results = self.db.execute_ast(per_period)
                else:
                    results = self.db.execute_ast(per_period)
                for index, result in enumerate(results or []):
                    columns = result.columns + ["begin_time", "end_time"]
                    rows = [list(r) + [begin, end] for r in result.rows]
                    if index < len(stamped):
                        stamped[index].rows.extend(rows)
                    else:
                        stamped.append(TemporalResult(columns, rows))
        # one aggregate timing for the whole loop feeds the measured-cost
        # heuristic with per-slice and per-invocation means
        elapsed = time.perf_counter() - started
        self.db.obs.timer("stratum.max.slice_seconds").record(elapsed, slices)
        self.db.obs.timer("stratum.max.invocation_seconds").record(
            elapsed, stats.total_routine_calls - calls_before
        )
        return stamped

    # -- SEQ-SET ------------------------------------------------------------

    def _execute_sequenced_seqset(
        self,
        stmt: ast.Statement,
        context: Period,
        registry: Optional[TemporalRegistry] = None,
    ) -> Union[TemporalResult, Any]:
        """One set-oriented pass (:mod:`repro.temporal.seqset`).

        Returns ``NotImplemented`` when the statement is outside the
        covered fragment (or the vectorized path degrades at run time);
        the caller then re-runs it under MAX, with the reason recorded
        in :attr:`last_fallback`.
        """
        from repro.temporal.seqset import (
            SeqSetRuntimeFallback,
            SeqSetUnsupportedError,
            compile_seqset,
            execute_seqset,
        )

        registry = registry if registry is not None else self.registry
        dim = "tt" if registry is self.tt_registry else "vt"
        other_registry = (
            self.registry if registry is self.tt_registry else self.tt_registry
        )
        tracer = self.db.tracer
        key = self._cache_key("seqset", stmt, dim)
        cached = self._transform_fetch(key)
        if cached is not None:
            with tracer.span("stratum.transform", strategy="seqset", dim=dim) as span:
                span.set(cached=True)
                tag, payload = cached
            if tag == "fallback":
                self.last_fallback = payload
                return NotImplemented
            plan = payload
        else:
            with tracer.span("stratum.transform", strategy="seqset", dim=dim) as span:
                span.set(cached=False)
                self.db.stats.transforms += 1
                try:
                    plan = compile_seqset(
                        self.db, registry, stmt, other_registry=other_registry
                    )
                except SeqSetUnsupportedError as exc:
                    span.set(fallback=str(exc))
                    # negative entries are cached too: re-deciding the
                    # fallback must not recompile on every execution
                    self._transform_store(key, ("fallback", str(exc)))
                    self.last_fallback = str(exc)
                    return NotImplemented
            self._transform_store(key, ("plan", plan))
        with tracer.span("stratum.constant_periods", cp_table=MAX_CP_TABLE) as span:
            slices = materialize_constant_periods(
                self.db, plan.temporal_tables, registry, context, MAX_CP_TABLE
            )
            span.set(slices=slices)
        data_rows = sum(
            len(self.db.catalog.get_table(name))
            for name in plan.temporal_tables
        )
        started = time.perf_counter()
        try:
            with tracer.span("stratum.seqset.execute", slices=slices):
                columns, rows = execute_seqset(
                    self.db, plan, context, MAX_CP_TABLE
                )
        except SeqSetRuntimeFallback as exc:
            self.last_fallback = str(exc)
            return NotImplemented
        # per-row mean over the temporal data, the measured-cost model's
        # SEQ-SET unit (one aligned pass, like PERST's single pass)
        self.db.obs.timer("stratum.seqset.row_seconds").record(
            time.perf_counter() - started, data_rows
        )
        return TemporalResult(columns, rows)

    # -- PERST --------------------------------------------------------------

    def _execute_sequenced_perst(
        self,
        stmt: ast.Statement,
        context: Period,
        registry: Optional[TemporalRegistry] = None,
    ) -> Union[TemporalResult, list[TemporalResult]]:
        registry = registry if registry is not None else self.registry
        dim = "tt" if registry is self.tt_registry else "vt"
        tracer = self.db.tracer
        # the context is substituted into the statement as literals, so
        # unlike MAX it is part of the key
        key = self._cache_key("perst", stmt, dim, context.begin, context.end)
        cached = self._transform_fetch(key)
        if cached is not None:
            cp_requirements, statement = cached
            with tracer.span("stratum.transform", strategy="perst", dim=dim) as span:
                span.set(cached=True)
            for cp_table, tables in cp_requirements.items():
                with tracer.span("stratum.constant_periods", cp_table=cp_table) as span:
                    span.set(slices=materialize_constant_periods(
                        self.db, tables, registry, context, cp_table
                    ))
        else:
            with tracer.span("stratum.transform", strategy="perst", dim=dim) as span:
                span.set(cached=False)
                self.db.stats.transforms += 1
                transformer = PerstTransformer(self.db.catalog, registry)
                result = transformer.transform(stmt)
            for cp_table, tables in result.cp_requirements.items():
                with tracer.span("stratum.constant_periods", cp_table=cp_table) as span:
                    span.set(slices=materialize_constant_periods(
                        self.db, tables, registry, context, cp_table
                    ))
            self._install_routines(result.routines)
            statement = clone(result.statement)
            substitute_context(statement, context)
            statement = self._apply_other_dimension_currency(statement, registry)
            self._transform_store(key, (result.cp_requirements, statement))
        data_rows = sum(
            len(self.db.catalog.get_table(name))
            for name in analysis.reachable_temporal_tables(
                stmt, self.db.catalog, registry
            )
        )
        started = time.perf_counter()
        with tracer.span("stratum.perst.execute", rows=data_rows):
            if isinstance(statement, ast.Select):
                engine_result = self.db.execute_ast(statement)
                outcome = TemporalResult(engine_result.columns, engine_result.rows)
            elif isinstance(statement, ast.CallStatement):
                results = self.db.execute_ast(statement) or []
                outcome = [TemporalResult(r.columns, r.rows) for r in results]
            else:
                raise TemporalError(
                    f"sequenced {type(stmt).__name__} unsupported under PERST"
                )
        # per-row mean over the temporal data PERST passes over once
        self.db.obs.timer("stratum.perst.row_seconds").record(
            time.perf_counter() - started, data_rows
        )
        return outcome

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _install_routines(self, definitions: list) -> None:
        for definition in definitions:
            key = definition.name.lower()
            if (
                self.db.catalog.has_routine(key)
                and self.db.catalog.get_routine(key).definition is definition
            ):
                # re-installing the identical definition object would be
                # a no-op; skipping it keeps the catalog schema version
                # stable so compiled plans stay valid
                self._installed_clones.add(key)
                continue
            kind = (
                "FUNCTION"
                if isinstance(definition, ast.CreateFunction)
                else "PROCEDURE"
            )
            self.db.catalog.add_routine(
                Routine(kind=kind, definition=definition), replace=True
            )
            self._installed_clones.add(key)

    def _prepare_inner_modifiers(
        self, definition: Union[ast.CreateFunction, ast.CreateProcedure]
    ):
        """Rewrite explicit inner VALIDTIME statements (nonsequenced-only
        routines) into conventional SQL via maximal slicing."""
        new_def = clone(definition)
        cp_table = f"taupsm_cp_nonseq_{definition.name.lower()}"

        def rewrite_statements(statements: list[ast.Statement]) -> None:
            for index, inner in enumerate(statements):
                modifier = getattr(inner, "modifier", None)
                if modifier is not None and modifier.flavor is ast.TemporalFlavor.SEQUENCED:
                    if not isinstance(inner, ast.Select):
                        raise TemporalError(
                            "inner VALIDTIME is supported on SELECT"
                            " statements only"
                        )
                    result = transform_query_max(
                        inner, self.db.catalog, self.registry, cp_table
                    )
                    self._install_routines(result.routines)
                    self._inner_cp_requirements[cp_table] = result.temporal_tables
                    statements[index] = result.statement
                elif modifier is not None:
                    plain = clone(inner)
                    plain.modifier = None
                    statements[index] = plain
                else:
                    recurse(inner)

        def recurse(node: ast.Statement) -> None:
            if isinstance(node, ast.Compound):
                rewrite_statements(node.statements)
            elif isinstance(node, ast.IfStatement):
                for _, body in node.branches:
                    rewrite_statements(body)
                if node.else_branch is not None:
                    rewrite_statements(node.else_branch)
            elif isinstance(node, ast.CaseStatement):
                for _, body in node.whens:
                    rewrite_statements(body)
                if node.else_branch is not None:
                    rewrite_statements(node.else_branch)
            elif isinstance(
                node,
                (ast.WhileStatement, ast.RepeatStatement, ast.LoopStatement,
                 ast.ForStatement),
            ):
                rewrite_statements(node.body)

        recurse(new_def.body)
        return new_def

    def _refresh_inner_cp_tables(self, stmt: ast.Statement) -> None:
        """Materialize cp tables needed by nonsequenced-only routines."""
        if not self._inner_cp_requirements:
            return
        reachable = set(analysis.reachable_routines(stmt, self.db.catalog))
        for cp_table, tables in self._inner_cp_requirements.items():
            owner = cp_table.replace("taupsm_cp_nonseq_", "")
            if owner in reachable or owner in {
                r.lower() for r in reachable
            }:
                context = Period(Date.MIN_ORDINAL, Date.MAX_ORDINAL)
                points: set[int] = set()
                for name in tables:
                    info = self.registry.get(name)
                    table = self.db.read_table(name)
                    points |= table.change_points(
                        table.column_index(info.begin_column),
                        table.column_index(info.end_column),
                    )
                if points:
                    context = Period(min(points), max(points))
                materialize_constant_periods(
                    self.db, tables, self.registry, context, cp_table
                )


def substitute_context(stmt: ast.Statement, context: Period) -> None:
    """Replace top-level ``ps_begin`` / ``ps_end`` names with literals."""

    def rewriter(expr: ast.Expression):
        if isinstance(expr, ast.Name) and expr.qualifier is None:
            if expr.name.lower() == BEGIN_PARAM:
                return ast.Literal(value=Date(context.begin))
            if expr.name.lower() == END_PARAM:
                return ast.Literal(value=Date(context.end))
        return None

    rewrite_expressions(stmt, rewriter)
