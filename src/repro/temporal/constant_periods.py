"""Constant-period computation (paper §V-A, Figure 8).

A *constant period* is a maximal period during which none of the
reachable temporal tables changes; evaluating a routine anywhere inside
one yields the same result, so sequenced evaluation only needs one call
per constant period.

Two implementations are provided:

* :func:`build_constant_period_sql` emits the paper's Figure-8 SQL
  (``ts`` union of all begin/end points, then a self-join with NOT
  EXISTS picking adjacent points).  It is quadratic and kept for
  fidelity and for cross-checking.
* :func:`materialize_constant_periods` computes the same table natively
  (sort + adjacent pairs) and bulk-loads it into the engine.  The paper
  notes "the bulk of the work is done before the query itself is
  executed" — this is that precomputation step, done in the stratum.

Both restrict the periods to the query's temporal context
``[min_time, max_time)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sqlengine.engine import Database
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import SqlType
from repro.sqlengine.values import Date
from repro.temporal.period import Period, constant_periods
from repro.temporal.schema import TemporalRegistry

TS_COLUMN = "time_point"


def build_time_points_sql(
    table_names: Sequence[str], registry: TemporalRegistry, ts_name: str = "ts"
) -> str:
    """Figure 8, first statement: the union of all begin/end time points."""
    selects = []
    for name in table_names:
        info = registry.get(name)
        if info is None:
            raise ValueError(f"{name} is not a temporal table")
        selects.append(
            f"SELECT {info.begin_column} AS {TS_COLUMN} FROM {name}"
        )
        selects.append(f"SELECT {info.end_column} AS {TS_COLUMN} FROM {name}")
    body = "\nUNION\n".join(selects)
    return f"CREATE TEMPORARY TABLE {ts_name} AS (\n{body})"


def build_constant_period_sql(
    context: Period, ts_name: str = "ts", cp_name: str = "cp"
) -> str:
    """Figure 8, second statement: adjacent-point periods via self-join.

    ``min_time`` / ``max_time`` delimit the temporal context.
    """
    min_time = f"DATE '{Date(context.begin).to_iso()}'"
    max_time = f"DATE '{Date(context.end).to_iso()}'"
    return (
        f"CREATE TEMPORARY TABLE {cp_name} AS (\n"
        f"SELECT ts1.{TS_COLUMN} AS begin_time,\n"
        f"       ts2.{TS_COLUMN} AS end_time\n"
        f"FROM {ts_name} AS ts1, {ts_name} AS ts2\n"
        f"WHERE ts1.{TS_COLUMN} < ts2.{TS_COLUMN}\n"
        f"  AND {min_time} <= ts1.{TS_COLUMN}\n"
        f"  AND ts1.{TS_COLUMN} < {max_time}\n"
        f"  AND NOT EXISTS (SELECT ts3.{TS_COLUMN}\n"
        f"                  FROM {ts_name} AS ts3\n"
        f"                  WHERE ts1.{TS_COLUMN} < ts3.{TS_COLUMN}\n"
        f"                    AND ts3.{TS_COLUMN} < ts2.{TS_COLUMN}))"
    )


def _cp_sources(
    db: Database, table_names: Iterable[str], registry: TemporalRegistry
) -> list[tuple[Table, str, str]]:
    """Resolve the named tables with their period columns."""
    sources = []
    for name in table_names:
        table = db.read_table(name)
        info = registry.get(table.name)
        assert info is not None
        sources.append((table, info.begin_column, info.end_column))
    return sources


def compute_constant_periods(
    db: Database,
    table_names: Iterable[str],
    registry: TemporalRegistry,
    context: Period,
) -> list[Period]:
    """Native computation of the constant periods of the named tables.

    Merges each table's version-cached change-point set (see
    :meth:`Table.change_points`), so only tables mutated since the last
    sequenced statement are rescanned.
    """
    points: set[int] = set()
    resilience = db.resilience
    for table, begin_column, end_column in _cp_sources(db, table_names, registry):
        # watchdog: one cancellation point per table pass of the
        # precomputation step
        if resilience.armed:
            resilience.check()
        points |= table.change_points(
            table.column_index(begin_column), table.column_index(end_column)
        )
    return constant_periods(points, context)


_CP_COLUMNS = ("begin_time", "end_time")


def materialize_constant_periods(
    db: Database,
    table_names: Iterable[str],
    registry: TemporalRegistry,
    context: Period,
    cp_name: str,
) -> int:
    """(Re)fill temp table ``cp_name(begin_time, end_time)``.

    Returns the number of constant periods materialized.  Clipping: the
    paper's Figure-8 query ranges over points inside the context; the
    context boundaries themselves bound the first and last periods.

    The whole rebuild is skipped when nothing it depends on changed
    since the last materialization into ``cp_name``: same source tables
    at the same versions, same context, and the cp table itself
    untouched (``db.cp_cache``, cleared on rollback and recovery because
    restored version counters can climb back to cached values over
    different rows).
    """
    sources = _cp_sources(db, table_names, registry)
    signature = (
        (context.begin, context.end),
        tuple(
            (table.name.lower(), table.version, begin_column, end_column)
            for table, begin_column, end_column in sources
        ),
    )
    cached = db.cp_cache.get(cp_name)
    if cached is not None:
        cached_signature, cached_tables, cp_table, cp_version, count = cached
        if (
            cached_signature == signature
            and len(cached_tables) == len(sources)
            and all(
                cached_table is source[0]
                for cached_table, source in zip(cached_tables, sources)
            )
            and db.catalog.has_table(cp_name)
            and db.catalog.get_table(cp_name) is cp_table
            and cp_table.version == cp_version
        ):
            db.obs.inc("stratum.cp.cache_hits")
            # the slice counter still advances: this execution evaluates
            # one slice per cached period exactly as a rebuild would
            db.obs.inc("stratum.slices", count)
            return count
    periods = compute_constant_periods(db, table_names, registry, context)
    cp_table = db.catalog.get_table(cp_name) if db.catalog.has_table(cp_name) else None
    if (
        cp_table is None
        or not cp_table.temporary
        or tuple(name.lower() for name in cp_table.column_names) != _CP_COLUMNS
    ):
        cp_table = Table(
            cp_name,
            [Column("begin_time", SqlType("DATE")), Column("end_time", SqlType("DATE"))],
            temporary=True,
        )
        # the cp table is stabbed per slice; declaring its period pair
        # makes those probes interval-indexed and vectorizable
        cp_table.declare_interval("begin_time", "end_time")
        db.catalog.add_table(cp_table, replace=True)
    # routed through the logged primitive so temp-table state follows the
    # same txn discipline as every other write
    cp_table.replace_rows(
        [[Date(period.begin), Date(period.end)] for period in periods]
    )
    db.stats.count_rows(len(periods), "constant_periods")
    # the canonical slice counter: every sequenced execution's constant
    # periods pass through here (EXPLAIN ANALYZE and the obs tests read it)
    db.obs.inc("stratum.slices", len(periods))
    db.cp_cache[cp_name] = (
        signature,
        tuple(table for table, _, _ in sources),
        cp_table,
        cp_table.version,
        len(periods),
    )
    return len(periods)


def materialize_constant_periods_via_sql(
    db: Database,
    table_names: Sequence[str],
    registry: TemporalRegistry,
    context: Period,
    cp_name: str,
    ts_name: str = "taupsm_ts",
) -> int:
    """Figure-8 route: run the generated SQL on the engine.

    Quadratic; used on small inputs and to cross-check the native path.
    The point self-join only forms periods between *data* points, so the
    result differs from the native path exactly at the context edges
    (the native path treats the context bounds as change points); tests
    account for that.
    """
    for name in (ts_name, cp_name):
        if db.catalog.has_table(name):
            db.catalog.drop_table(name)
    db.execute(build_time_points_sql(table_names, registry, ts_name))
    db.execute(build_constant_period_sql(context, ts_name, cp_name))
    db.catalog.drop_table(ts_name)
    return len(db.catalog.get_table(cp_name).rows)
