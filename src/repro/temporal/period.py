"""Periods: half-open intervals of day granules, plus coalescing.

The paper's model (§III, §V-A): each row of a valid-time table carries a
period ``[begin_time, end_time)``; sequenced evaluation manipulates these
periods so the result looks as if the query ran independently at every
granule.  ``Period`` wraps a pair of day ordinals; :func:`coalesce`
merges value-equivalent rows with adjacent or overlapping periods, which
is how the reference semantics and both slicing strategies are compared
for equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.sqlengine.values import Date, sort_key

FOREVER = Date.MAX_ORDINAL
BEGINNING = Date.MIN_ORDINAL


@dataclass(frozen=True, order=True)
class Period:
    """A half-open period ``[begin, end)`` of day ordinals."""

    begin: int
    end: int

    def __post_init__(self) -> None:
        if self.begin >= self.end:
            raise ValueError(f"empty period [{self.begin}, {self.end})")

    @classmethod
    def from_dates(cls, begin: Date, end: Date) -> "Period":
        """Build a period from two Date bounds."""
        return cls(begin.ordinal, end.ordinal)

    @classmethod
    def from_iso(cls, begin: str, end: str) -> "Period":
        """Build a period from two ISO date strings."""
        return cls(Date.from_iso(begin).ordinal, Date.from_iso(end).ordinal)

    @classmethod
    def forever(cls) -> "Period":
        """The whole timeline, [0001-01-01, 9999-12-31)."""
        return cls(BEGINNING, FOREVER)

    @property
    def begin_date(self) -> Date:
        """The begin bound as a Date."""
        return Date(self.begin)

    @property
    def end_date(self) -> Date:
        """The (exclusive) end bound as a Date."""
        return Date(self.end)

    @property
    def duration(self) -> int:
        """Length in granules (days)."""
        return self.end - self.begin

    def contains(self, granule: int) -> bool:
        """True if the granule lies inside the half-open period."""
        return self.begin <= granule < self.end

    def contains_period(self, other: "Period") -> bool:
        """True if ``other`` lies entirely inside this period."""
        return self.begin <= other.begin and other.end <= self.end

    def overlaps(self, other: "Period") -> bool:
        """True if the two periods share at least one granule."""
        return self.begin < other.end and other.begin < self.end

    def meets(self, other: "Period") -> bool:
        """Allen's *meets*: this period ends exactly where ``other`` begins."""
        return self.end == other.begin

    def intersect(self, other: "Period") -> Optional["Period"]:
        """The common sub-period, or None when disjoint."""
        begin = max(self.begin, other.begin)
        end = min(self.end, other.end)
        if begin >= end:
            return None
        return Period(begin, end)

    def union_with(self, other: "Period") -> Optional["Period"]:
        """The merged period if the two overlap or meet, else None."""
        if self.begin <= other.end and other.begin <= self.end:
            return Period(min(self.begin, other.begin), max(self.end, other.end))
        return None

    def clip(self, context: "Period") -> Optional["Period"]:
        """Alias of :meth:`intersect`, named for clipping to a context."""
        return self.intersect(context)

    def granules(self) -> Iterable[int]:
        """Iterate the granules in this period (careful with FOREVER)."""
        return range(self.begin, self.end)

    def __str__(self) -> str:
        return f"[{Date(self.begin).to_iso()}, {Date(self.end).to_iso()})"


def coalesce(
    rows: Sequence[tuple[tuple, Period]],
) -> list[tuple[tuple, Period]]:
    """Merge value-equivalent rows whose periods overlap or meet.

    Input: ``(value_tuple, period)`` pairs.  Output is sorted by value key
    then period and is the canonical form used to compare temporal
    relations for snapshot equivalence.
    """
    by_value: dict[tuple, list] = {}
    originals: dict[tuple, tuple] = {}
    for values, period in rows:
        key = tuple(sort_key(v) for v in values)
        by_value.setdefault(key, []).append(period)
        originals.setdefault(key, values)
    result: list[tuple[tuple, Period]] = []
    for key in sorted(by_value):
        periods = sorted(by_value[key])
        merged: list[Period] = []
        for period in periods:
            if merged:
                combined = merged[-1].union_with(period)
                if combined is not None:
                    merged[-1] = combined
                    continue
            merged.append(period)
        values = originals[key]
        result.extend((values, period) for period in merged)
    return result


def temporal_rows_equal(
    left: Sequence[tuple[tuple, Period]],
    right: Sequence[tuple[tuple, Period]],
) -> bool:
    """Snapshot equivalence: equal after coalescing."""
    return coalesce(left) == coalesce(right)


def constant_periods(
    points: Iterable[int], context: Optional[Period] = None
) -> list[Period]:
    """Constant periods (§V-A): maximal periods between change points.

    ``points`` are the begin/end times collected from the input tables;
    the result partitions the context into periods during which no input
    table changes.  Context boundaries count as change points so that
    periods never extend outside the context.
    """
    if context is None:
        context = Period.forever()
    distinct = {p for p in points if context.begin < p < context.end}
    distinct.add(context.begin)
    distinct.add(context.end)
    ordered = sorted(distinct)
    return [
        Period(a, b) for a, b in zip(ordered, ordered[1:])
    ]


def collect_change_points(
    tables: Iterable, begin_column: str = "begin_time", end_column: str = "end_time"
) -> set[int]:
    """All begin/end ordinals appearing in the given engine tables."""
    points: set[int] = set()
    for table in tables:
        begin_index = table.column_index(begin_column)
        end_index = table.column_index(end_column)
        for row in table.rows:
            begin = row[begin_index]
            end = row[end_index]
            if isinstance(begin, Date):
                points.add(begin.ordinal)
            if isinstance(end, Date):
                points.add(end.ordinal)
    return points
