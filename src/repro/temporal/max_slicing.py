"""Maximally-fragmented slicing: ``max⟦·⟧`` (paper §V, Figures 9 and 10).

Strategy: compute the constant periods of every reachable temporal table
into a ``cp`` table, then

* the invoking query gains ``cp`` in its FROM clause, the constant
  period's bounds in its select list, and overlap-at-``cp.begin_time``
  conditions for each temporal table (Figure 9);
* every reachable temporal-reading routine is cloned with a ``max_``
  prefix and an extra ``begin_time_in DATE`` parameter; every query
  inside evaluates at that point, and nested calls pass the point along
  (Figure 10).  Routines that never touch temporal data stay untouched
  (the paper's reachability optimization).

The transformed statement is conventional SQL/PSM; the engine calls the
routine once per (satisfying row × constant period) — the cost behaviour
the performance study measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.types import SqlType
from repro.temporal import analysis
from repro.temporal.schema import TemporalRegistry
from repro.temporal.pointwise import transform_statement_at_point
from repro.temporal.transform_util import (
    clone,
    from_table_aliases,
    name,
    unique_name,
)

MAX_PREFIX = "max_"
POINT_PARAM = "begin_time_in"


def statement_key(stmt: ast.Statement) -> str:
    """Canonical text form of a statement for transform-cache keys.

    The transformations are deterministic functions of (statement text,
    catalog, registry), so two parses of the same SQL share one cached
    transformation; the stratum combines this with the registry and
    catalog versions.
    """
    return stmt.to_sql()


@dataclass
class MaxTransformResult:
    """Transformed statement + required routine clones + cp metadata."""

    statement: ast.Statement
    routines: list[Union[ast.CreateFunction, ast.CreateProcedure]] = field(
        default_factory=list
    )
    cp_table: str = "cp"
    cp_alias: str = "cp"
    temporal_tables: list[str] = field(default_factory=list)

    def to_sql(self) -> str:
        parts = [r.to_sql() + ";" for r in self.routines]
        parts.append(self.statement.to_sql() + ";")
        return "\n\n".join(parts)


def max_rename_map(
    stmt: ast.Statement, catalog: Catalog, registry: TemporalRegistry
) -> dict[str, str]:
    """original → max_ names for reachable temporal-reading routines."""
    mapping: dict[str, str] = {}
    for routine_name in analysis.reachable_routines(stmt, catalog):
        if analysis.routine_reads_temporal(routine_name, catalog, registry):
            mapping[routine_name] = MAX_PREFIX + routine_name
    return mapping


def transform_routine_max(
    definition: Union[ast.CreateFunction, ast.CreateProcedure],
    registry: TemporalRegistry,
    rename_map: dict[str, str],
) -> Union[ast.CreateFunction, ast.CreateProcedure]:
    """Clone one routine into its ``max_`` form (Figure 10)."""
    new_def = clone(definition)
    new_def.name = rename_map[definition.name.lower()]
    taken = {p.name.lower() for p in new_def.params}
    point_param = POINT_PARAM if POINT_PARAM not in taken else unique_name(
        POINT_PARAM, taken
    )
    new_def.params = new_def.params + [
        ast.ParamDef(name=point_param, type=SqlType("DATE"))
    ]
    point = name(None, point_param)
    transform_statement_at_point(
        new_def.body,
        point,
        registry,
        rename_map,
        extra_args=lambda: [name(None, point_param)],
    )
    return new_def


def transform_query_max(
    stmt: ast.Statement,
    catalog: Catalog,
    registry: TemporalRegistry,
    cp_table: str,
) -> MaxTransformResult:
    """Transform a sequenced statement under maximal slicing (Figure 9).

    The caller is responsible for materializing ``cp_table`` (see
    :mod:`repro.temporal.constant_periods`) before executing.
    """
    rename_map = max_rename_map(stmt, catalog, registry)
    routines = [
        transform_routine_max(catalog.get_routine(original).definition, registry, rename_map)
        for original in rename_map
    ]
    temporal_tables = analysis.reachable_temporal_tables(stmt, catalog, registry)
    new_stmt = clone(stmt)
    new_stmt.modifier = None
    if isinstance(new_stmt, ast.Select):
        cp_alias = _attach_cp(new_stmt, cp_table)
        point = name(cp_alias, "begin_time")
        transform_statement_at_point(
            new_stmt, point, registry, rename_map,
            extra_args=lambda: [name(cp_alias, "begin_time")],
        )
        result_alias = cp_alias
    elif isinstance(new_stmt, ast.CallStatement):
        # the stratum drives the per-constant-period loop natively for
        # CALL: the procedure clone takes the point parameter, so the
        # statement just renames and defers the point to execution time.
        target = rename_map.get(new_stmt.name.lower())
        if target is not None:
            new_stmt.name = target
        result_alias = "cp"
    else:
        raise NotImplementedError(
            f"sequenced {type(stmt).__name__} is not supported by maximal"
            " slicing (SELECT and CALL are)"
        )
    return MaxTransformResult(
        statement=new_stmt,
        routines=routines,
        cp_table=cp_table,
        cp_alias=result_alias,
        temporal_tables=temporal_tables,
    )


def _attach_cp(select: ast.Select, cp_table: str) -> str:
    """Add the cp table to FROM and the period bounds to the select list.

    Applies to the outermost select (and each UNION arm); returns the
    alias chosen for cp.
    """
    taken = {alias.lower() for _, alias in from_table_aliases(select)}
    cp_alias = unique_name("cp", taken)
    node = select
    while node is not None:
        node.items = node.items + [
            ast.SelectItem(expr=name(cp_alias, "begin_time"), alias="begin_time"),
            ast.SelectItem(expr=name(cp_alias, "end_time"), alias="end_time"),
        ]
        # cp goes FIRST so lateral TABLE(...) arguments can reference it
        node.from_items = [
            ast.TableRef(name=cp_table, alias=cp_alias)
        ] + node.from_items
        node = node.set_rhs
    return cp_alias
