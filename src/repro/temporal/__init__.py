"""The temporal stratum: Temporal SQL/PSM → conventional SQL/PSM.

This package implements the paper's contribution:

* :class:`TemporalStratum` — owns a conventional
  :class:`~repro.sqlengine.Database`, tracks which tables have valid-time
  support, and executes statements carrying temporal statement modifiers
  (``VALIDTIME [bt, et]`` / ``NONSEQUENCED VALIDTIME``) by source-to-source
  transformation.
* :class:`SlicingStrategy` — ``MAX`` (maximally-fragmented slicing) or
  ``PERST`` (per-statement slicing) for sequenced evaluation.
"""

from repro.temporal.errors import (
    PerStatementInapplicableError,
    SequencedContextError,
    TemporalError,
)
from repro.temporal.period import Period
from repro.temporal.stratum import (
    SlicingStrategy,
    TemporalResult,
    TemporalStratum,
    parse_set_strategy,
)

__all__ = [
    "TemporalStratum",
    "TemporalResult",
    "SlicingStrategy",
    "parse_set_strategy",
    "Period",
    "TemporalError",
    "PerStatementInapplicableError",
    "SequencedContextError",
]
