"""Temporal table metadata: which tables have valid-time support."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.sqlengine.errors import CatalogError
from repro.sqlengine.storage import Table

BEGIN_COLUMN = "begin_time"
END_COLUMN = "end_time"
TT_START_COLUMN = "tt_start"
TT_STOP_COLUMN = "tt_stop"


@dataclass(frozen=True)
class TemporalTableInfo:
    """One table with valid-time support.

    In the stratum encoding (paper §III) a temporal table is stored as a
    conventional table with two extra DATE columns delimiting the row's
    validity period, half-open ``[begin_time, end_time)``.
    """

    name: str
    begin_column: str = BEGIN_COLUMN
    end_column: str = END_COLUMN

    @property
    def key(self) -> str:
        return self.name.lower()


class TemporalRegistry:
    """The set of temporal tables known to a stratum.

    A registry tracks *one* time dimension (which columns delimit the
    rows' periods); a stratum holds a valid-time registry and a
    transaction-time registry, and a bitemporal table appears in both.
    The transformations are dimension-agnostic — they only consult the
    registry they are handed.
    """

    # the owning database's TransactionManager (attached by the stratum)
    txn = None
    # the WAL dimension tag ("vt"/"tt"), set by DurabilityManager.bind_stratum;
    # None leaves registrations out of the WAL (durability detached)
    wal_dim = None

    def __init__(self) -> None:
        self._tables: dict[str, TemporalTableInfo] = {}
        # bumped whenever the set of temporal tables changes; the
        # stratum's transform cache keys on it so a registration change
        # can never serve a stale transformation.  On rollback the
        # counter keeps climbing (never restored) so a cache key can
        # never alias across an undone registration.
        self.version = 0

    def add(self, info: TemporalTableInfo, table: Table) -> None:
        """Register ``table`` as temporal, validating its timestamp columns."""
        for column in (info.begin_column, info.end_column):
            if not table.has_column(column):
                raise CatalogError(
                    f"temporal table {info.name} lacks timestamp column {column!r}"
                )
            if not table.column_type(column).is_date:
                raise CatalogError(
                    f"timestamp column {info.name}.{column} must be DATE"
                )
        txn = self.txn
        if txn is not None:
            if txn.fault_plan is not None:
                txn.fault_plan.hit("registry.add", info.name)
            if txn.logging:
                txn.log.append(("reg", self, info.key, self._tables.get(info.key)))
            if txn.wal is not None and self.wal_dim is not None:
                txn.wal.record_registry(self.wal_dim, info)
        self._tables[info.key] = info
        self.version += 1
        # the period pair is now an interval-index candidate: the
        # executor prunes scans bounded on both columns (declaring is
        # metadata only; the index itself builds lazily on first probe)
        table.declare_interval(info.begin_column, info.end_column)

    def remove(self, name: str) -> None:
        key = name.lower()
        info = self._tables.get(key)
        if info is None:
            return
        txn = self.txn
        if txn is not None:
            if txn.fault_plan is not None:
                txn.fault_plan.hit("registry.remove", name)
            if txn.logging:
                txn.log.append(("reg", self, key, info))
            if txn.wal is not None and self.wal_dim is not None:
                txn.wal.record_unregistry(self.wal_dim, info.name)
        del self._tables[key]
        self.version += 1

    def is_temporal(self, name: str) -> bool:
        return name.lower() in self._tables

    def get(self, name: str) -> Optional[TemporalTableInfo]:
        return self._tables.get(name.lower())

    def names(self) -> list[str]:
        return sorted(self._tables)

    def infos(self) -> Iterable[TemporalTableInfo]:
        return self._tables.values()

    def value_columns(self, table: Table) -> list[str]:
        """The non-timestamp columns of a registered temporal table."""
        info = self.get(table.name)
        if info is None:
            return table.column_names
        hidden = {info.begin_column.lower(), info.end_column.lower()}
        return [c for c in table.column_names if c.lower() not in hidden]
