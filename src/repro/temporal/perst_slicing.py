"""Per-statement slicing: ``ps⟦·⟧`` (paper §VI, Figure 11).

Each sequenced routine is rewritten into a conventional routine that
operates *on temporal tables*:

* the signature gains an evaluation period ``(ps_begin, ps_end)`` and a
  scalar return type becomes ``ROW(taupsm_result T, begin_time DATE,
  end_time DATE) ARRAY`` — the routine's result as an explicit temporal
  table (§VI-A);
* time-varying variables become variable *tables* of the same row-array
  shape; ``SET`` becomes a sequenced delete + insert (§VI-B);
* select-project-join statements are transformed algebraically: temporal
  sources (temporal tables, variable tables, nested ``ps_`` calls joined
  via ``TABLE(...)``) are intersected with ``LAST_INSTANCE`` /
  ``FIRST_INSTANCE`` folds and pairwise overlap predicates;
* statements outside the algebraic fragment (aggregates, temporal IF
  conditions) fall back to a per-statement ``FOR`` loop over the
  constant periods of *that statement's* inputs, clipped to the
  evaluation period (§VI-C);
* a routine whose body drives a cursor over temporal data is evaluated
  per constant period: the cursor is re-pointed at an auxiliary
  temporary table rebuilt for each period — the materialization cost
  behind the paper's q7/q7b observations (§VII-C);
* the non-nested-FETCH pattern (q17b) is rejected up front
  (:func:`repro.temporal.analysis.check_perst_applicable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional, Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine import functions as fn
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.types import SqlType
from repro.sqlengine.values import Null
from repro.temporal import analysis
from repro.temporal.errors import PerStatementInapplicableError, TemporalError
from repro.temporal.pointwise import forbid_temporal_dml
from repro.temporal.schema import TemporalRegistry
from repro.temporal.transform_util import (
    add_condition,
    and_all,
    clone,
    cmp,
    fold_first_instance,
    fold_last_instance,
    from_table_aliases,
    lit,
    name,
    overlap_at_point,
    pairwise_overlap,
    rewrite_expressions,
    unique_name,
)

PS_PREFIX = "ps_"
BEGIN_PARAM = "ps_begin"
END_PARAM = "ps_end"
RESULT_COLUMN = "taupsm_result"
RETURN_TABLE = "ps_return_tb"
CP_LOOP_VAR = "taupsm_cp"
ONCE_LABEL = "taupsm_once"
DATE_TYPE = SqlType("DATE")


@dataclass
class PerstTransformResult:
    """Transformed statement, routine clones, and cp-table requirements.

    ``cp_requirements`` maps each constant-period helper table name to
    the temporal tables whose change points it must contain; the stratum
    materializes them (for the full query context) before execution.
    """

    statement: ast.Statement
    routines: list[Union[ast.CreateFunction, ast.CreateProcedure]] = dataclass_field(
        default_factory=list
    )
    cp_requirements: dict[str, list[str]] = dataclass_field(default_factory=dict)
    temporal_tables: list[str] = dataclass_field(default_factory=list)

    def to_sql(self) -> str:
        parts = [r.to_sql() + ";" for r in self.routines]
        parts.append(self.statement.to_sql() + ";")
        return "\n\n".join(parts)


def perst_rename_map(
    stmt: ast.Statement, catalog: Catalog, registry: TemporalRegistry
) -> dict[str, str]:
    """original → ps_ names for reachable temporal-reading routines."""
    mapping: dict[str, str] = {}
    for routine_name in analysis.reachable_routines(stmt, catalog):
        if analysis.routine_reads_temporal(routine_name, catalog, registry):
            mapping[routine_name] = PS_PREFIX + routine_name
    return mapping


class PerstTransformer:
    """Transforms one statement and its reachable routines."""

    def __init__(self, catalog: Catalog, registry: TemporalRegistry) -> None:
        self.catalog = catalog
        self.registry = registry
        self.cp_requirements: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def transform(self, stmt: ast.Statement) -> PerstTransformResult:
        analysis.check_perst_applicable(stmt, self.catalog, self.registry)
        rename_map = perst_rename_map(stmt, self.catalog, self.registry)
        routines = [
            self.transform_routine(self.catalog.get_routine(original).definition)
            for original in rename_map
        ]
        new_stmt = self.transform_top_statement(stmt, rename_map)
        return PerstTransformResult(
            statement=new_stmt,
            routines=routines,
            cp_requirements=dict(self.cp_requirements),
            temporal_tables=analysis.reachable_temporal_tables(
                stmt, self.catalog, self.registry
            ),
        )

    def transform_top_statement(
        self, stmt: ast.Statement, rename_map: dict[str, str]
    ) -> ast.Statement:
        """Transform the invoking statement (Figure 11's query part).

        The temporal context bounds are left as the parameter names; the
        stratum substitutes literal dates at execution time via
        :func:`substitute_context`.
        """
        ctx = _Context(
            lo=name(None, BEGIN_PARAM),
            hi=name(None, END_PARAM),
            tv_vars=set(),
            tv_tables=set(),
            rename_map=rename_map,
            transformer=self,
            routine_name="<query>",
            routine_tables=set(
                analysis.reachable_temporal_tables(stmt, self.catalog, self.registry)
            ),
        )
        if isinstance(stmt, ast.Select):
            select = clone(stmt)
            select.modifier = None
            transformed = self.seq_select(select, ctx)
            if transformed is None:
                raise TemporalError(
                    "the invoking query is outside the algebraic fragment"
                    " supported by per-statement slicing; use maximal"
                    " slicing"
                )
            return transformed
        if isinstance(stmt, ast.CallStatement):
            call_stmt = clone(stmt)
            call_stmt.modifier = None
            target = rename_map.get(call_stmt.name.lower())
            if target is not None:
                call_stmt.name = target
                call_stmt.args = call_stmt.args + [ctx.lo_copy(), ctx.hi_copy()]
            return call_stmt
        raise NotImplementedError(
            f"sequenced {type(stmt).__name__} is not supported by"
            " per-statement slicing"
        )

    # ------------------------------------------------------------------
    # routine transformation (§VI-A, §VI-B)
    # ------------------------------------------------------------------

    def transform_routine(
        self, definition: Union[ast.CreateFunction, ast.CreateProcedure]
    ) -> Union[ast.CreateFunction, ast.CreateProcedure]:
        rename_map = perst_rename_map(definition, self.catalog, self.registry)
        rename_map[definition.name.lower()] = PS_PREFIX + definition.name.lower()
        new_def = clone(definition)
        new_def.name = PS_PREFIX + definition.name
        new_def.params = new_def.params + [
            ast.ParamDef(name=BEGIN_PARAM, type=DATE_TYPE),
            ast.ParamDef(name=END_PARAM, type=DATE_TYPE),
        ]
        is_function = isinstance(new_def, ast.CreateFunction)
        returns_row_array = is_function and isinstance(
            new_def.returns, ast.RowArrayType
        )
        if returns_row_array:
            # a table function's rows each gain a validity period
            return_type = None
            new_def.returns = ast.RowArrayType(
                fields=tuple(new_def.returns.fields)
                + (
                    ast.RowField(name="begin_time", type=DATE_TYPE),
                    ast.RowField(name="end_time", type=DATE_TYPE),
                )
            )
        elif is_function:
            return_type = new_def.returns
            new_def.returns = ast.RowArrayType(
                fields=(
                    ast.RowField(name=RESULT_COLUMN, type=return_type),
                    ast.RowField(name="begin_time", type=DATE_TYPE),
                    ast.RowField(name="end_time", type=DATE_TYPE),
                )
            )
        else:
            return_type = None
            for param in new_def.params:
                if param.mode in ("OUT", "INOUT") and self._param_is_time_varying(
                    definition, param.name
                ):
                    raise PerStatementInapplicableError(
                        f"{definition.name}: OUT parameter {param.name!r}"
                        " would be time-varying under per-statement slicing"
                    )
        ctx = _Context(
            lo=name(None, BEGIN_PARAM),
            hi=name(None, END_PARAM),
            tv_vars=set(),
            tv_tables=set(),
            rename_map=rename_map,
            transformer=self,
            routine_name=definition.name,
            return_type=return_type,
            returns_row_array=returns_row_array,
            routine_tables=set(
                analysis.reachable_temporal_tables(
                    definition, self.catalog, self.registry
                )
            ),
        )
        body = new_def.body
        if not isinstance(body, ast.Compound):
            body = ast.Compound(declarations=[], statements=[body])
        if self._body_has_temporal_cursor(body, ctx):
            new_def.body = self._transform_cursor_body(
                body, ctx, is_function and not returns_row_array
            )
        else:
            ctx.tv_vars, ctx.tv_records = self._time_varying_variables(body, ctx)
            new_def.body = self._transform_algebraic_body(
                body, ctx, is_function and not returns_row_array
            )
        return new_def

    def _param_is_time_varying(self, definition, param_name: str) -> bool:
        """Is an OUT parameter assigned from temporal data anywhere?"""
        target = param_name.lower()
        for child in ast.walk(definition.body):
            if isinstance(child, ast.SetStatement) and target in [
                t.lower() for t in child.targets
            ]:
                if self._expression_is_temporal(child.value, set(), set()):
                    return True
            if isinstance(child, ast.SelectInto) and target in [
                t.lower() for t in child.targets
            ]:
                if self._select_is_temporal(child.select, set(), set()):
                    return True
        return False

    # -- temporality tests --------------------------------------------------

    def _expression_is_temporal(
        self,
        expr: ast.Expression,
        tv_vars: set[str],
        tv_tables: set[str],
        tv_records: set[str] = frozenset(),
    ) -> bool:
        for child in ast.walk(expr):
            if isinstance(child, ast.Name):
                if child.qualifier is None and child.name.lower() in tv_vars:
                    return True
                if (
                    child.qualifier is not None
                    and child.qualifier.lower() in tv_records
                ):
                    return True
            elif isinstance(child, ast.FunctionCall):
                if self.catalog.has_routine(child.name) and analysis.routine_reads_temporal(
                    child.name, self.catalog, self.registry
                ):
                    return True
            elif isinstance(child, ast.TableRef):
                key = child.name.lower()
                if self.registry.is_temporal(key) or key in tv_tables or key in tv_vars:
                    return True
        return False

    def _select_is_temporal(
        self,
        select: ast.Select,
        tv_vars: set[str],
        tv_tables: set[str],
        tv_records: set[str] = frozenset(),
    ) -> bool:
        return self._expression_is_temporal(
            ast.Parenthesized(expr=ast.ScalarSubquery(select=select)),
            tv_vars,
            tv_tables,
            tv_records,
        )

    def _time_varying_variables(
        self, body: ast.Compound, ctx: "_Context"
    ) -> tuple[set[str], set[str]]:
        """Fixpoint dataflow: (variables, FOR-loop records) over temporal data."""
        tv: set[str] = set()
        records: set[str] = set()
        # row-array variables hold sequenced data under PERST
        for child in ast.walk(body):
            if isinstance(child, ast.DeclareVariable) and child.array_type is not None:
                ctx.tv_tables.update(n.lower() for n in child.names)
        changed = True
        while changed:
            changed = False
            for child in ast.walk(body):
                targets: list[str] = []
                source_temporal = False
                if isinstance(child, ast.SetStatement):
                    targets = child.targets
                    source_temporal = self._expression_is_temporal(
                        child.value, tv, ctx.tv_tables, records
                    )
                elif isinstance(child, ast.SelectInto):
                    targets = child.targets
                    source_temporal = self._select_is_temporal(
                        child.select, tv, ctx.tv_tables, records
                    )
                elif isinstance(child, ast.ForStatement):
                    if (
                        self._select_is_temporal(
                            child.select, tv, ctx.tv_tables, records
                        )
                        and child.loop_var.lower() not in records
                    ):
                        records.add(child.loop_var.lower())
                        changed = True
                elif isinstance(child, (ast.IfStatement, ast.CaseStatement)):
                    # control dependence: a variable assigned under a
                    # time-varying condition is itself time-varying
                    conditions = []
                    if isinstance(child, ast.IfStatement):
                        conditions = [cond for cond, _ in child.branches]
                    else:
                        if child.operand is not None:
                            conditions.append(child.operand)
                        conditions += [when for when, _ in child.whens]
                    if any(
                        self._expression_is_temporal(c, tv, ctx.tv_tables, records)
                        for c in conditions
                    ):
                        branches = []
                        if isinstance(child, ast.IfStatement):
                            branches = [b for _, b in child.branches]
                        else:
                            branches = [b for _, b in child.whens]
                        extra = child.else_branch or []
                        for branch in branches + [extra]:
                            for nested in branch:
                                for sub in ast.walk(nested):
                                    if isinstance(sub, (ast.SetStatement, ast.SelectInto)):
                                        for target in sub.targets:
                                            if target.lower() not in tv:
                                                tv.add(target.lower())
                                                changed = True
                if source_temporal:
                    for target in targets:
                        if target.lower() not in tv:
                            tv.add(target.lower())
                            changed = True
        return tv, records

    def _body_has_temporal_cursor(self, body: ast.Compound, ctx: "_Context") -> bool:
        for child in ast.walk(body):
            if isinstance(child, ast.DeclareCursor) and self._select_is_temporal(
                child.select, set(), set()
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # algebraic body mode
    # ------------------------------------------------------------------

    def _transform_algebraic_body(
        self, body: ast.Compound, ctx: "_Context", is_function: bool
    ) -> ast.Compound:
        declarations: list[ast.PsmStatement] = []
        prelude: list[ast.Statement] = []
        if is_function:
            declarations.append(self._return_table_declaration(ctx))
        for decl in body.declarations:
            new_decls, extra = self._transform_declaration(decl, ctx)
            declarations.extend(new_decls)
            prelude.extend(extra)
        statements: list[ast.Statement] = list(prelude)
        for stmt in body.statements:
            statements.extend(self.transform_body_statement(stmt, ctx))
        return ast.Compound(declarations=declarations, statements=statements)

    def _return_table_declaration(self, ctx: "_Context") -> ast.DeclareVariable:
        assert ctx.return_type is not None
        return ast.DeclareVariable(
            names=[RETURN_TABLE],
            type=None,
            array_type=ast.RowArrayType(
                fields=(
                    ast.RowField(name=RESULT_COLUMN, type=ctx.return_type),
                    ast.RowField(name="begin_time", type=DATE_TYPE),
                    ast.RowField(name="end_time", type=DATE_TYPE),
                )
            ),
        )

    def _transform_declaration(
        self, decl: ast.PsmStatement, ctx: "_Context"
    ) -> tuple[list[ast.PsmStatement], list[ast.Statement]]:
        """One declaration → (new declarations, prelude statements)."""
        if isinstance(decl, ast.DeclareVariable) and decl.array_type is not None:
            # a row-array variable holds sequenced rows: add period columns
            field_names = {f.name.lower() for f in decl.array_type.fields}
            new_fields = tuple(decl.array_type.fields)
            if "begin_time" not in field_names:
                new_fields += (ast.RowField(name="begin_time", type=DATE_TYPE),)
            if "end_time" not in field_names:
                new_fields += (ast.RowField(name="end_time", type=DATE_TYPE),)
            ctx.tv_tables.update(n.lower() for n in decl.names)
            return (
                [
                    ast.DeclareVariable(
                        names=list(decl.names),
                        type=None,
                        array_type=ast.RowArrayType(fields=new_fields),
                    )
                ],
                [],
            )
        if isinstance(decl, ast.DeclareVariable):
            tv_names = [n for n in decl.names if n.lower() in ctx.tv_vars]
            plain = [n for n in decl.names if n.lower() not in ctx.tv_vars]
            new_decls: list[ast.PsmStatement] = []
            prelude: list[ast.Statement] = []
            if plain:
                new_decls.append(
                    ast.DeclareVariable(
                        names=plain, type=decl.type, default=clone(decl.default)
                        if decl.default is not None else None,
                    )
                )
            for var in tv_names:
                new_decls.append(
                    ast.DeclareVariable(
                        names=[var],
                        type=None,
                        array_type=_variable_table_type(var, decl.type),
                    )
                )
                if decl.default is not None:
                    prelude.append(
                        ast.Insert(
                            table=var,
                            values=[[clone(decl.default), ctx.lo_copy(), ctx.hi_copy()]],
                        )
                    )
            return new_decls, prelude
        if isinstance(decl, ast.DeclareCursor):
            # reachable only when the cursor select is non-temporal
            return [clone(decl)], []
        return [clone(decl)], []

    # -- statement dispatch ---------------------------------------------

    def transform_body_statement(
        self, stmt: ast.Statement, ctx: "_Context"
    ) -> list[ast.Statement]:
        if isinstance(stmt, ast.SetStatement):
            return self._transform_set(stmt, ctx)
        if isinstance(stmt, ast.SelectInto):
            return self._transform_select_into(stmt, ctx)
        if isinstance(stmt, ast.ReturnStatement):
            return self._transform_return(stmt, ctx)
        if isinstance(stmt, ast.IfStatement):
            return self._transform_if(stmt, ctx)
        if isinstance(stmt, ast.CaseStatement):
            return self._transform_case(stmt, ctx)
        if isinstance(stmt, (ast.WhileStatement, ast.RepeatStatement, ast.LoopStatement)):
            return self._transform_plain_loop(stmt, ctx)
        if isinstance(stmt, ast.ForStatement):
            return self._transform_for(stmt, ctx)
        if isinstance(stmt, ast.CallStatement):
            return self._transform_call(stmt, ctx)
        if isinstance(stmt, ast.Select):
            return self._transform_result_select(stmt, ctx)
        if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            return self._transform_dml(stmt, ctx)
        if isinstance(stmt, ast.CreateTable):
            return self._transform_create_table(stmt, ctx)
        if isinstance(stmt, (ast.LeaveStatement, ast.IterateStatement,
                             ast.DropTable, ast.OpenCursor, ast.FetchCursor,
                             ast.CloseCursor)):
            return [clone(stmt)]
        if isinstance(stmt, ast.Compound):
            inner_ctx = ctx
            declarations: list[ast.PsmStatement] = []
            prelude: list[ast.Statement] = []
            for decl in stmt.declarations:
                new_decls, extra = self._transform_declaration(decl, inner_ctx)
                declarations.extend(new_decls)
                prelude.extend(extra)
            statements = list(prelude)
            for inner in stmt.statements:
                statements.extend(self.transform_body_statement(inner, inner_ctx))
            return [ast.Compound(declarations=declarations, statements=statements)]
        raise PerStatementInapplicableError(
            f"{ctx.routine_name}: cannot transform {type(stmt).__name__}"
            " under per-statement slicing"
        )

    # -- SET (§VI-B) -----------------------------------------------------

    def _transform_set(
        self, stmt: ast.SetStatement, ctx: "_Context"
    ) -> list[ast.Statement]:
        temporal = self._expression_is_temporal(stmt.value, ctx.tv_vars, ctx.tv_tables, ctx.tv_records)
        if len(stmt.targets) == 1 and stmt.targets[0].lower() not in ctx.tv_vars:
            if temporal:
                raise PerStatementInapplicableError(
                    f"{ctx.routine_name}: non-time-varying variable"
                    f" {stmt.targets[0]!r} assigned from temporal data"
                )
            return [clone(stmt)]
        # self-referential sequenced assignment (acc = acc + x) cannot be
        # expressed as delete-then-insert; the paper's workloads route
        # accumulation through cursors (per-period evaluation) instead
        for target in stmt.targets:
            key = target.lower()
            for child in ast.walk(stmt.value):
                if (
                    isinstance(child, ast.Name)
                    and child.qualifier is None
                    and child.name.lower() == key
                    and key in ctx.tv_vars
                ):
                    raise PerStatementInapplicableError(
                        f"{ctx.routine_name}: self-referential sequenced"
                        f" assignment to {target!r}"
                    )
        statements: list[ast.Statement] = []
        for target in stmt.targets:
            statements.append(self._sequenced_delete(target, ctx))
        if len(stmt.targets) == 1:
            value_select = self.seq_value_select(stmt.value, ctx)
            if value_select is None:
                return statements + self._statement_loop_fallback(stmt, ctx)
            statements.append(ast.Insert(table=stmt.targets[0], select=value_select))
            return statements
        # row form: SET (a, b) = (SELECT ...)
        inner = stmt.value
        if isinstance(inner, ast.Parenthesized):
            inner = inner.expr
        if not isinstance(inner, ast.ScalarSubquery):
            raise PerStatementInapplicableError(
                f"{ctx.routine_name}: row SET requires a row subquery"
            )
        for index, target in enumerate(stmt.targets):
            item_select = self.seq_select(
                clone(inner.select), ctx, keep_items=[index]
            )
            if item_select is None:
                return statements + self._statement_loop_fallback(stmt, ctx)
            statements.append(ast.Insert(table=target, select=item_select))
        return statements

    def _sequenced_delete(self, target: str, ctx: "_Context") -> ast.Delete:
        """Delete rows of a variable table valid in the evaluation period."""
        return ast.Delete(
            table=target,
            where=ast.BinaryOp(
                op="AND",
                left=cmp("<", name(None, "begin_time"), ctx.hi_copy()),
                right=cmp("<=", ctx.lo_copy(), name(None, "end_time")),
            ),
        )

    def _transform_select_into(
        self, stmt: ast.SelectInto, ctx: "_Context"
    ) -> list[ast.Statement]:
        temporal = self._select_is_temporal(stmt.select, ctx.tv_vars, ctx.tv_tables, ctx.tv_records)
        tv_targets = [t for t in stmt.targets if t.lower() in ctx.tv_vars]
        if not tv_targets:
            if temporal:
                raise PerStatementInapplicableError(
                    f"{ctx.routine_name}: SELECT INTO scalar targets from"
                    " temporal data"
                )
            return [clone(stmt)]
        statements: list[ast.Statement] = [
            self._sequenced_delete(t, ctx) for t in tv_targets
        ]
        for index, target in enumerate(stmt.targets):
            if target.lower() not in ctx.tv_vars:
                raise PerStatementInapplicableError(
                    f"{ctx.routine_name}: SELECT INTO mixes time-varying"
                    " and scalar targets"
                )
            item_select = self.seq_select(clone(stmt.select), ctx, keep_items=[index])
            if item_select is None:
                return statements[:1] + self._statement_loop_fallback(stmt, ctx)
            statements.append(ast.Insert(table=target, select=item_select))
        return statements

    # -- RETURN (§VI-B) -----------------------------------------------------

    def _transform_return(
        self, stmt: ast.ReturnStatement, ctx: "_Context"
    ) -> list[ast.Statement]:
        if ctx.return_type is None:
            return [clone(stmt)]
        if stmt.value is None:
            return [ast.ReturnStatement(value=name(None, RETURN_TABLE))]
        # alias optimization: RETURN of a bare time-varying variable
        # returns its table directly (the paper's fname aliasing)
        if (
            isinstance(stmt.value, ast.Name)
            and stmt.value.qualifier is None
            and stmt.value.name.lower() in ctx.tv_vars
        ):
            return [ast.ReturnStatement(value=name(None, stmt.value.name))]
        value_select = self.seq_value_select(stmt.value, ctx)
        if value_select is None:
            raise PerStatementInapplicableError(
                f"{ctx.routine_name}: RETURN value outside the supported"
                " fragment"
            )
        return [
            ast.Insert(table=RETURN_TABLE, select=value_select),
            ast.ReturnStatement(value=name(None, RETURN_TABLE)),
        ]

    # -- IF / CASE ------------------------------------------------------

    def _transform_if(
        self, stmt: ast.IfStatement, ctx: "_Context"
    ) -> list[ast.Statement]:
        condition_temporal = any(
            self._expression_is_temporal(cond, ctx.tv_vars, ctx.tv_tables)
            for cond, _ in stmt.branches
        )
        if condition_temporal:
            return self._statement_loop_fallback(stmt, ctx)
        branches = []
        for cond, body in stmt.branches:
            new_body: list[ast.Statement] = []
            for inner in body:
                new_body.extend(self.transform_body_statement(inner, ctx))
            branches.append((clone(cond), new_body))
        else_branch = None
        if stmt.else_branch is not None:
            else_branch = []
            for inner in stmt.else_branch:
                else_branch.extend(self.transform_body_statement(inner, ctx))
        return [ast.IfStatement(branches=branches, else_branch=else_branch)]

    def _transform_case(
        self, stmt: ast.CaseStatement, ctx: "_Context"
    ) -> list[ast.Statement]:
        exprs = [stmt.operand] if stmt.operand is not None else []
        exprs += [when for when, _ in stmt.whens]
        if any(
            self._expression_is_temporal(e, ctx.tv_vars, ctx.tv_tables) for e in exprs
        ):
            return self._statement_loop_fallback(stmt, ctx)
        whens = []
        for when, body in stmt.whens:
            new_body: list[ast.Statement] = []
            for inner in body:
                new_body.extend(self.transform_body_statement(inner, ctx))
            whens.append((clone(when), new_body))
        else_branch = None
        if stmt.else_branch is not None:
            else_branch = []
            for inner in stmt.else_branch:
                else_branch.extend(self.transform_body_statement(inner, ctx))
        return [
            ast.CaseStatement(
                operand=clone(stmt.operand) if stmt.operand is not None else None,
                whens=whens,
                else_branch=else_branch,
            )
        ]

    # -- loops ----------------------------------------------------------

    def _transform_plain_loop(self, stmt, ctx: "_Context") -> list[ast.Statement]:
        condition = getattr(stmt, "condition", None) or getattr(stmt, "until", None)
        if condition is not None and self._expression_is_temporal(
            condition, ctx.tv_vars, ctx.tv_tables
        ):
            raise PerStatementInapplicableError(
                f"{ctx.routine_name}: loop condition over temporal data"
            )
        new_stmt = stmt.copy()
        new_body: list[ast.Statement] = []
        for inner in stmt.body:
            new_body.extend(self.transform_body_statement(inner, ctx))
        new_stmt.body = new_body
        return [new_stmt]

    def _transform_for(
        self, stmt: ast.ForStatement, ctx: "_Context"
    ) -> list[ast.Statement]:
        if not self._select_is_temporal(stmt.select, ctx.tv_vars, ctx.tv_tables, ctx.tv_records):
            new_stmt = stmt.copy()
            new_body: list[ast.Statement] = []
            for inner in stmt.body:
                new_body.extend(self.transform_body_statement(inner, ctx))
            new_stmt.body = new_body
            return [new_stmt]
        seq = self.seq_select(clone(stmt.select), ctx)
        if seq is None:
            return self._statement_loop_fallback(stmt, ctx)
        # block-structured slicing: the loop body runs once per
        # (row, period); inner statements evaluate over the row's period
        inner_ctx = ctx.narrowed(
            lo=name(stmt.loop_var, "begin_time"),
            hi=name(stmt.loop_var, "end_time"),
        )
        new_body = []
        for inner in stmt.body:
            new_body.extend(self.transform_body_statement(inner, inner_ctx))
        return [
            ast.ForStatement(
                loop_var=stmt.loop_var,
                select=seq,
                body=new_body,
                cursor_name=stmt.cursor_name,
                label=stmt.label,
            )
        ]

    # -- CALL -------------------------------------------------------------

    def _transform_call(
        self, stmt: ast.CallStatement, ctx: "_Context"
    ) -> list[ast.Statement]:
        new_stmt = clone(stmt)
        target = ctx.rename_map.get(new_stmt.name.lower())
        if target is not None:
            new_stmt.name = target
            new_stmt.args = new_stmt.args + [ctx.lo_copy(), ctx.hi_copy()]
        return [new_stmt]

    # -- result-set SELECT in a procedure --------------------------------

    def _transform_result_select(
        self, stmt: ast.Select, ctx: "_Context"
    ) -> list[ast.Statement]:
        if not self._select_is_temporal(stmt, ctx.tv_vars, ctx.tv_tables, ctx.tv_records):
            return [clone(stmt)]
        seq = self.seq_select(clone(stmt), ctx)
        if seq is None:
            return self._statement_loop_fallback(stmt, ctx)
        return [seq]

    # -- DML on temp / variable tables -------------------------------------

    def _transform_dml(self, stmt, ctx: "_Context") -> list[ast.Statement]:
        forbid_temporal_dml(stmt, self.registry)
        if isinstance(stmt, ast.Insert) and stmt.select is not None:
            if self._select_is_temporal(stmt.select, ctx.tv_vars, ctx.tv_tables, ctx.tv_records):
                seq = self.seq_select(clone(stmt.select), ctx)
                if seq is None:
                    return self._statement_loop_fallback(stmt, ctx)
                ctx.tv_tables.add(stmt.table.lower())
                return [ast.Insert(table=stmt.table, columns=None, select=seq)]
        return [clone(stmt)]

    def _transform_create_table(
        self, stmt: ast.CreateTable, ctx: "_Context"
    ) -> list[ast.Statement]:
        if stmt.as_select is not None and self._select_is_temporal(
            stmt.as_select, ctx.tv_vars, ctx.tv_tables
        ):
            seq = self.seq_select(clone(stmt.as_select), ctx)
            if seq is None:
                raise PerStatementInapplicableError(
                    f"{ctx.routine_name}: CREATE TABLE AS over a"
                    " non-algebraic temporal query"
                )
            ctx.tv_tables.add(stmt.name.lower())
            return [
                ast.CreateTable(
                    name=stmt.name, temporary=stmt.temporary, as_select=seq
                )
            ]
        return [clone(stmt)]

    # ------------------------------------------------------------------
    # sequenced SELECT: the algebraic fragment
    # ------------------------------------------------------------------

    def seq_select(
        self,
        select: ast.Select,
        ctx: "_Context",
        keep_items: Optional[list[int]] = None,
    ) -> Optional[ast.Select]:
        """Transform an SPJ select into its sequenced equivalent, or None.

        The result carries two extra columns, ``begin_time`` and
        ``end_time``: the intersection of the validity periods of every
        temporal source and the evaluation period (Figure 11).
        """
        if (
            select.set_op is not None
            or select.group_by
            or select.having is not None
            or any(
                item.expr is not None and _has_aggregate(item.expr)
                for item in select.items
            )
        ):
            return None
        if select.where is not None and _has_temporal_subquery(
            select.where, self, ctx
        ):
            return None
        # sequenced outer joins need per-period null-extension, which the
        # algebraic intersection cannot express; use the loop fallback
        if any(
            isinstance(child, ast.Join) and child.kind in ("LEFT", "RIGHT")
            for child in ast.walk(select)
        ):
            return None
        taken = {alias.lower() for _, alias in from_table_aliases(select)}
        taken |= {BEGIN_PARAM, END_PARAM}
        sources: list[tuple[ast.Expression, ast.Expression]] = []
        # 1) temporal tables, variable tables, and sequenced temp tables
        #    already present in FROM
        for table_name, alias in from_table_aliases(select):
            info = self.registry.get(table_name)
            if info is not None:
                sources.append(
                    (name(alias, info.begin_column), name(alias, info.end_column))
                )
            elif table_name in ctx.tv_vars or table_name in ctx.tv_tables:
                sources.append(
                    (name(alias, "begin_time"), name(alias, "end_time"))
                )
        # 1b) table functions over temporal routines already in FROM (q19):
        #     rename to ps_ form, pass the period, expose period columns
        for item in select.from_items:
            if isinstance(item, ast.TableFunctionRef):
                call_name = item.call.name.lower()
                target = ctx.rename_map.get(call_name)
                if target is not None:
                    item.call.name = target
                    item.call.args = item.call.args + [ctx.lo_copy(), ctx.hi_copy()]
                    sources.append(
                        (name(item.alias, "begin_time"), name(item.alias, "end_time"))
                    )
                elif self.catalog.has_routine(call_name) and analysis.routine_reads_temporal(
                    call_name, self.catalog, self.registry
                ):
                    return None
        # 2) time-varying scalar variables used in expressions: join their
        #    variable tables
        tv_in_expr = self._collect_tv_names(select, ctx)
        for var in tv_in_expr:
            alias = unique_name(f"taupsm_{var}", taken)
            select.from_items.append(ast.TableRef(name=var, alias=alias))
            sources.append((name(alias, "begin_time"), name(alias, "end_time")))
            self._substitute_variable(select, var, alias)
        # 3) temporal routine calls: join TABLE(ps_f(...)) laterally
        replaced = self._lift_temporal_calls(select, ctx, taken, sources)
        if replaced is None:
            return None
        if not sources:
            # no temporal source at all: constant over the whole period
            select.items = _filter_items(select.items, keep_items) + [
                ast.SelectItem(expr=ctx.lo_copy(), alias="begin_time"),
                ast.SelectItem(expr=ctx.hi_copy(), alias="end_time"),
            ]
            return select
        begins = [b for b, _ in sources] + [ctx.lo_copy()]
        ends = [e for _, e in sources] + [ctx.hi_copy()]
        select.items = _filter_items(select.items, keep_items) + [
            ast.SelectItem(
                expr=fold_last_instance([clone(b) for b in begins]),
                alias="begin_time",
            ),
            ast.SelectItem(
                expr=fold_first_instance([clone(e) for e in ends]),
                alias="end_time",
            ),
        ]
        add_condition(
            select,
            and_all(pairwise_overlap(sources + [(ctx.lo_copy(), ctx.hi_copy())])),
        )
        return select

    def _collect_tv_names(self, select: ast.Select, ctx: "_Context") -> list[str]:
        """tv variables referenced as bare names in the select's expressions."""
        found: list[str] = []
        for child in ast.walk(select):
            if (
                isinstance(child, ast.Name)
                and child.qualifier is None
                and child.name.lower() in ctx.tv_vars
                and child.name.lower() not in found
            ):
                found.append(child.name.lower())
        return found

    def _substitute_variable(
        self, node: ast.Node, var: str, alias: str
    ) -> None:
        """Rewrite bare references to tv var ``var`` as ``alias.var``."""

        def rewriter(expr: ast.Expression) -> Optional[ast.Expression]:
            if (
                isinstance(expr, ast.Name)
                and expr.qualifier is None
                and expr.name.lower() == var
            ):
                return name(alias, var)
            return None

        rewrite_expressions(node, rewriter)

    def _lift_temporal_calls(
        self,
        select: ast.Select,
        ctx: "_Context",
        taken: set[str],
        sources: list[tuple[ast.Expression, ast.Expression]],
    ) -> Optional[bool]:
        """Replace temporal function calls with lateral TABLE(...) joins."""
        failure: list[str] = []

        def rewriter(expr: ast.Expression) -> Optional[ast.Expression]:
            if not isinstance(expr, ast.FunctionCall):
                return None
            if not self.catalog.has_routine(expr.name):
                return None
            if not analysis.routine_reads_temporal(
                expr.name, self.catalog, self.registry
            ):
                return None
            target = ctx.rename_map.get(expr.name.lower())
            if target is None:
                failure.append(expr.name)
                return None
            alias = unique_name("taupsm_f", taken)
            call_node = ast.FunctionCall(
                name=target,
                args=[clone(a) for a in expr.args] + [ctx.lo_copy(), ctx.hi_copy()],
            )
            select.from_items.append(
                ast.TableFunctionRef(call=call_node, alias=alias)
            )
            sources.append((name(alias, "begin_time"), name(alias, "end_time")))
            return name(alias, RESULT_COLUMN)

        # rewrite only the select's own items/where (not nested selects)
        for item in select.items:
            if item.expr is not None:
                replacement = _rewrite_shallow(item.expr, rewriter)
                if replacement is not None:
                    item.expr = replacement
        if select.where is not None:
            replacement = _rewrite_shallow(select.where, rewriter)
            if replacement is not None:
                select.where = replacement
        if failure:
            return None
        return True

    # ------------------------------------------------------------------
    # sequenced value expression (for SET / RETURN)
    # ------------------------------------------------------------------

    def seq_value_select(
        self, expr: ast.Expression, ctx: "_Context"
    ) -> Optional[ast.Select]:
        """Build ``SELECT value, begin_time, end_time`` for an expression."""
        inner = expr
        if isinstance(inner, ast.Parenthesized):
            inner = inner.expr
        if isinstance(inner, ast.ScalarSubquery):
            return self.seq_select(clone(inner.select), ctx)
        working = clone(inner)
        carrier = ast.Select(
            items=[ast.SelectItem(expr=working, alias=RESULT_COLUMN)],
            from_items=[],
        )
        return self.seq_select(carrier, ctx)

    # ------------------------------------------------------------------
    # per-statement loop fallback (§VI-C)
    # ------------------------------------------------------------------

    def _statement_loop_fallback(
        self, stmt: ast.Statement, ctx: "_Context"
    ) -> list[ast.Statement]:
        """Wrap one statement in a FOR loop over its constant periods.

        The statement evaluates point-wise at each period's begin; its
        outputs are stamped with the period.
        """
        tables = {
            t
            for t in analysis.reachable_tables(stmt, self.catalog)
            if self.registry.is_temporal(t)
        }
        tables |= ctx.routine_tables
        cp_table = self.require_cp_table(ctx.routine_name, sorted(tables))
        point = name(CP_LOOP_VAR, "begin_time")
        period_end = name(CP_LOOP_VAR, "end_time")
        inner = self._pointwise_statement(stmt, ctx, point, period_end)
        loop_select = ast.Select(
            items=[
                ast.SelectItem(expr=name(None, "begin_time")),
                ast.SelectItem(expr=name(None, "end_time")),
            ],
            from_items=[ast.TableRef(name=cp_table)],
            where=ast.BinaryOp(
                op="AND",
                left=cmp(">=", name(None, "begin_time"), ctx.lo_copy()),
                right=cmp("<", name(None, "begin_time"), ctx.hi_copy()),
            ),
        )
        return [
            ast.ForStatement(
                loop_var=CP_LOOP_VAR, select=loop_select, body=inner
            )
        ]

    def require_cp_table(self, routine_name: str, tables: list[str]) -> str:
        """Register a constant-period helper table and return its name."""
        key = routine_name.lower().strip("<>").replace(".", "_") or "query"
        cp_table = f"taupsm_cp_{key}"
        existing = self.cp_requirements.get(cp_table)
        if existing is not None:
            merged = sorted(set(existing) | set(tables))
            self.cp_requirements[cp_table] = merged
        else:
            self.cp_requirements[cp_table] = sorted(tables)
        return cp_table

    def _pointwise_statement(
        self,
        stmt: ast.Statement,
        ctx: "_Context",
        point: ast.Expression,
        period_end: ast.Expression,
    ) -> list[ast.Statement]:
        """Evaluate one statement at ``point``; stamp outputs with the
        period ``[point, period_end)``."""
        new_stmt = clone(stmt)
        self._pointwise_rewrite(new_stmt, ctx, point)
        if isinstance(new_stmt, ast.SetStatement):
            targets = new_stmt.targets
            if all(t.lower() in ctx.tv_vars for t in targets):
                value = new_stmt.value
                if len(targets) == 1:
                    return [
                        ast.Insert(
                            table=targets[0],
                            values=[[value, clone(point), clone(period_end)]],
                        )
                    ]
                inner = value
                if isinstance(inner, ast.Parenthesized):
                    inner = inner.expr
                if isinstance(inner, ast.ScalarSubquery):
                    inserts: list[ast.Statement] = []
                    for index, target in enumerate(targets):
                        one = clone(inner.select)
                        one.items = [one.items[index]]
                        inserts.append(
                            ast.Insert(
                                table=target,
                                select=_with_period_items(
                                    one, clone(point), clone(period_end)
                                ),
                            )
                        )
                    return inserts
            raise PerStatementInapplicableError(
                f"{ctx.routine_name}: loop fallback for SET with scalar"
                " targets"
            )
        if isinstance(new_stmt, ast.SelectInto):
            inserts = []
            for index, target in enumerate(new_stmt.targets):
                if target.lower() not in ctx.tv_vars:
                    raise PerStatementInapplicableError(
                        f"{ctx.routine_name}: loop fallback SELECT INTO"
                        " scalar target"
                    )
                one = clone(new_stmt.select)
                one.items = [one.items[index]]
                inserts.append(
                    ast.Insert(
                        table=target,
                        select=_with_period_items(one, clone(point), clone(period_end)),
                    )
                )
            return inserts
        if isinstance(new_stmt, ast.Select):
            return [_with_period_items(new_stmt, clone(point), clone(period_end))]
        if isinstance(new_stmt, (ast.IfStatement, ast.CaseStatement,
                                 ast.Insert, ast.Update, ast.Delete,
                                 ast.ForStatement)):
            self._stamp_nested_outputs(new_stmt, ctx, point, period_end)
            return [new_stmt]
        raise PerStatementInapplicableError(
            f"{ctx.routine_name}: loop fallback cannot handle"
            f" {type(stmt).__name__}"
        )

    def _stamp_nested_outputs(
        self,
        stmt: ast.Statement,
        ctx: "_Context",
        point: ast.Expression,
        period_end: ast.Expression,
    ) -> None:
        """Rewrite SET-into-tv-var statements nested under IF/CASE to
        period-stamped inserts."""

        def rewrite_list(statements: list[ast.Statement]) -> list[ast.Statement]:
            out: list[ast.Statement] = []
            for inner in statements:
                if isinstance(inner, ast.SetStatement) and all(
                    t.lower() in ctx.tv_vars for t in inner.targets
                ):
                    out.extend(
                        self._pointwise_insert_for_set(inner, ctx, point, period_end)
                    )
                elif isinstance(inner, ast.IfStatement):
                    inner.branches = [
                        (cond, rewrite_list(body)) for cond, body in inner.branches
                    ]
                    if inner.else_branch is not None:
                        inner.else_branch = rewrite_list(inner.else_branch)
                    out.append(inner)
                elif isinstance(inner, ast.CaseStatement):
                    inner.whens = [
                        (when, rewrite_list(body)) for when, body in inner.whens
                    ]
                    if inner.else_branch is not None:
                        inner.else_branch = rewrite_list(inner.else_branch)
                    out.append(inner)
                else:
                    out.append(inner)
            return out

        if isinstance(stmt, ast.IfStatement):
            stmt.branches = [(cond, rewrite_list(body)) for cond, body in stmt.branches]
            if stmt.else_branch is not None:
                stmt.else_branch = rewrite_list(stmt.else_branch)
        elif isinstance(stmt, ast.CaseStatement):
            stmt.whens = [(when, rewrite_list(body)) for when, body in stmt.whens]
            if stmt.else_branch is not None:
                stmt.else_branch = rewrite_list(stmt.else_branch)
        elif isinstance(stmt, ast.ForStatement):
            stmt.body = rewrite_list(stmt.body)

    def _pointwise_insert_for_set(
        self,
        stmt: ast.SetStatement,
        ctx: "_Context",
        point: ast.Expression,
        period_end: ast.Expression,
    ) -> list[ast.Statement]:
        if len(stmt.targets) != 1:
            raise PerStatementInapplicableError(
                f"{ctx.routine_name}: nested row SET under loop fallback"
            )
        return [
            ast.Insert(
                table=stmt.targets[0],
                values=[[stmt.value, clone(point), clone(period_end)]],
            )
        ]

    def _pointwise_rewrite(
        self, node: ast.Node, ctx: "_Context", point: ast.Expression
    ) -> None:
        """Point-wise evaluation rewrites shared by fallback and cursor
        modes: overlap-at-point predicates, scalarized ps_ calls, and
        point reads of variable tables."""
        # temporal tables and variable tables in FROM clauses; LEFT-join
        # right sides take their condition in the ON clause
        from repro.temporal.transform_util import (
            add_join_condition,
            classify_from_sources,
        )

        def condition_for(table_name: str, alias: str):
            info = self.registry.get(table_name)
            if info is not None:
                return overlap_at_point(
                    alias, point, info.begin_column, info.end_column
                )
            if table_name in ctx.tv_vars or table_name in ctx.tv_tables:
                return overlap_at_point(alias, point)
            return None

        for child in ast.walk(node):
            if isinstance(child, ast.Select):
                where_pairs, join_pairs = classify_from_sources(child)
                conditions = []
                for table_name, alias in where_pairs:
                    condition = condition_for(table_name, alias)
                    if condition is not None:
                        conditions.append(condition)
                add_condition(child, and_all(conditions))
                for join, pairs in join_pairs:
                    for table_name, alias in pairs:
                        condition = condition_for(table_name, alias)
                        if condition is not None:
                            add_join_condition(join, condition)

        # temporal routine calls → scalar subquery over TABLE(ps_f(...))
        def rewriter(expr: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(expr, ast.FunctionCall) and self.catalog.has_routine(
                expr.name
            ):
                target = ctx.rename_map.get(expr.name.lower())
                if target is None:
                    return None
                call_node = ast.FunctionCall(
                    name=target,
                    args=list(expr.args) + [clone(point), _point_plus_one(point)],
                )
                subquery = ast.Select(
                    items=[ast.SelectItem(expr=name("taupsm_f0", RESULT_COLUMN))],
                    from_items=[
                        ast.TableFunctionRef(call=call_node, alias="taupsm_f0")
                    ],
                )
                return ast.ScalarSubquery(select=subquery)
            # bare reads of tv variables become point lookups
            if (
                isinstance(expr, ast.Name)
                and expr.qualifier is None
                and expr.name.lower() in ctx.tv_vars
            ):
                var = expr.name
                subquery = ast.Select(
                    items=[ast.SelectItem(expr=name(None, var))],
                    from_items=[ast.TableRef(name=var)],
                    where=overlap_at_point(var, point),
                )
                return ast.ScalarSubquery(select=subquery)
            return None

        rewrite_expressions(node, rewriter)

    # ------------------------------------------------------------------
    # cursor body mode (§VII-C: per-period auxiliary tables)
    # ------------------------------------------------------------------

    def _transform_cursor_body(
        self, body: ast.Compound, ctx: "_Context", is_function: bool
    ) -> ast.Compound:
        """Evaluate the whole body once per constant period.

        The cursor's query is materialized into an auxiliary temporary
        table for each period (the write traffic the paper blames for
        q7/q7b's PERST cost), the cursor re-pointed at it, everything
        else point-evaluated, and outputs stamped with the period.
        """
        tables = sorted(
            t
            for t in analysis.reachable_tables(body, self.catalog)
            if self.registry.is_temporal(t)
        )
        for routine_name in analysis.reachable_routines(body, self.catalog):
            definition = self.catalog.get_routine(routine_name).definition
            tables = sorted(
                set(tables)
                | {
                    t
                    for t in analysis.referenced_tables(definition)
                    if self.registry.is_temporal(t)
                }
            )
        cp_table = self.require_cp_table(ctx.routine_name, tables)
        point = name(CP_LOOP_VAR, "begin_time")
        period_end = name(CP_LOOP_VAR, "end_time")

        inner_declarations: list[ast.PsmStatement] = []
        aux_statements: list[ast.Statement] = []
        for decl in body.declarations:
            if isinstance(decl, ast.DeclareCursor) and self._select_is_temporal(
                decl.select, set(), set()
            ):
                aux_name = f"taupsm_aux_{decl.name}"
                point_select = clone(decl.select)
                self._pointwise_rewrite(point_select, ctx, point)
                aux_statements.append(
                    ast.CreateTable(
                        name=aux_name, temporary=True, as_select=point_select
                    )
                )
                inner_declarations.append(
                    ast.DeclareCursor(
                        name=decl.name,
                        select=ast.Select(
                            items=[ast.SelectItem(expr=None)],
                            from_items=[ast.TableRef(name=aux_name)],
                        ),
                    )
                )
            else:
                inner_declarations.append(clone(decl))

        inner_statements: list[ast.Statement] = list(aux_statements)
        loop_body = self._pointwise_block(
            body.statements, ctx, point, period_end, is_function
        )
        inner_statements.append(
            ast.LoopStatement(
                body=loop_body + [ast.LeaveStatement(label=ONCE_LABEL)],
                label=ONCE_LABEL,
            )
        )
        per_period = ast.Compound(
            declarations=inner_declarations, statements=inner_statements
        )
        loop_select = ast.Select(
            items=[
                ast.SelectItem(expr=name(None, "begin_time")),
                ast.SelectItem(expr=name(None, "end_time")),
            ],
            from_items=[ast.TableRef(name=cp_table)],
            where=ast.BinaryOp(
                op="AND",
                left=cmp(">=", name(None, "begin_time"), ctx.lo_copy()),
                right=cmp("<", name(None, "begin_time"), ctx.hi_copy()),
            ),
        )
        outer_declarations: list[ast.PsmStatement] = []
        outer_statements: list[ast.Statement] = [
            ast.ForStatement(loop_var=CP_LOOP_VAR, select=loop_select, body=[per_period])
        ]
        if is_function:
            outer_declarations.append(self._return_table_declaration(ctx))
            outer_statements.append(
                ast.ReturnStatement(value=name(None, RETURN_TABLE))
            )
        return ast.Compound(
            declarations=outer_declarations, statements=outer_statements
        )

    def _pointwise_block(
        self,
        statements: list[ast.Statement],
        ctx: "_Context",
        point: ast.Expression,
        period_end: ast.Expression,
        is_function: bool,
    ) -> list[ast.Statement]:
        """Point-transform a statement list inside the per-period loop."""
        out: list[ast.Statement] = []
        for stmt in statements:
            out.extend(
                self._pointwise_block_statement(
                    stmt, ctx, point, period_end, is_function
                )
            )
        return out

    def _pointwise_block_statement(
        self,
        stmt: ast.Statement,
        ctx: "_Context",
        point: ast.Expression,
        period_end: ast.Expression,
        is_function: bool,
    ) -> list[ast.Statement]:
        if isinstance(stmt, ast.ReturnStatement) and not is_function:
            # procedure RETURN ends this period's evaluation
            return [ast.LeaveStatement(label=ONCE_LABEL)]
        if isinstance(stmt, ast.ReturnStatement) and is_function:
            new_value = clone(stmt.value) if stmt.value is not None else lit(Null)
            holder = ast.SetStatement(targets=["__x"], value=new_value)
            self._pointwise_rewrite(holder, ctx, point)
            return [
                ast.Insert(
                    table=RETURN_TABLE,
                    values=[[holder.value, clone(point), clone(period_end)]],
                ),
                ast.LeaveStatement(label=ONCE_LABEL),
            ]
        if isinstance(stmt, ast.Select):
            new_stmt = clone(stmt)
            self._pointwise_rewrite(new_stmt, ctx, point)
            return [_with_period_items(new_stmt, clone(point), clone(period_end))]
        if isinstance(stmt, ast.IfStatement):
            new_stmt = ast.IfStatement(branches=[], else_branch=None)
            for cond, branch_body in stmt.branches:
                new_cond = clone(cond)
                holder = ast.SetStatement(targets=["__x"], value=new_cond)
                self._pointwise_rewrite(holder, ctx, point)
                new_stmt.branches.append(
                    (
                        holder.value,
                        self._pointwise_block(
                            branch_body, ctx, point, period_end, is_function
                        ),
                    )
                )
            if stmt.else_branch is not None:
                new_stmt.else_branch = self._pointwise_block(
                    stmt.else_branch, ctx, point, period_end, is_function
                )
            return [new_stmt]
        if isinstance(stmt, ast.CaseStatement):
            new_whens = []
            for when, branch_body in stmt.whens:
                holder = ast.SetStatement(targets=["__x"], value=clone(when))
                self._pointwise_rewrite(holder, ctx, point)
                new_whens.append(
                    (
                        holder.value,
                        self._pointwise_block(
                            branch_body, ctx, point, period_end, is_function
                        ),
                    )
                )
            operand = None
            if stmt.operand is not None:
                holder = ast.SetStatement(targets=["__x"], value=clone(stmt.operand))
                self._pointwise_rewrite(holder, ctx, point)
                operand = holder.value
            else_branch = None
            if stmt.else_branch is not None:
                else_branch = self._pointwise_block(
                    stmt.else_branch, ctx, point, period_end, is_function
                )
            return [
                ast.CaseStatement(operand=operand, whens=new_whens, else_branch=else_branch)
            ]
        if isinstance(stmt, (ast.WhileStatement, ast.RepeatStatement, ast.LoopStatement)):
            new_stmt = stmt.copy()
            condition = getattr(new_stmt, "condition", None)
            if condition is not None:
                holder = ast.SetStatement(targets=["__x"], value=clone(condition))
                self._pointwise_rewrite(holder, ctx, point)
                new_stmt.condition = holder.value
            until = getattr(new_stmt, "until", None)
            if until is not None:
                holder = ast.SetStatement(targets=["__x"], value=clone(until))
                self._pointwise_rewrite(holder, ctx, point)
                new_stmt.until = holder.value
            new_stmt.body = self._pointwise_block(
                stmt.body, ctx, point, period_end, is_function
            )
            return [new_stmt]
        if isinstance(stmt, ast.ForStatement):
            new_stmt = stmt.copy()
            new_select = clone(stmt.select)
            self._pointwise_rewrite(new_select, ctx, point)
            new_stmt.select = new_select
            new_stmt.body = self._pointwise_block(
                stmt.body, ctx, point, period_end, is_function
            )
            return [new_stmt]
        if isinstance(stmt, ast.Compound):
            return [
                ast.Compound(
                    declarations=[clone(d) for d in stmt.declarations],
                    statements=self._pointwise_block(
                        stmt.statements, ctx, point, period_end, is_function
                    ),
                )
            ]
        # leaf statements: point-rewrite expressions in place
        new_stmt = clone(stmt)
        self._pointwise_rewrite(new_stmt, ctx, point)
        return [new_stmt]


# ---------------------------------------------------------------------------
# context object and helpers
# ---------------------------------------------------------------------------


@dataclass
class _Context:
    """Transformation context for one routine (or the invoking query)."""

    lo: ast.Expression
    hi: ast.Expression
    tv_vars: set[str]
    tv_tables: set[str]
    rename_map: dict[str, str]
    transformer: PerstTransformer
    routine_name: str
    return_type: Optional[SqlType] = None
    returns_row_array: bool = False
    tv_records: set[str] = dataclass_field(default_factory=set)
    routine_tables: set[str] = dataclass_field(default_factory=set)

    def lo_copy(self) -> ast.Expression:
        return clone(self.lo)

    def hi_copy(self) -> ast.Expression:
        return clone(self.hi)

    def narrowed(self, lo: ast.Expression, hi: ast.Expression) -> "_Context":
        return _Context(
            lo=lo,
            hi=hi,
            tv_vars=self.tv_vars,
            tv_tables=self.tv_tables,
            rename_map=self.rename_map,
            transformer=self.transformer,
            routine_name=self.routine_name,
            return_type=self.return_type,
            returns_row_array=self.returns_row_array,
            tv_records=self.tv_records,
            routine_tables=self.routine_tables,
        )


def _point_plus_one(point: ast.Expression) -> ast.Expression:
    """The granule after ``point``: a ps_ call at a single granule is
    invoked with the degenerate period ``[point, point + 1 day)``."""
    return ast.BinaryOp(op="+", left=clone(point), right=lit(1))


def _variable_table_type(var: str, scalar_type: SqlType) -> ast.RowArrayType:
    return ast.RowArrayType(
        fields=(
            ast.RowField(name=var, type=scalar_type),
            ast.RowField(name="begin_time", type=DATE_TYPE),
            ast.RowField(name="end_time", type=DATE_TYPE),
        )
    )


def _filter_items(
    items: list[ast.SelectItem], keep: Optional[list[int]]
) -> list[ast.SelectItem]:
    if keep is None:
        return items
    return [items[i] for i in keep]


def _with_period_items(
    select: ast.Select, begin: ast.Expression, end: ast.Expression
) -> ast.Select:
    select.items = select.items + [
        ast.SelectItem(expr=begin, alias="begin_time"),
        ast.SelectItem(expr=end, alias="end_time"),
    ]
    return select


def _has_aggregate(expr: ast.Expression) -> bool:
    for child in ast.walk(expr):
        if isinstance(child, ast.FunctionCall) and fn.is_aggregate(child.name):
            return True
    return False


def _has_temporal_subquery(
    expr: ast.Expression, transformer: PerstTransformer, ctx: _Context
) -> bool:
    """Subqueries over temporal data need per-period evaluation."""
    for child in ast.walk(expr):
        if isinstance(child, (ast.ScalarSubquery, ast.ExistsPredicate)):
            select = child.select if isinstance(child, ast.ScalarSubquery) else child.subquery
            if transformer._select_is_temporal(select, ctx.tv_vars, ctx.tv_tables, ctx.tv_records):
                return True
        if isinstance(child, ast.InPredicate) and child.subquery is not None:
            if transformer._select_is_temporal(
                child.subquery, ctx.tv_vars, ctx.tv_tables
            ):
                return True
    return False


def _rewrite_shallow(expr, rewriter):
    """Rewrite an expression tree without descending into subqueries."""
    import dataclasses

    def visit(value):
        if isinstance(value, ast.Select):
            return None
        if isinstance(value, ast.Node):
            for field in dataclasses.fields(value):
                current = getattr(value, field.name)
                replacement = visit(current)
                if replacement is not None:
                    setattr(value, field.name, replacement)
            if isinstance(value, ast.Expression):
                return rewriter(value)
            return None
        if isinstance(value, list):
            for index, item in enumerate(value):
                replacement = visit(item)
                if replacement is not None:
                    value[index] = replacement
            return None
        if isinstance(value, tuple):
            items = list(value)
            changed = False
            for index, item in enumerate(items):
                replacement = visit(item)
                if replacement is not None:
                    items[index] = replacement
                    changed = True
            return tuple(items) if changed else None
        return None

    return visit(expr)
