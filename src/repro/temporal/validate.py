"""Correctness validation: commutativity checks (paper §VII-B).

The paper validated its transformations by comparing, for each day, the
timeslice of the sequenced result with the result of the nontemporal
query run on that day's timeslice of the database ("commutativity"
[23]), and by checking that MAX and PERST produce snapshot-equivalent
results.  This module implements both checks on top of the engine.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.sqlengine.values import Date
from repro.temporal.period import Period, coalesce
from repro.temporal.stratum import SlicingStrategy, TemporalResult, TemporalStratum


def reference_sequenced_result(
    stratum: TemporalStratum,
    conventional_sql: str,
    context: Period,
    sample_every: int = 1,
) -> list[tuple[tuple, Period]]:
    """Evaluate the *reference* sequenced semantics granule by granule.

    For each granule in the context, set ``now`` to that granule and run
    the conventional (current-semantics) statement on the timeslice;
    stamp each result row with the granule; finally coalesce.  This is
    the definitional semantics of §III — slow, used only for validation.

    ``sample_every`` > 1 checks a subset of granules (each sampled
    granule yields a one-day period, which coalescing cannot merge, so
    callers must sample the compared result identically).
    """
    saved_now = stratum.db.now
    rows: list[tuple[tuple, Period]] = []
    try:
        for granule in range(context.begin, context.end, sample_every):
            stratum.db.now = Date(granule)
            result = stratum.execute(conventional_sql)
            for row in result.rows:
                rows.append((tuple(row), Period(granule, granule + 1)))
    finally:
        stratum.db.now = saved_now
    return coalesce(rows)


def sample_temporal_result(
    result: TemporalResult, context: Period, sample_every: int
) -> list[tuple[tuple, Period]]:
    """Slice a sequenced result at sampled granules, like the reference."""
    rows: list[tuple[tuple, Period]] = []
    for values, period in result.temporal_rows():
        clipped = period.intersect(context)
        if clipped is None:
            continue
        for granule in range(context.begin, context.end, sample_every):
            if clipped.contains(granule):
                rows.append((values, Period(granule, granule + 1)))
    return coalesce(rows)


def check_commutativity(
    stratum: TemporalStratum,
    sequenced_sql: str,
    conventional_sql: str,
    context: Period,
    strategy: SlicingStrategy = SlicingStrategy.MAX,
    sample_every: int = 1,
) -> tuple[bool, str]:
    """Compare a sequenced evaluation with the granule-wise reference.

    Returns (ok, message).  ``sequenced_sql`` must carry the VALIDTIME
    modifier; ``conventional_sql`` is the unmodified statement.
    """
    result = stratum.execute(sequenced_sql, strategy=strategy)
    if not isinstance(result, TemporalResult):
        return False, f"sequenced execution returned {type(result).__name__}"
    measured = sample_temporal_result(result, context, sample_every)
    reference = reference_sequenced_result(
        stratum, conventional_sql, context, sample_every
    )
    if measured == reference:
        return True, "commutativity holds"
    return False, _diff_message(measured, reference)


def check_strategy_equivalence(
    stratum: TemporalStratum,
    sequenced_sql: str,
    context: Period,
) -> tuple[bool, str]:
    """MAX, PERST, and SEQ-SET must produce snapshot-equivalent results
    (SEQ-SET transparently falls back to MAX on uncovered shapes, so it
    is safe to demand of every statement).

    Handles both SELECT statements (one TemporalResult) and CALL
    statements (a list of stamped result sets, compared pooled).
    """
    max_result = stratum.execute(sequenced_sql, strategy=SlicingStrategy.MAX)
    left = _pooled_coalesced(max_result, context)
    for strategy in (SlicingStrategy.PERST, SlicingStrategy.SEQSET):
        other = stratum.execute(sequenced_sql, strategy=strategy)
        right = _pooled_coalesced(other, context)
        if left != right:
            return False, f"{strategy.value}: {_diff_message(left, right)}"
    return True, "strategies agree"


def check_call_commutativity(
    stratum: TemporalStratum,
    sequenced_sql: str,
    conventional_sql: str,
    context: Period,
    strategy: SlicingStrategy = SlicingStrategy.MAX,
    sample_every: int = 1,
) -> tuple[bool, str]:
    """Commutativity for sequenced CALL statements.

    Reference: run the conventional CALL at each sampled granule and pool
    the rows of every returned result set, stamped with the granule.
    """
    results = stratum.execute(sequenced_sql, strategy=strategy)
    if not isinstance(results, list):
        return False, f"sequenced CALL returned {type(results).__name__}"
    pooled: list[tuple[tuple, Period]] = []
    for result in results:
        pooled.extend(
            sample_temporal_result(result, context, sample_every)
        )
    measured = coalesce(pooled)
    saved_now = stratum.db.now
    reference_rows: list[tuple[tuple, Period]] = []
    try:
        for granule in range(context.begin, context.end, sample_every):
            stratum.db.now = Date(granule)
            for result in stratum.execute(conventional_sql) or []:
                for row in result.rows:
                    reference_rows.append(
                        (tuple(row), Period(granule, granule + 1))
                    )
    finally:
        stratum.db.now = saved_now
    reference = coalesce(reference_rows)
    if measured == reference:
        return True, "commutativity holds"
    return False, _diff_message(measured, reference)


def _pooled_coalesced(result, context: Period) -> list[tuple[tuple, Period]]:
    if isinstance(result, list):
        rows: list[tuple[tuple, Period]] = []
        for one in result:
            for values, period in one.temporal_rows():
                clipped = period.intersect(context)
                if clipped is not None:
                    rows.append((values, clipped))
        return coalesce(rows)
    return _clip_coalesced(result, context)


def _clip_coalesced(
    result: TemporalResult, context: Period
) -> list[tuple[tuple, Period]]:
    rows = []
    for values, period in result.temporal_rows():
        clipped = period.intersect(context)
        if clipped is not None:
            rows.append((values, clipped))
    return coalesce(rows)


def _diff_message(
    left: list[tuple[tuple, Period]], right: list[tuple[tuple, Period]]
) -> str:
    left_set = set(left)
    right_set = set(right)
    only_left = sorted(left_set - right_set, key=repr)[:5]
    only_right = sorted(right_set - left_set, key=repr)[:5]
    return (
        f"results differ: {len(only_left)}+ only in first"
        f" (e.g. {only_left}), {len(only_right)}+ only in second"
        f" (e.g. {only_right})"
    )
