"""Current semantics: ``cur⟦Q⟧`` (paper §IV-C, Figures 5 and 6).

A current query on a temporal database behaves exactly like the original
query on the current timeslice.  The transformation adds
``t.begin_time <= CURRENT_DATE AND CURRENT_DATE < t.end_time`` to every
WHERE clause whose FROM mentions a temporal table, and clones every
reachable temporal-reading routine with a ``curr_`` prefix transformed
the same way.  This is what guarantees temporal upward compatibility:
legacy statements keep their old meaning after tables gain valid time.

Current *modifications* follow standard TUC semantics: INSERT makes rows
valid ``[now, forever)``; DELETE terminates currently-valid rows at
``now``; UPDATE terminates the old row and inserts the changed row valid
``[now, forever)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.values import Date
from repro.temporal import analysis
from repro.temporal.pointwise import transform_statement_at_point
from repro.temporal.schema import TemporalRegistry
from repro.temporal.transform_util import call, clone, overlap_at_point

CURRENT_PREFIX = "curr_"


@dataclass
class CurrentTransformResult:
    """The transformed statement plus the routine clones it requires."""

    statement: ast.Statement
    routines: list[Union[ast.CreateFunction, ast.CreateProcedure]] = field(
        default_factory=list
    )

    def to_sql(self) -> str:
        parts = [r.to_sql() + ";" for r in self.routines]
        parts.append(self.statement.to_sql() + ";")
        return "\n\n".join(parts)


def transform_current(
    stmt: ast.Statement,
    catalog: Catalog,
    registry: TemporalRegistry,
    prefix: str = CURRENT_PREFIX,
    point: Optional[ast.Expression] = None,
) -> CurrentTransformResult:
    """Apply ``cur⟦·⟧`` to a statement and its reachable routines.

    ``point`` defaults to CURRENT_DATE; the stratum passes a literal
    transaction clock when applying the same transformation along the
    transaction-time dimension (including time travel).  ``prefix``
    keeps per-dimension routine clones distinct.
    """
    rename_map = _current_rename_map(stmt, catalog, registry, prefix)
    at = point if point is not None else _now()
    routines = []
    for original_name, new_name in rename_map.items():
        definition = clone(catalog.get_routine(original_name).definition)
        definition.name = new_name
        transform_statement_at_point(
            definition.body, at, registry, rename_map, extra_args=None
        )
        routines.append(definition)
    new_stmt = clone(stmt)
    new_stmt.modifier = None
    if isinstance(new_stmt, (ast.Insert, ast.Update, ast.Delete)) and registry.is_temporal(
        new_stmt.table
    ):
        new_stmt = _transform_current_modification(new_stmt, catalog, registry, rename_map)
    else:
        transform_statement_at_point(
            new_stmt, at, registry, rename_map, extra_args=None
        )
    return CurrentTransformResult(statement=new_stmt, routines=routines)


def _now() -> ast.Expression:
    return call("CURRENT_DATE")


def _current_rename_map(
    stmt: ast.Statement,
    catalog: Catalog,
    registry: TemporalRegistry,
    prefix: str = CURRENT_PREFIX,
) -> dict[str, str]:
    """original → curr_ names for reachable temporal-reading routines.

    Routines that never touch temporal data are left alone (the paper's
    compile-time reachability optimization, §V-C).
    """
    mapping: dict[str, str] = {}
    for name in analysis.reachable_routines(stmt, catalog):
        if analysis.routine_reads_temporal(name, catalog, registry):
            mapping[name] = prefix + name
    return mapping


def _transform_current_modification(
    stmt: Union[ast.Insert, ast.Update, ast.Delete],
    catalog: Catalog,
    registry: TemporalRegistry,
    rename_map: dict[str, str],
) -> ast.Statement:
    """TUC semantics for modifications of a temporal table."""
    info = registry.get(stmt.table)
    assert info is not None
    now = _now()
    forever = ast.Literal(value=_forever_date())
    if isinstance(stmt, ast.Insert):
        return _current_insert(stmt, info, now, forever, catalog, registry, rename_map)
    if isinstance(stmt, ast.Delete):
        # terminate currently-valid matching rows at now
        new_stmt = ast.Update(
            table=stmt.table,
            alias=stmt.alias,
            assignments=[(info.end_column, clone(now))],
            where=stmt.where,
        )
        from repro.temporal.pointwise import add_point_conditions
        from repro.temporal.transform_util import rename_routine_calls

        add_point_conditions(new_stmt, now, registry)  # subqueries in WHERE
        rename_routine_calls(new_stmt, rename_map)
        _add_dml_current_condition(new_stmt, stmt.alias or stmt.table, info, now)
        return new_stmt
    # UPDATE: modelled as terminate-then-reinsert; expressed as a compound
    # of two statements the stratum executes atomically.
    raise NotImplementedError(
        "current UPDATE of a temporal table is executed by the stratum"
        " (see TemporalStratum._execute_current_update)"
    )


def _current_insert(
    stmt: ast.Insert,
    info,
    now: ast.Expression,
    forever: ast.Expression,
    catalog: Catalog,
    registry: TemporalRegistry,
    rename_map: dict[str, str],
) -> ast.Insert:
    new_stmt = clone(stmt)
    new_stmt.modifier = None
    columns = new_stmt.columns
    if columns is None:
        raise NotImplementedError(
            "current INSERT into a temporal table requires an explicit"
            " column list (timestamps are supplied by the stratum)"
        )
    new_stmt.columns = columns + [info.begin_column, info.end_column]
    if new_stmt.values is not None:
        new_stmt.values = [
            row + [clone(now), clone(forever)] for row in new_stmt.values
        ]
    else:
        select = new_stmt.select
        select.items = select.items + [
            ast.SelectItem(expr=clone(now), alias=info.begin_column),
            ast.SelectItem(expr=clone(forever), alias=info.end_column),
        ]
        transform_statement_at_point(select, now, registry, rename_map)
    return new_stmt


def _add_dml_current_condition(
    stmt: Union[ast.Update, ast.Delete], alias: str, info, now: ast.Expression
) -> None:
    condition = overlap_at_point(alias, now, info.begin_column, info.end_column)
    if stmt.where is None:
        stmt.where = condition
    else:
        stmt.where = ast.BinaryOp(op="AND", left=stmt.where, right=condition)


def _forever_date():
    return Date(Date.MAX_ORDINAL)
