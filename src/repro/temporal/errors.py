"""Errors raised by the temporal stratum."""

from __future__ import annotations

from repro.sqlengine.errors import SqlError


class TemporalError(SqlError):
    """Base class for stratum errors."""


class SequencedContextError(TemporalError):
    """A temporal modifier appeared inside a routine invoked from a
    sequenced or current context.

    Per the paper (§IV-A), a routine containing an explicit temporal
    modifier may only be invoked from a *nonsequenced* context, where the
    user manages validity periods manually.
    """


class PerStatementInapplicableError(TemporalError):
    """Per-statement slicing cannot transform this routine.

    The canonical case is the paper's q17b: a FETCH of an outer cursor
    placed after per-period loops over temporal routine results inside
    the same loop body (§VII-A2).  Maximally-fragmented slicing always
    applies; callers should fall back to it.
    """
