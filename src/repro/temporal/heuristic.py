"""The paper's §VII-F strategy-selection heuristic.

    "a query optimizer should choose [per-statement slicing] unless
     (a) the transformation rules don't work for PERST, …
     (b) cursors are required on a per-period basis by PERST *and* the
         data set is large, …
     (c) the query is on a small database *and* has a short temporal
         context."

The thresholds below are calibration constants for this engine; the
paper's Section VIII notes a proper cost model is future work, and
:func:`estimate_costs` sketches one (it predicts relative cost from the
number of constant periods and expected routine invocations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.engine import Database
from repro.temporal import analysis
from repro.temporal.errors import PerStatementInapplicableError, TemporalError
from repro.temporal.period import Period
from repro.temporal.schema import TemporalRegistry

# Calibration constants (rows of temporal data / days of context).
# Calibrated against this engine's Figure-12/13 sweeps: the MAX/PERST
# crossover sits near one week here (the paper's DB2 saw it between one
# week and one month), and every τPSM size fits "small" for rule (c)
# while rule (b) needs only the LARGE datasets.
SMALL_DATABASE_ROWS = 20_000
LARGE_DATABASE_ROWS = 8_000
SHORT_CONTEXT_DAYS = 7


@dataclass(frozen=True)
class StrategyChoice:
    """The chosen strategy and the §VII-F rule that fired."""

    strategy: "SlicingStrategy"  # noqa: F821 - resolved lazily
    rule: str
    reason: str


def temporal_row_count(
    stmt: ast.Statement, db: Database, registry: TemporalRegistry
) -> int:
    """Total rows across the temporal tables the statement reaches."""
    names = analysis.reachable_temporal_tables(stmt, db.catalog, registry)
    return sum(len(db.catalog.get_table(name)) for name in names)


def uses_per_period_cursors(
    stmt: ast.Statement, db: Database, registry: TemporalRegistry
) -> bool:
    """Rule (b) trigger: a reachable routine drives a cursor over
    temporal data, which PERST evaluates per constant period."""
    for name in analysis.reachable_routines(stmt, db.catalog):
        definition = db.catalog.get_routine(name).definition
        for child in ast.walk(definition.body):
            if isinstance(child, ast.DeclareCursor):
                tables = analysis.referenced_tables(child.select)
                if any(registry.is_temporal(t) for t in tables):
                    return True
    return False


def perst_applicable(
    stmt: ast.Statement, db: Database, registry: TemporalRegistry
) -> tuple[bool, str]:
    """Rule (a): can PERST transform this statement at all?"""
    from repro.temporal.perst_slicing import PerstTransformer

    try:
        PerstTransformer(db.catalog, registry).transform(stmt)
    except (PerStatementInapplicableError, NotImplementedError, TemporalError) as exc:
        return False, str(exc)
    return True, ""


def choose_strategy(
    stmt: ast.Statement,
    db: Database,
    registry: TemporalRegistry,
    context: Period,
    data_rows: Optional[int] = None,
    other_registry: Optional[TemporalRegistry] = None,
) -> StrategyChoice:
    """Apply the §VII-F heuristic (extended with the SEQ-SET rule) and
    bump the ``heuristic.choice.<strategy>`` counter for the winner."""
    choice = _choose_strategy(
        stmt, db, registry, context, data_rows, other_registry
    )
    db.obs.inc(f"heuristic.choice.{choice.strategy.value}")
    return choice


def _choose_strategy(
    stmt: ast.Statement,
    db: Database,
    registry: TemporalRegistry,
    context: Period,
    data_rows: Optional[int],
    other_registry: Optional[TemporalRegistry],
) -> StrategyChoice:
    from repro.temporal.seqset import seqset_applicable
    from repro.temporal.stratum import SlicingStrategy

    # Rule (s), ahead of the paper's rules: a routine-free covered shape
    # never needs the per-period loop at all — one set-oriented pass
    # beats both MAX and PERST, with the cost model recording by how
    # much (measured unit costs when the registry has samples).
    covered, _why = seqset_applicable(
        stmt, db, registry, other_registry=other_registry
    )
    if covered:
        estimate = estimate_costs(
            stmt, db, registry, context, obs=db.obs, include_seqset=True
        )
        return StrategyChoice(
            SlicingStrategy.SEQSET,
            "s",
            "routine-free statement covered by the set-oriented plan"
            f" (cost model [{estimate.mode}]:"
            f" seqset={estimate.seqset_cost:.4f}"
            f" max={estimate.max_cost:.4f}"
            f" perst={estimate.perst_cost:.4f})",
        )
    applicable, why = perst_applicable(stmt, db, registry)
    if not applicable:
        return StrategyChoice(
            SlicingStrategy.MAX, "a", f"PERST inapplicable: {why}"
        )
    rows = data_rows if data_rows is not None else temporal_row_count(
        stmt, db, registry
    )
    if rows >= LARGE_DATABASE_ROWS and uses_per_period_cursors(stmt, db, registry):
        return StrategyChoice(
            SlicingStrategy.MAX,
            "b",
            f"per-period cursors on a large data set ({rows} rows)",
        )
    if rows <= SMALL_DATABASE_ROWS and context.duration <= SHORT_CONTEXT_DAYS:
        return StrategyChoice(
            SlicingStrategy.MAX,
            "c",
            f"small database ({rows} rows) and short context"
            f" ({context.duration} days)",
        )
    return StrategyChoice(
        SlicingStrategy.PERST, "default", "PERST is faster in ~70% of cases"
    )


@dataclass(frozen=True)
class CostEstimate:
    """A coarse relative cost model (paper §VIII future work).

    ``mode`` records which calibration produced the numbers:
    ``"static"`` (the hand-calibrated constants below) or ``"measured"``
    (per-slice / per-row timings observed by the metrics registry).

    ``seqset_cost`` is filled only when the caller asked for it (the
    statement is inside the SEQ-SET fragment); ``None`` otherwise.
    """

    max_cost: float
    perst_cost: float
    mode: str = "static"
    seqset_cost: Optional[float] = None

    @property
    def prefers_perst(self) -> bool:
        return self.perst_cost < self.max_cost


# Static per-unit costs (arbitrary units; only ratios matter).
STATIC_PER_INVOCATION_ROW = 0.01
STATIC_PERIOD_OVERHEAD = 0.05
STATIC_PER_ROW = 0.02
STATIC_CURSOR_PER_PERIOD_ROW = 0.002
# SEQ-SET reads each row once through vectorized kernels (no per-row
# interpreter work) and pays a small per-period emission step.
STATIC_SEQSET_PER_ROW = 0.004
STATIC_SEQSET_PERIOD_OVERHEAD = 0.005
# Arbitration bands between the two calibrations.  The timer means
# aggregate over *all* statements a database has executed, not just the
# one being costed, so a measured gap can be an artifact of workload
# mix (on the τPSM workload a predicted ~1.9× gap from cross-query
# means corresponded to a measured-wall-clock ratio of 1.08).  The
# rule: a measurement within MEASURED_TIE_BAND is inconclusive and the
# static numbers stand; a conclusive measurement wins unless it
# *contradicts* a static comparison that is itself confident (ratio of
# at least STATIC_CONFIDENT_BAND) — a confident prior resists a noisy
# contradiction, an unconfident one defers to measurement.
MEASURED_TIE_BAND = 1.5
STATIC_CONFIDENT_BAND = 1.5


def estimate_costs(
    stmt: ast.Statement,
    db: Database,
    registry: TemporalRegistry,
    context: Period,
    obs: Optional["MetricsRegistry"] = None,  # noqa: F821 - lazy type
    mode: str = "auto",
    include_seqset: bool = False,
) -> CostEstimate:
    """Predict relative MAX/PERST cost from data statistics.

    MAX's dominant term is (#constant periods × per-invocation work);
    PERST's is one pass over the data plus, when per-period cursors are
    involved, (#constant periods × auxiliary-table traffic).

    ``mode`` selects the calibration:

    * ``"static"`` — the hand-calibrated constants above.
    * ``"measured"`` / ``"auto"`` — replace the constants with this
      engine's observed per-slice (``stratum.max.slice_seconds``) and
      per-row (``stratum.perst.row_seconds``) means from ``obs``.  The
      *structure* of the model is unchanged; only the unit costs come
      from measurement.  Falls back to the static constants when the
      registry has no samples yet, when the measured costs land inside
      :data:`MEASURED_TIE_BAND` of each other, or when a conclusive
      measurement contradicts a static comparison that is confident by
      :data:`STATIC_CONFIDENT_BAND` (the means aggregate the whole
      workload, so a contradiction of a confident prior is more likely
      workload-mix artifact than signal).
    """
    from repro.temporal.constant_periods import compute_constant_periods

    tables = analysis.reachable_temporal_tables(stmt, db.catalog, registry)
    periods = len(compute_constant_periods(db, tables, registry, context))
    rows = temporal_row_count(stmt, db, registry)
    cursors = uses_per_period_cursors(stmt, db, registry)
    per_invocation = max(rows, 1) * STATIC_PER_INVOCATION_ROW
    max_cost = periods * per_invocation + periods * STATIC_PERIOD_OVERHEAD
    perst_cost = max(rows, 1) * STATIC_PER_ROW
    if cursors:
        perst_cost += periods * max(rows, 1) * STATIC_CURSOR_PER_PERIOD_ROW
    static_seqset = (
        max(rows, 1) * STATIC_SEQSET_PER_ROW
        + periods * STATIC_SEQSET_PERIOD_OVERHEAD
        if include_seqset
        else None
    )

    def seqset_term(chosen_mode: str) -> Optional[float]:
        """SEQ-SET's unit cost: measured per-row mean when the chosen
        calibration is measured and its timer has samples, else static."""
        if static_seqset is None:
            return None
        if chosen_mode == "measured" and obs is not None:
            seqset_mean = obs.mean("stratum.seqset.row_seconds")
            if seqset_mean is not None and seqset_mean > 0.0:
                return max(rows, 1) * seqset_mean
        return static_seqset

    if mode == "static" or obs is None:
        return CostEstimate(
            max_cost=max_cost, perst_cost=perst_cost,
            seqset_cost=seqset_term("static"),
        )
    slice_mean = obs.mean("stratum.max.slice_seconds")
    row_mean = obs.mean("stratum.perst.row_seconds")
    if slice_mean is None or row_mean is None or row_mean <= 0.0:
        # no observations yet for one side: stay with the static model
        return CostEstimate(
            max_cost=max_cost, perst_cost=perst_cost,
            seqset_cost=seqset_term("static"),
        )
    measured_max = periods * slice_mean
    measured_perst = max(rows, 1) * row_mean
    if cursors:
        # keep the static model's cursor-penalty *ratio*, expressed in
        # the measured per-row unit
        penalty_ratio = STATIC_CURSOR_PER_PERIOD_ROW / STATIC_PER_ROW
        measured_perst += periods * max(rows, 1) * row_mean * penalty_ratio
    smaller = min(measured_max, measured_perst)
    if smaller <= 0.0 or max(measured_max, measured_perst) <= smaller * MEASURED_TIE_BAND:
        # inconclusive: keep the static numbers (and their decision)
        return CostEstimate(
            max_cost=max_cost, perst_cost=perst_cost,
            seqset_cost=seqset_term("static"),
        )
    static_confident = max(max_cost, perst_cost) >= (
        min(max_cost, perst_cost) * STATIC_CONFIDENT_BAND
    )
    decisions_disagree = (measured_perst < measured_max) != (perst_cost < max_cost)
    if static_confident and decisions_disagree:
        return CostEstimate(
            max_cost=max_cost, perst_cost=perst_cost,
            seqset_cost=seqset_term("static"),
        )
    return CostEstimate(
        max_cost=measured_max, perst_cost=measured_perst, mode="measured",
        seqset_cost=seqset_term("measured"),
    )
