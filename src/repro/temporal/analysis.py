"""Compile-time analysis over SQL/PSM ASTs.

The stratum needs to know, *before* transforming (paper §V-A, §VI-C,
§VII-A2):

* which tables a statement references, directly or through the routine
  call graph (:func:`reachable_tables`);
* whether a statement or routine (transitively) touches temporal tables
  (:func:`reads_temporal`);
* whether a routine body contains an explicit temporal modifier, which
  restricts it to nonsequenced contexts (:func:`has_inner_modifier`);
* whether per-statement slicing applies (:func:`check_perst_applicable`
  — the paper's q17b non-nested-FETCH restriction).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog
from repro.temporal.errors import PerStatementInapplicableError
from repro.temporal.schema import TemporalRegistry

# ---------------------------------------------------------------------------
# table and routine references
# ---------------------------------------------------------------------------


def referenced_tables(node: ast.Node) -> set[str]:
    """Lower-cased names of tables referenced directly by this AST.

    Includes FROM-clause tables and DML targets; does *not* follow
    routine calls (see :func:`reachable_tables`).  Names that turn out to
    be PSM variables simply won't match any catalog or registry entry.
    """
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.TableRef):
            names.add(child.name.lower())
        elif isinstance(child, (ast.Insert, ast.Update, ast.Delete)):
            names.add(child.table.lower())
    return names


def called_routines(node: ast.Node, catalog: Catalog) -> set[str]:
    """Lower-cased names of catalog routines invoked anywhere in ``node``."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.FunctionCall) and catalog.has_routine(child.name):
            names.add(child.name.lower())
        elif isinstance(child, ast.CallStatement) and catalog.has_routine(child.name):
            names.add(child.name.lower())
    return names


def reachable_routines(node: ast.Node, catalog: Catalog) -> list[str]:
    """Transitive closure of routine calls starting from ``node``.

    Returns names in discovery (BFS) order, each exactly once.
    """
    seen: list[str] = []
    frontier = sorted(called_routines(node, catalog))
    while frontier:
        name = frontier.pop(0)
        if name in seen:
            continue
        seen.append(name)
        body = catalog.get_routine(name).definition
        for callee in sorted(called_routines(body, catalog)):
            if callee not in seen:
                frontier.append(callee)
    return seen


def reachable_tables(node: ast.Node, catalog: Catalog) -> set[str]:
    """Tables referenced by ``node`` or by any routine it (transitively)
    invokes — the input to constant-period computation (§V-A)."""
    names = referenced_tables(node)
    for routine_name in reachable_routines(node, catalog):
        names |= referenced_tables(catalog.get_routine(routine_name).definition)
    return names


def reachable_temporal_tables(
    node: ast.Node, catalog: Catalog, registry: TemporalRegistry
) -> list[str]:
    """Sorted temporal-table names reachable from ``node``."""
    return sorted(
        name for name in reachable_tables(node, catalog) if registry.is_temporal(name)
    )


def reads_temporal(
    node: ast.Node, catalog: Catalog, registry: TemporalRegistry
) -> bool:
    """True if the statement touches temporal data, directly or indirectly."""
    return bool(reachable_temporal_tables(node, catalog, registry))


def routine_reads_temporal(
    name: str, catalog: Catalog, registry: TemporalRegistry
) -> bool:
    """True if the named routine (transitively) touches temporal tables."""
    return reads_temporal(catalog.get_routine(name).definition, catalog, registry)


# ---------------------------------------------------------------------------
# inner temporal modifiers (§IV-A)
# ---------------------------------------------------------------------------


def has_inner_modifier(node: ast.Node) -> bool:
    """True if any statement beneath ``node`` carries a temporal modifier."""
    for child in ast.walk(node):
        if child is not node and getattr(child, "modifier", None) is not None:
            return True
    return False


def routines_with_inner_modifiers(
    node: ast.Node, catalog: Catalog
) -> list[str]:
    """Reachable routines whose bodies contain explicit temporal modifiers."""
    flagged = []
    for name in reachable_routines(node, catalog):
        if has_inner_modifier(catalog.get_routine(name).definition):
            flagged.append(name)
    return flagged


# ---------------------------------------------------------------------------
# PERST applicability (§VII-A2: the q17b restriction)
# ---------------------------------------------------------------------------


def check_perst_applicable(
    stmt: ast.Statement, catalog: Catalog, registry: TemporalRegistry
) -> None:
    """Raise :class:`PerStatementInapplicableError` for the q17b pattern.

    Per-statement slicing turns every temporal routine result into a
    per-period loop that encloses the *remainder* of the surrounding loop
    body.  A FETCH of a cursor declared *outside* the loop that appears
    lexically *after* such a temporal result cannot be hoisted into the
    per-period loops (it would fetch once per period instead of once per
    outer iteration) — the paper's "non-nested FETCH".
    """
    checker = _PerstChecker(catalog, registry)
    checker.check_statement(stmt, outer_cursors=set())
    for name in reachable_routines(stmt, catalog):
        routine = catalog.get_routine(name)
        if routine_reads_temporal(name, catalog, registry):
            checker.check_statement(routine.definition.body, outer_cursors=set())


class _PerstChecker:
    def __init__(self, catalog: Catalog, registry: TemporalRegistry) -> None:
        self.catalog = catalog
        self.registry = registry

    def _is_temporal_producer(self, stmt: ast.Statement) -> bool:
        """Does this statement yield a time-varying result under PERST?"""
        for name in called_routines(stmt, self.catalog):
            if routine_reads_temporal(name, self.catalog, self.registry):
                return True
        for table in referenced_tables(stmt):
            if self.registry.is_temporal(table):
                return True
        return False

    def check_statement(
        self, stmt: ast.Statement, outer_cursors: set[str]
    ) -> None:
        if isinstance(stmt, ast.Compound):
            cursors = set(outer_cursors)
            for decl in stmt.declarations:
                if isinstance(decl, ast.DeclareCursor):
                    cursors.add(decl.name.lower())
            for inner in stmt.statements:
                self.check_statement(inner, cursors)
            return
        if isinstance(stmt, (ast.WhileStatement, ast.RepeatStatement, ast.LoopStatement)):
            self._check_loop_body(stmt.body, outer_cursors)
            for inner in stmt.body:
                self.check_statement(inner, outer_cursors)
            return
        if isinstance(stmt, ast.ForStatement):
            for inner in stmt.body:
                self.check_statement(inner, outer_cursors)
            return
        if isinstance(stmt, ast.IfStatement):
            for _, body in stmt.branches:
                for inner in body:
                    self.check_statement(inner, outer_cursors)
            for inner in stmt.else_branch or []:
                self.check_statement(inner, outer_cursors)
            return
        if isinstance(stmt, ast.CaseStatement):
            for _, body in stmt.whens:
                for inner in body:
                    self.check_statement(inner, outer_cursors)
            for inner in stmt.else_branch or []:
                self.check_statement(inner, outer_cursors)
            return

    def _check_loop_body(
        self, body: list[ast.Statement], outer_cursors: set[str]
    ) -> None:
        """Within one loop body: flag FETCH-of-outer-cursor *after* a
        temporal producer at the same lexical level."""
        seen_temporal_producer = False
        for inner in body:
            if (
                isinstance(inner, ast.FetchCursor)
                and inner.name.lower() in outer_cursors
                and seen_temporal_producer
            ):
                raise PerStatementInapplicableError(
                    "per-statement slicing cannot transform a FETCH of outer"
                    f" cursor {inner.name!r} placed after a time-varying"
                    " result in the same loop body (non-nested FETCH, cf."
                    " q17b)"
                )
            if self._is_temporal_producer(inner):
                seen_temporal_producer = True
