"""Transaction-time support (paper §III).

    "In this paper, we focus on valid time, but everything also applies
     to transaction time."

A transaction-time table records *when the database believed* each row:
every row carries ``[tt_start, tt_stop)``, maintained by the system —
users never write these columns.  The stratum intercepts modifications:

* INSERT stamps new rows ``[clock, forever)``;
* DELETE closes the current version (``tt_stop = clock``);
* UPDATE closes the current version and inserts the changed row,
  preserving everything ever recorded.

Queries compose with the existing machinery because the transformations
are dimension-agnostic: a transaction-time registry exposes the tt
columns, so ``TRANSACTIONTIME [t1, t2] Q`` runs through the very same
MAX/PERST pipelines, and statements without a transaction modifier get
current-transaction-time predicates (rows believed at the clock).
Setting the clock into the past gives time travel ("as of" queries).
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.engine import Database
from repro.sqlengine.errors import CatalogError
from repro.sqlengine.executor import Binding, Env
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import SqlType
from repro.sqlengine.values import Date, truth
from repro.temporal.errors import TemporalError
from repro.temporal.schema import (
    TT_START_COLUMN,
    TT_STOP_COLUMN,
    TemporalRegistry,
    TemporalTableInfo,
)

FOREVER = Date(Date.MAX_ORDINAL)


def transaction_info(table_name: str) -> TemporalTableInfo:
    """The registry entry describing a table's transaction-time columns."""
    return TemporalTableInfo(
        name=table_name,
        begin_column=TT_START_COLUMN,
        end_column=TT_STOP_COLUMN,
    )


def add_transactiontime(
    db: Database, registry: TemporalRegistry, table_name: str, clock: Date
) -> TemporalTableInfo:
    """``ALTER TABLE t ADD TRANSACTIONTIME``.

    Adds the tt columns if missing; existing rows are recorded as
    believed since ``clock`` (the migration transaction).
    """
    table = db.catalog.get_table(table_name)
    info = transaction_info(table.name)
    columns_added = False
    for column_name, default in (
        (info.begin_column, clock),
        (info.end_column, FOREVER),
    ):
        if not table.has_column(column_name):
            table.add_column(Column(column_name, SqlType("DATE")), default)
            columns_added = True
        elif not table.column_type(column_name).is_date:
            raise CatalogError(
                f"transaction-time column {table_name}.{column_name}"
                " must be DATE"
            )
    if columns_added:
        # the table's shape changed out-of-band: compiled plans bound
        # against the old column layout must not be reused
        db.catalog.note_schema_change()
    registry.add(info, table)
    return info


class TransactionTimeDml:
    """System-maintained modifications of transaction-time tables.

    The key difference from valid-time current modifications: users may
    not supply or change tt columns, and nothing is ever physically
    deleted — transaction time is append-only.
    """

    def __init__(self, db: Database, registry: TemporalRegistry) -> None:
        self.db = db
        self.registry = registry

    def _table_and_info(self, name: str) -> tuple[Table, TemporalTableInfo]:
        info = self.registry.get(name)
        assert info is not None
        return self.db.catalog.get_table(name), info

    def _reject_explicit_tt_columns(
        self, stmt: Union[ast.Insert, ast.Update], info: TemporalTableInfo
    ) -> None:
        forbidden = {info.begin_column.lower(), info.end_column.lower()}
        if isinstance(stmt, ast.Insert) and stmt.columns is not None:
            if forbidden & {c.lower() for c in stmt.columns}:
                raise TemporalError(
                    "transaction-time columns are system-maintained"
                )
        if isinstance(stmt, ast.Update):
            if forbidden & {c.lower() for c, _ in stmt.assignments}:
                raise TemporalError(
                    "transaction-time columns are system-maintained"
                )

    def execute_insert(self, stmt: ast.Insert, clock: Date) -> int:
        table, info = self._table_and_info(stmt.table)
        self._reject_explicit_tt_columns(stmt, info)
        new_stmt = ast.Insert(
            table=stmt.table,
            columns=None,
            values=None,
            select=stmt.select,
        )
        value_columns = [
            c for c in table.column_names
            if c.lower() not in (info.begin_column.lower(), info.end_column.lower())
        ]
        columns = stmt.columns if stmt.columns is not None else value_columns
        new_stmt.columns = list(columns) + [info.begin_column, info.end_column]
        stamp = [ast.Literal(value=clock), ast.Literal(value=FOREVER)]
        if stmt.values is not None:
            new_stmt.values = [list(row) + stamp for row in stmt.values]
        else:
            select = stmt.select.copy()
            select.items = select.items + [
                ast.SelectItem(expr=ast.Literal(value=clock)),
                ast.SelectItem(expr=ast.Literal(value=FOREVER)),
            ]
            new_stmt.select = select
        return self.db.executor.execute(new_stmt)

    def execute_delete(self, stmt: ast.Delete, clock: Date) -> int:
        """Logical deletion: close the believed-now versions."""
        table, info = self._table_and_info(stmt.table)
        self.db.txn.claim_write(table)
        return self._close_matching(table, info, stmt.where, stmt.alias, clock)

    def execute_update(self, stmt: ast.Update, clock: Date) -> int:
        """Close the believed-now versions and record the new belief."""
        table, info = self._table_and_info(stmt.table)
        # claim before the scan: read-then-mutate must target the live table
        self.db.txn.claim_write(table)
        self._reject_explicit_tt_columns(stmt, info)
        alias = stmt.alias or stmt.table
        colmap = {c.lower(): i for i, c in enumerate(table.column_names)}
        start_index = table.column_index(info.begin_column)
        stop_index = table.column_index(info.end_column)
        executor = self.db.executor
        env = Env()
        matches: list[list[Any]] = []
        for row in table.rows:
            if row[stop_index] != FOREVER:
                continue
            env.bindings[alias.lower()] = Binding(colmap, row)
            if stmt.where is None or truth(executor.evaluate(stmt.where, env)):
                matches.append(row)
        for row in matches:
            env.bindings[alias.lower()] = Binding(colmap, row)
            new_row = list(row)
            for column, expr in stmt.assignments:
                new_row[table.column_index(column)] = executor.evaluate(expr, env)
            new_row[start_index] = clock
            new_row[stop_index] = FOREVER
            if row[start_index] == clock:
                table.write_row(row, new_row)
            else:
                table.set_cell(row, stop_index, clock)
                table.insert(new_row)
        self.db.stats.count_rows(len(matches), "tt_maintenance")
        return len(matches)

    def _close_matching(
        self,
        table: Table,
        info: TemporalTableInfo,
        where: Optional[ast.Expression],
        alias: Optional[str],
        clock: Date,
    ) -> int:
        binding_name = (alias or table.name).lower()
        colmap = {c.lower(): i for i, c in enumerate(table.column_names)}
        start_index = table.column_index(info.begin_column)
        stop_index = table.column_index(info.end_column)
        executor = self.db.executor
        env = Env()
        count = 0
        kept: list[list[Any]] = []
        closed: list[list[Any]] = []
        for row in table.rows:
            if row[stop_index] == FOREVER:
                env.bindings[binding_name] = Binding(colmap, row)
                if where is None or truth(executor.evaluate(where, env)):
                    count += 1
                    if row[start_index] == clock:
                        continue  # inserted and deleted in one transaction
                    closed.append(row)
            kept.append(row)
        for row in closed:
            table.set_cell(row, stop_index, clock)
        if count:
            table.replace_rows(kept)
        self.db.stats.count_rows(count, "tt_maintenance")
        return count
