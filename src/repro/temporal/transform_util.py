"""Shared AST-building and rewriting helpers for the transformations.

All transformations deep-copy their input first (:func:`clone`) and then
mutate the copy; original ASTs registered with the stratum are never
touched.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, Optional, Sequence

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.values import Date


def clone(node: ast.Node) -> ast.Node:
    """Deep-copy an AST node tree."""
    return copy.deepcopy(node)


# ---------------------------------------------------------------------------
# expression builders
# ---------------------------------------------------------------------------


def name(qualifier: Optional[str], column: str) -> ast.Name:
    return ast.Name(qualifier=qualifier, name=column)


def lit(value) -> ast.Literal:
    return ast.Literal(value=value)


def date_lit(ordinal: int) -> ast.Literal:
    return ast.Literal(value=Date(ordinal))


def call(function: str, *args: ast.Expression) -> ast.FunctionCall:
    return ast.FunctionCall(name=function, args=list(args))


def and_all(conditions: Sequence[ast.Expression]) -> Optional[ast.Expression]:
    """Conjoin conditions left-to-right; None for an empty sequence."""
    result: Optional[ast.Expression] = None
    for condition in conditions:
        result = condition if result is None else ast.BinaryOp(
            op="AND", left=result, right=condition
        )
    return result


def add_condition(select: ast.Select, condition: Optional[ast.Expression]) -> None:
    """AND ``condition`` onto the select's WHERE clause."""
    if condition is None:
        return
    if select.where is None:
        select.where = condition
    else:
        select.where = ast.BinaryOp(op="AND", left=select.where, right=condition)


def cmp(op: str, left: ast.Expression, right: ast.Expression) -> ast.BinaryOp:
    return ast.BinaryOp(op=op, left=left, right=right)


def overlap_at_point(
    alias: str, point: ast.Expression, begin_col: str = "begin_time",
    end_col: str = "end_time",
) -> ast.Expression:
    """``alias.begin <= point AND point < alias.end`` (paper §V-B).

    Checking containment of the period *start* suffices inside a constant
    period, where by construction nothing changes.
    """
    return ast.BinaryOp(
        op="AND",
        left=cmp("<=", name(alias, begin_col), clone(point)),
        right=cmp("<", clone(point), name(alias, end_col)),
    )


def fold_last_instance(exprs: Sequence[ast.Expression]) -> ast.Expression:
    """Nested LAST_INSTANCE(...) — the latest of the given times."""
    result = exprs[0]
    for expr in exprs[1:]:
        result = call("LAST_INSTANCE", result, expr)
    return result


def fold_first_instance(exprs: Sequence[ast.Expression]) -> ast.Expression:
    """Nested FIRST_INSTANCE(...) — the earliest of the given times."""
    result = exprs[0]
    for expr in exprs[1:]:
        result = call("FIRST_INSTANCE", result, expr)
    return result


def pairwise_overlap(
    sources: Sequence[tuple[ast.Expression, ast.Expression]],
) -> list[ast.Expression]:
    """Overlap predicates making every source period intersect every other.

    ``sources`` holds (begin_expr, end_expr) pairs.  In one dimension,
    pairwise overlap implies a common intersection (Helly), so these
    predicates guarantee the folded intersection period is non-empty.
    """
    conditions: list[ast.Expression] = []
    for i in range(len(sources)):
        for j in range(i + 1, len(sources)):
            begin_i, end_i = sources[i]
            begin_j, end_j = sources[j]
            conditions.append(cmp("<", clone(begin_i), clone(end_j)))
            conditions.append(cmp("<", clone(begin_j), clone(end_i)))
    return conditions


# ---------------------------------------------------------------------------
# generic rewriting
# ---------------------------------------------------------------------------


def rewrite_expressions(
    node: ast.Node, rewriter: Callable[[ast.Expression], Optional[ast.Expression]]
) -> None:
    """Bottom-up, in-place rewrite of every Expression under ``node``.

    ``rewriter`` returns a replacement node or None to keep the original.
    Replacement happens by reassigning the parent's dataclass fields, so
    the rewriter may return entirely different expression types.
    """
    import dataclasses

    def visit(value):
        if isinstance(value, ast.Node):
            for field in dataclasses.fields(value):
                current = getattr(value, field.name)
                replacement = visit(current)
                if replacement is not None:
                    setattr(value, field.name, replacement)
            if isinstance(value, ast.Expression):
                replaced = rewriter(value)
                if replaced is not None:
                    return replaced
            return None
        if isinstance(value, list):
            for index, item in enumerate(value):
                replacement = visit(item)
                if replacement is not None:
                    value[index] = replacement
            return None
        if isinstance(value, tuple):
            items = list(value)
            changed = False
            for index, item in enumerate(items):
                replacement = visit(item)
                if replacement is not None:
                    items[index] = replacement
                    changed = True
            return tuple(items) if changed else None
        return None

    visit(node)


def rename_routine_calls(
    node: ast.Node,
    mapping: dict[str, str],
    extra_args: Optional[Callable[[], list[ast.Expression]]] = None,
) -> None:
    """Rename calls to the routines in ``mapping`` (lower-cased keys),
    optionally appending extra arguments to each renamed call."""

    def rewriter(expr: ast.Expression) -> Optional[ast.Expression]:
        if isinstance(expr, ast.FunctionCall):
            target = mapping.get(expr.name.lower())
            if target is not None:
                expr.name = target
                if extra_args is not None:
                    expr.args = expr.args + extra_args()
        return None

    rewrite_expressions(node, rewriter)
    for child in ast.walk(node):
        if isinstance(child, ast.CallStatement):
            target = mapping.get(child.name.lower())
            if target is not None:
                child.name = target
                if extra_args is not None:
                    child.args = child.args + extra_args()


def selects_in(node: ast.Node) -> Iterable[ast.Select]:
    """Every Select node in the tree (including the root if applicable)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Select):
            yield child


def from_table_aliases(select: ast.Select) -> list[tuple[str, str]]:
    """(table_name_lower, binding_alias) for plain table refs in FROM."""
    pairs: list[tuple[str, str]] = []

    def visit(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            pairs.append((item.name.lower(), item.binding))
        elif isinstance(item, ast.Join):
            visit(item.left)
            visit(item.right)

    for item in select.from_items:
        visit(item)
    return pairs


def classify_from_sources(
    select: ast.Select,
) -> tuple[list[tuple[str, str]], list[tuple[ast.Join, list[tuple[str, str]]]]]:
    """Split a select's table sources by where their predicates belong.

    Returns ``(where_pairs, join_pairs)``: plain tables and inner-join
    sides take extra predicates in the WHERE clause; the *right* side of
    a LEFT join must take them in that join's ON condition, or the
    predicate would silently discard null-extended rows and turn the
    outer join into an inner one.
    """
    where_pairs: list[tuple[str, str]] = []
    join_pairs: list[tuple[ast.Join, list[tuple[str, str]]]] = []

    def tables_of(item: ast.FromItem) -> list[tuple[str, str]]:
        if isinstance(item, ast.TableRef):
            return [(item.name.lower(), item.binding)]
        if isinstance(item, ast.Join):
            return tables_of(item.left) + tables_of(item.right)
        return []

    def visit(item: ast.FromItem) -> None:
        if isinstance(item, ast.Join):
            if item.kind == "LEFT":
                visit(item.left)
                join_pairs.append((item, tables_of(item.right)))
            elif item.kind == "RIGHT":
                # the LEFT operand is the null-extended side
                join_pairs.append((item, tables_of(item.left)))
                visit(item.right)
            else:
                visit(item.left)
                visit(item.right)
        elif isinstance(item, ast.TableRef):
            where_pairs.append((item.name.lower(), item.binding))

    for item in select.from_items:
        visit(item)
    return where_pairs, join_pairs


def add_join_condition(join: ast.Join, condition: ast.Expression) -> None:
    """AND a condition onto a join's ON clause."""
    if join.condition is None:
        join.condition = condition
    else:
        join.condition = ast.BinaryOp(
            op="AND", left=join.condition, right=condition
        )


def unique_name(base: str, taken: set[str]) -> str:
    """A name not in ``taken`` (case-insensitive), derived from ``base``."""
    candidate = base
    counter = 1
    while candidate.lower() in taken:
        counter += 1
        candidate = f"{base}{counter}"
    taken.add(candidate.lower())
    return candidate
