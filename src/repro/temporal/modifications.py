"""Sequenced modifications: ``VALIDTIME [bt, et) INSERT/UPDATE/DELETE``.

SQL/Temporal's statement modifiers apply to modifications as well as
queries (paper §III: "these keywords modify the semantics of the entire
SQL statement (whether a query, a modification, a view definition, a
cursor, etc.)").  The sequenced semantics, granule by granule:

* **INSERT** makes the new rows valid exactly over the context period;
* **DELETE** removes each matching row's validity *within* the context,
  splitting the stored period when the context cuts it (a row valid
  ``[Jan, Dec)`` deleted over ``[Mar, May)`` leaves ``[Jan, Mar)`` and
  ``[May, Dec)``);
* **UPDATE** applies the assignments within the context and preserves
  the original values outside it, splitting likewise.

The WHERE predicate is evaluated against each stored row version (whose
attribute values are constant over its period); scalar subqueries inside
it run conventionally.
"""

from __future__ import annotations

from typing import Any, Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.engine import Database
from repro.sqlengine.executor import Binding, Env
from repro.sqlengine.storage import Table
from repro.sqlengine.values import Date, truth
from repro.temporal.errors import TemporalError
from repro.temporal.period import Period
from repro.temporal.schema import TemporalRegistry, TemporalTableInfo


def execute_sequenced_modification(
    db: Database,
    registry: TemporalRegistry,
    stmt: Union[ast.Insert, ast.Update, ast.Delete],
    context: Period,
) -> int:
    """Dispatch a sequenced modification; returns the affected-row count."""
    info = registry.get(stmt.table)
    if info is None:
        raise TemporalError(
            f"sequenced modification requires a temporal table;"
            f" {stmt.table!r} has no valid-time support"
        )
    if isinstance(stmt, ast.Insert):
        return _sequenced_insert(db, info, stmt, context)
    if isinstance(stmt, ast.Delete):
        return _sequenced_delete(db, info, stmt, context)
    if isinstance(stmt, ast.Update):
        return _sequenced_update(db, info, stmt, context)
    raise TemporalError(  # pragma: no cover - dispatch is exhaustive
        f"unsupported sequenced modification {type(stmt).__name__}"
    )


def _sequenced_insert(
    db: Database, info: TemporalTableInfo, stmt: ast.Insert, context: Period
) -> int:
    """INSERT with validity exactly the context period."""
    table = db.catalog.get_table(stmt.table)
    timestamp_columns = {info.begin_column.lower(), info.end_column.lower()}
    if stmt.columns is not None and timestamp_columns & {
        c.lower() for c in stmt.columns
    }:
        raise TemporalError(
            "sequenced INSERT supplies the validity period via the"
            " temporal context, not explicit timestamp columns"
        )
    new_stmt = ast.Insert(table=stmt.table, select=stmt.select)
    if stmt.columns is None:
        value_columns = [
            c for c in table.column_names if c.lower() not in timestamp_columns
        ]
    else:
        value_columns = list(stmt.columns)
    new_stmt.columns = value_columns + [info.begin_column, info.end_column]
    stamp = [
        ast.Literal(value=Date(context.begin)),
        ast.Literal(value=Date(context.end)),
    ]
    if stmt.values is not None:
        new_stmt.values = [list(row) + stamp for row in stmt.values]
        new_stmt.select = None
    else:
        select = stmt.select.copy()
        select.items = select.items + [
            ast.SelectItem(expr=stamp[0]),
            ast.SelectItem(expr=stamp[1]),
        ]
        new_stmt.select = select
    return db.executor.execute(new_stmt)


def _matching_rows(
    db: Database,
    table: Table,
    info: TemporalTableInfo,
    where,
    alias: str,
    context: Period,
) -> list[list[Any]]:
    colmap = {c.lower(): i for i, c in enumerate(table.column_names)}
    begin_index = table.column_index(info.begin_column)
    end_index = table.column_index(info.end_column)
    # watchdog: the sequenced-modification row pass walks the whole
    # table outside the executor's scan machinery
    resilience = db.resilience
    if resilience.armed:
        resilience.check()
    env = Env()
    matches = []
    for row in table.rows:
        period = Period(row[begin_index].ordinal, row[end_index].ordinal)
        if not period.overlaps(context):
            continue
        env.bindings[alias.lower()] = Binding(colmap, row)
        if where is None or truth(db.executor.evaluate(where, env)):
            matches.append(row)
    return matches


def _sequenced_delete(
    db: Database, info: TemporalTableInfo, stmt: ast.Delete, context: Period
) -> int:
    """Remove validity within the context, splitting cut periods."""
    table = db.catalog.get_table(stmt.table)
    # claim before the scan: read-then-mutate must target the live table
    db.txn.claim_write(table)
    alias = stmt.alias or stmt.table
    begin_index = table.column_index(info.begin_column)
    end_index = table.column_index(info.end_column)
    matches = _matching_rows(db, table, info, stmt.where, alias, context)
    to_remove = set(map(id, matches))
    additions: list[list[Any]] = []
    for row in matches:
        period = Period(row[begin_index].ordinal, row[end_index].ordinal)
        for kept in _difference(period, context):
            part = list(row)
            part[begin_index] = Date(kept.begin)
            part[end_index] = Date(kept.end)
            additions.append(part)
    if matches:
        table.replace_rows(
            [row for row in table.rows if id(row) not in to_remove]
        )
        for part in additions:
            table.append_row(part)
    db.stats.count_rows(len(matches) + len(additions), "sequenced_rewrite")
    return len(matches)


def _sequenced_update(
    db: Database, info: TemporalTableInfo, stmt: ast.Update, context: Period
) -> int:
    """Apply assignments within the context; preserve history outside."""
    for column, _ in stmt.assignments:
        if column.lower() in (info.begin_column.lower(), info.end_column.lower()):
            raise TemporalError(
                "sequenced UPDATE may not assign timestamp columns"
            )
    table = db.catalog.get_table(stmt.table)
    db.txn.claim_write(table)
    alias = stmt.alias or stmt.table
    colmap = {c.lower(): i for i, c in enumerate(table.column_names)}
    begin_index = table.column_index(info.begin_column)
    end_index = table.column_index(info.end_column)
    matches = _matching_rows(db, table, info, stmt.where, alias, context)
    to_remove = set(map(id, matches))
    env = Env()
    additions: list[list[Any]] = []
    for row in matches:
        period = Period(row[begin_index].ordinal, row[end_index].ordinal)
        overlap = period.intersect(context)
        assert overlap is not None  # guaranteed by _matching_rows
        env.bindings[alias.lower()] = Binding(colmap, row)
        updated = list(row)
        for column, expr in stmt.assignments:
            updated[table.column_index(column)] = db.executor.evaluate(expr, env)
        updated[begin_index] = Date(overlap.begin)
        updated[end_index] = Date(overlap.end)
        additions.append(updated)
        for kept in _difference(period, context):
            part = list(row)
            part[begin_index] = Date(kept.begin)
            part[end_index] = Date(kept.end)
            additions.append(part)
    if matches:
        table.replace_rows(
            [row for row in table.rows if id(row) not in to_remove]
        )
        for part in additions:
            table.append_row(part)
    db.stats.count_rows(len(additions), "sequenced_rewrite")
    return len(matches)


def _difference(period: Period, context: Period) -> list[Period]:
    """The parts of ``period`` outside ``context`` (0, 1 or 2 pieces)."""
    pieces = []
    if period.begin < context.begin:
        pieces.append(Period(period.begin, min(period.end, context.begin)))
    if period.end > context.end:
        pieces.append(Period(max(period.begin, context.end), period.end))
    return pieces
