"""Dataset persistence: export/import τPSM datasets as CSV directories.

τBench distributes its benchmark data as files; this module gives the
reproduction the same property, so a generated dataset can be inspected,
versioned, or loaded elsewhere without re-running the simulator.

Layout of an exported dataset directory::

    <dir>/manifest.txt        # spec key + probe values, one `key=value` per line
    <dir>/item.csv            # header row, then data rows
    <dir>/author.csv          # ... one file per table

Dates are written as ISO strings; NULLs as empty fields.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Union

from repro.sqlengine.engine import Database
from repro.sqlengine.errors import SqlError
from repro.sqlengine.storage import Table
from repro.sqlengine.values import Date, Null
from repro.taubench import schema
from repro.taubench.datasets import Dataset, dataset_spec
from repro.temporal.stratum import TemporalStratum

MANIFEST = "manifest.txt"


class DatasetLoadError(ValueError):
    """A malformed dataset file: always names the file and line."""


def _encode(value) -> str:
    if value is Null:
        return ""
    if isinstance(value, Date):
        return value.to_iso()
    return str(value)


def _decode(text: str, type_name: str):
    if text == "":
        return Null
    if type_name == "DATE":
        return Date.from_iso(text)
    if type_name in ("INTEGER", "INT", "SMALLINT", "BIGINT"):
        return int(text)
    if type_name in ("FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC"):
        return float(text)
    return text


def export_table(table: Table, path: Union[str, Path]) -> int:
    """Write one engine table to a CSV file; returns the row count."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows:
            writer.writerow([_encode(v) for v in row])
    return len(table)


def import_table(db: Database, table_name: str, path: Union[str, Path]) -> int:
    """Load a CSV file (written by :func:`export_table`) into a table.

    The table must already exist; the CSV header must match its columns.
    Values are decoded according to the column types.  Malformed input —
    a missing header, a row with the wrong number of fields, or a value
    that cannot represent its column's type — raises
    :class:`DatasetLoadError` naming the file and 1-based line number.
    """
    table = db.catalog.get_table(table_name)
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetLoadError(f"{path.name}: empty file (no header row)")
        expected = [c.lower() for c in table.column_names]
        if [h.lower() for h in header] != expected:
            raise DatasetLoadError(
                f"{path.name}, line 1: header {header} does not match"
                f" columns {table.column_names}"
            )
        types = [c.type.name for c in table.columns]
        names = table.column_names
        count = 0
        for row in reader:
            line = reader.line_num
            if len(row) != len(types):
                raise DatasetLoadError(
                    f"{path.name}, line {line}: expected {len(types)}"
                    f" fields, got {len(row)}"
                )
            decoded = []
            for value, type_name, column in zip(row, types, names):
                try:
                    decoded.append(_decode(value, type_name))
                except (ValueError, SqlError) as exc:
                    raise DatasetLoadError(
                        f"{path.name}, line {line}, column {column}:"
                        f" cannot read {value!r} as {type_name} ({exc})"
                    ) from exc
            try:
                table.insert(decoded)
            except SqlError as exc:
                raise DatasetLoadError(
                    f"{path.name}, line {line}: {exc}"
                ) from exc
            count += 1
    db.stats.count_rows(count, "bulk_load")
    return count


def export_dataset(dataset: Dataset, directory: Union[str, Path]) -> Path:
    """Write a loaded dataset (six tables + manifest) to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table_name in schema.TABLE_NAMES:
        export_table(
            dataset.stratum.db.catalog.get_table(table_name),
            directory / f"{table_name}.csv",
        )
    manifest = {
        "name": dataset.spec.name,
        "size": dataset.spec.size,
        "probe_author_id": dataset.probe_author_id,
        "probe_author_first_name": dataset.probe_author_first_name,
        "probe_item_id": dataset.probe_item_id,
        "cold_item_id": dataset.cold_item_id,
        "cold_author_id": dataset.cold_author_id,
        "cold_author_first_name": dataset.cold_author_first_name,
        "cold_author_last_name": dataset.cold_author_last_name,
        "probe_publisher_id": dataset.probe_publisher_id,
    }
    lines = [f"{key}={value}" for key, value in manifest.items()]
    (directory / MANIFEST).write_text("\n".join(lines) + "\n")
    return directory


def import_dataset(directory: Union[str, Path]) -> Dataset:
    """Load a dataset directory written by :func:`export_dataset`."""
    directory = Path(directory)
    manifest: dict[str, str] = {}
    for line in (directory / MANIFEST).read_text().splitlines():
        if line.strip():
            key, _, value = line.partition("=")
            manifest[key] = value
    spec = dataset_spec(manifest["name"], manifest["size"])
    stratum = TemporalStratum()
    schema.create_all(stratum)
    for table_name in schema.TABLE_NAMES:
        import_table(stratum.db, table_name, directory / f"{table_name}.csv")
    from repro.taubench.simulator import TIMELINE_BEGIN

    stratum.db.now = Date(TIMELINE_BEGIN.ordinal + 200)
    return Dataset(
        spec=spec,
        stratum=stratum,
        probe_author_id=manifest["probe_author_id"],
        probe_author_first_name=manifest["probe_author_first_name"],
        probe_item_id=manifest["probe_item_id"],
        cold_item_id=manifest["cold_item_id"],
        cold_author_id=manifest["cold_author_id"],
        cold_author_first_name=manifest["cold_author_first_name"],
        cold_author_last_name=manifest["cold_author_last_name"],
        probe_publisher_id=manifest["probe_publisher_id"],
    )


def copy_dataset_into(stratum: TemporalStratum, dataset: Dataset) -> Dataset:
    """Copy a dataset's tables into another (typically durable) stratum.

    ``build_dataset`` creates its own fresh stratum; a durable session
    instead wants the data *inside* the already-attached one.  The six
    tables are created (with valid-time support) and bulk-copied in a
    single explicit transaction, so under durability the whole load is
    one WAL commit — one write, one fsync.  Returns the dataset rebound
    to ``stratum``.
    """
    db = stratum.db
    source = dataset.stratum.db
    db.execute("BEGIN")
    try:
        for table_name in schema.TABLE_NAMES:
            if not db.catalog.has_table(table_name):
                db.execute(schema.DDL[table_name])
                stratum.add_validtime(table_name)
            original = source.catalog.get_table(table_name)
            target = db.catalog.get_table(table_name)
            for row in original.rows:
                target.append_row(list(row))
            db.stats.count_rows(len(original), "bulk_load")
    except BaseException:
        db.execute("ROLLBACK")
        raise
    db.execute("COMMIT")
    db.now = source.now
    return dataclasses.replace(dataset, stratum=stratum)
