"""Dataset persistence: export/import τPSM datasets as CSV directories.

τBench distributes its benchmark data as files; this module gives the
reproduction the same property, so a generated dataset can be inspected,
versioned, or loaded elsewhere without re-running the simulator.

Layout of an exported dataset directory::

    <dir>/manifest.txt        # spec key + probe values, one `key=value` per line
    <dir>/item.csv            # header row, then data rows
    <dir>/author.csv          # ... one file per table

Dates are written as ISO strings; NULLs as empty fields.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.sqlengine.engine import Database
from repro.sqlengine.storage import Table
from repro.sqlengine.values import Date, Null
from repro.taubench import schema
from repro.taubench.datasets import Dataset, dataset_spec
from repro.temporal.stratum import TemporalStratum

MANIFEST = "manifest.txt"


def _encode(value) -> str:
    if value is Null:
        return ""
    if isinstance(value, Date):
        return value.to_iso()
    return str(value)


def _decode(text: str, type_name: str):
    if text == "":
        return Null
    if type_name == "DATE":
        return Date.from_iso(text)
    if type_name in ("INTEGER", "INT", "SMALLINT", "BIGINT"):
        return int(text)
    if type_name in ("FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC"):
        return float(text)
    return text


def export_table(table: Table, path: Union[str, Path]) -> int:
    """Write one engine table to a CSV file; returns the row count."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows:
            writer.writerow([_encode(v) for v in row])
    return len(table)


def import_table(db: Database, table_name: str, path: Union[str, Path]) -> int:
    """Load a CSV file (written by :func:`export_table`) into a table.

    The table must already exist; the CSV header must match its columns.
    Values are decoded according to the column types.
    """
    table = db.catalog.get_table(table_name)
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        expected = [c.lower() for c in table.column_names]
        if [h.lower() for h in header] != expected:
            raise ValueError(
                f"{path.name}: header {header} does not match columns"
                f" {table.column_names}"
            )
        types = [c.type.name for c in table.columns]
        count = 0
        for row in reader:
            table.insert([_decode(v, t) for v, t in zip(row, types)])
            count += 1
    db.stats.count_rows(count, "bulk_load")
    return count


def export_dataset(dataset: Dataset, directory: Union[str, Path]) -> Path:
    """Write a loaded dataset (six tables + manifest) to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table_name in schema.TABLE_NAMES:
        export_table(
            dataset.stratum.db.catalog.get_table(table_name),
            directory / f"{table_name}.csv",
        )
    manifest = {
        "name": dataset.spec.name,
        "size": dataset.spec.size,
        "probe_author_id": dataset.probe_author_id,
        "probe_author_first_name": dataset.probe_author_first_name,
        "probe_item_id": dataset.probe_item_id,
        "cold_item_id": dataset.cold_item_id,
        "cold_author_id": dataset.cold_author_id,
        "cold_author_first_name": dataset.cold_author_first_name,
        "cold_author_last_name": dataset.cold_author_last_name,
        "probe_publisher_id": dataset.probe_publisher_id,
    }
    lines = [f"{key}={value}" for key, value in manifest.items()]
    (directory / MANIFEST).write_text("\n".join(lines) + "\n")
    return directory


def import_dataset(directory: Union[str, Path]) -> Dataset:
    """Load a dataset directory written by :func:`export_dataset`."""
    directory = Path(directory)
    manifest: dict[str, str] = {}
    for line in (directory / MANIFEST).read_text().splitlines():
        if line.strip():
            key, _, value = line.partition("=")
            manifest[key] = value
    spec = dataset_spec(manifest["name"], manifest["size"])
    stratum = TemporalStratum()
    schema.create_all(stratum)
    for table_name in schema.TABLE_NAMES:
        import_table(stratum.db, table_name, directory / f"{table_name}.csv")
    from repro.taubench.simulator import TIMELINE_BEGIN

    stratum.db.now = Date(TIMELINE_BEGIN.ordinal + 200)
    return Dataset(
        spec=spec,
        stratum=stratum,
        probe_author_id=manifest["probe_author_id"],
        probe_author_first_name=manifest["probe_author_first_name"],
        probe_item_id=manifest["probe_item_id"],
        cold_item_id=manifest["cold_item_id"],
        cold_author_id=manifest["cold_author_id"],
        cold_author_first_name=manifest["cold_author_first_name"],
        cold_author_last_name=manifest["cold_author_last_name"],
        probe_publisher_id=manifest["probe_publisher_id"],
    )
