"""Dataset specifications: DS1 / DS2 / DS3 × SMALL / MEDIUM / LARGE.

Paper §VII-A1:

* **DS1** — weekly changes, 104 steps over two years, uniform victims;
* **DS2** — same steps, Gaussian hot-spot victims;
* **DS3** — daily changes, 693 steps, uniform, same *total* change count
  as DS1 (so the number of slices is the variable, not the change
  volume).

Row counts are scaled to interpreter scale (the paper's 12MB-260MB files
correspond to our SMALL/MEDIUM/LARGE row budgets); the *shape* of every
experiment depends on slice counts and relative sizes, which are
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.sqlengine.values import Date
from repro.taubench import schema
from repro.taubench.generator import CatalogData, generate_catalog
from repro.taubench.simulator import TIMELINE_BEGIN, simulate
from repro.temporal.period import Period
from repro.temporal.stratum import TemporalStratum

SIZES = ["SMALL", "MEDIUM", "LARGE"]
DATASETS = ["DS1", "DS2", "DS3"]

_SIZE_SCALE = {"SMALL": 1, "MEDIUM": 3, "LARGE": 10}
_BASE_ITEMS = 48
_BASE_AUTHORS = 36
_BASE_PUBLISHERS = 10
_BASE_CHANGES = 700  # total changes at SMALL scale (~paper's 25K, scaled)


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset configuration."""

    name: str  # DS1 / DS2 / DS3
    size: str  # SMALL / MEDIUM / LARGE
    num_steps: int
    step_days: int
    distribution: str
    total_changes: int
    num_items: int
    num_authors: int
    num_publishers: int

    @property
    def key(self) -> str:
        return f"{self.name}.{self.size}"

    @property
    def timeline(self) -> Period:
        """The two-year simulation window."""
        return Period(
            TIMELINE_BEGIN.ordinal,
            TIMELINE_BEGIN.ordinal + self.num_steps * self.step_days + 1,
        )


def dataset_spec(name: str, size: str) -> DatasetSpec:
    name = name.upper()
    size = size.upper()
    if name not in DATASETS:
        raise ValueError(f"unknown dataset {name}; expected one of {DATASETS}")
    if size not in SIZES:
        raise ValueError(f"unknown size {size}; expected one of {SIZES}")
    scale = _SIZE_SCALE[size]
    if name == "DS3":
        num_steps, step_days = 693, 1
    else:
        num_steps, step_days = 104, 7
    return DatasetSpec(
        name=name,
        size=size,
        num_steps=num_steps,
        step_days=step_days,
        distribution="gaussian" if name == "DS2" else "uniform",
        total_changes=_BASE_CHANGES * scale,
        num_items=_BASE_ITEMS * scale,
        num_authors=_BASE_AUTHORS * scale,
        num_publishers=_BASE_PUBLISHERS * scale,
    )


@lru_cache(maxsize=None)
def _simulated_rows(spec: DatasetSpec):
    catalog = generate_catalog(
        spec.num_items, spec.num_authors, spec.num_publishers, seed=42
    )
    return catalog, simulate(
        catalog,
        num_steps=spec.num_steps,
        step_days=spec.step_days,
        total_changes=spec.total_changes,
        distribution=spec.distribution,
        seed=7,
    )


@dataclass
class Dataset:
    """A loaded dataset: the stratum plus workload parameters.

    The probe values below are what the benchmark queries parameterize
    on — the paper notes q2 was changed to search for an author that is
    actually present, to keep results non-empty.
    """

    spec: DatasetSpec
    stratum: TemporalStratum
    probe_author_id: str
    probe_author_first_name: str
    probe_item_id: str
    cold_item_id: str
    cold_author_id: str
    cold_author_first_name: str
    cold_author_last_name: str
    probe_publisher_id: str

    @property
    def timeline(self) -> Period:
        return self.spec.timeline

    def context(self, days: int) -> Period:
        """A temporal context of the given length, centred in year one."""
        begin = TIMELINE_BEGIN.ordinal + 30
        return Period(begin, begin + days)

    def total_rows(self) -> int:
        return sum(
            len(self.stratum.db.catalog.get_table(t)) for t in schema.TABLE_NAMES
        )


def build_dataset(name: str, size: str) -> Dataset:
    """Generate, simulate and load one dataset into a fresh stratum."""
    spec = dataset_spec(name, size)
    return load_dataset(spec)


def load_dataset(spec: DatasetSpec) -> Dataset:
    catalog, tables = _simulated_rows(spec)
    stratum = TemporalStratum()
    schema.create_all(stratum)
    for table_name, rows in tables.items():
        stratum.db.insert_rows(table_name, rows)
    stratum.db.now = Date(TIMELINE_BEGIN.ordinal + 200)
    probe_author = catalog.authors[0]
    # a cold item/author: tied to the first item, far from the DS2
    # hot-spot centre (paper §VII-E: q2/q2b select a non-hot-spot row)
    cold_item_id = catalog.items[0][0]
    cold_author_id = next(
        link[1] for link in catalog.item_author if link[0] == cold_item_id
    )
    cold_author = next(a for a in catalog.authors if a[0] == cold_author_id)
    return Dataset(
        spec=spec,
        stratum=stratum,
        probe_author_id=probe_author[0],
        probe_author_first_name=probe_author[1],
        probe_item_id=catalog.items[len(catalog.items) // 2][0],
        cold_item_id=cold_item_id,
        cold_author_id=cold_author_id,
        cold_author_first_name=cold_author[1],
        cold_author_last_name=cold_author[2],
        probe_publisher_id=catalog.publishers[0][0],
    )
