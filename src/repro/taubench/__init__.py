"""The τPSM benchmark (paper §VII-A), part of τBench.

A synthetic bookstore catalog in the shape of XBench DC/SD, shredded
into six temporal tables, with a change simulator producing the DS1 /
DS2 / DS3 datasets in SMALL / MEDIUM / LARGE sizes, and the sixteen PSM
queries q2..q20 each highlighting one SQL/PSM construct.
"""

from repro.taubench.datasets import (
    DATASETS,
    SIZES,
    DatasetSpec,
    build_dataset,
    load_dataset,
)
from repro.taubench.queries import ALL_QUERIES, QuerySpec, get_query

__all__ = [
    "DATASETS",
    "SIZES",
    "DatasetSpec",
    "build_dataset",
    "load_dataset",
    "ALL_QUERIES",
    "QuerySpec",
    "get_query",
]
