"""Deterministic DC/SD-style bookstore content generator.

The paper used XBench's randomly generated document-centric/single
document catalog; we generate equivalent relational content directly
(same entities, same cardinality ratios) from a seeded PRNG so every
dataset is exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sqlengine.values import Date

FIRST_NAMES = [
    "Ben", "Rosa", "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald",
    "Tim", "Radia", "Leslie", "John", "Marvin", "Claude", "Hedy", "Annie",
    "Niklaus", "Dennis", "Ken", "Bjarne", "Guido", "Yukihiro", "Brendan",
    "Anders", "Margaret", "Katherine", "Dorothy", "Mary", "Frances", "Jean",
]
LAST_NAMES = [
    "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth",
    "Berners-Lee", "Perlman", "Lamport", "McCarthy", "Minsky", "Shannon",
    "Lamarr", "Easley", "Wirth", "Ritchie", "Thompson", "Stroustrup",
    "van Rossum", "Matsumoto", "Eich", "Hejlsberg", "Hamilton", "Johnson",
    "Vaughan", "Jackson", "Spence", "Bartik", "Holberton", "Sammet",
]
COUNTRIES = [
    "USA", "Canada", "UK", "Germany", "Denmark", "Netherlands", "France",
    "Japan", "Switzerland", "Australia",
]
CITIES = [
    "Tucson", "San Jose", "Kingston", "Boston", "Seattle", "Aarhus",
    "Zurich", "Kyoto", "Amsterdam", "Cambridge",
]
TITLE_WORDS = [
    "Temporal", "Database", "Systems", "Advanced", "Introduction",
    "Principles", "Foundations", "Modern", "Practical", "Theory",
    "Queries", "Transactions", "Concurrency", "Design", "Implementation",
    "Distributed", "Relational", "Stored", "Procedures", "Time",
]
SUBJECTS = [
    "databases", "systems", "theory", "networks", "languages",
    "algorithms", "security", "graphics",
]


@dataclass
class CatalogData:
    """Generated base content, before temporal simulation.

    Row layouts match :mod:`repro.taubench.schema` minus the timestamp
    columns (the simulator appends those).
    """

    publishers: list[list] = field(default_factory=list)
    authors: list[list] = field(default_factory=list)
    items: list[list] = field(default_factory=list)
    related_items: list[list] = field(default_factory=list)
    item_author: list[list] = field(default_factory=list)
    item_publisher: list[list] = field(default_factory=list)

    def table_rows(self) -> dict[str, list[list]]:
        return {
            "publisher": self.publishers,
            "author": self.authors,
            "item": self.items,
            "related_items": self.related_items,
            "item_author": self.item_author,
            "item_publisher": self.item_publisher,
        }


def generate_catalog(
    num_items: int,
    num_authors: int,
    num_publishers: int,
    seed: int = 42,
) -> CatalogData:
    """Generate a catalog with XBench-like cardinality ratios.

    Each item has 1-3 authors, exactly one publisher, and 0-3 related
    items; authors and publishers are shared across items.
    """
    rng = random.Random(seed)
    data = CatalogData()
    for p in range(num_publishers):
        data.publishers.append(
            [
                f"p{p:07d}",
                f"{rng.choice(LAST_NAMES)} Press",
                f"{rng.randint(1, 999)} {rng.choice(TITLE_WORDS)} St",
                rng.choice(CITIES),
                rng.choice(COUNTRIES),
            ]
        )
    for a in range(num_authors):
        data.authors.append(
            [
                f"a{a:07d}",
                rng.choice(FIRST_NAMES),
                rng.choice(LAST_NAMES),
                rng.choice(COUNTRIES),
                Date.from_ymd(rng.randint(1930, 1990), rng.randint(1, 12), rng.randint(1, 28)),
            ]
        )
    for i in range(num_items):
        item_id = f"i{i:07d}"
        publisher_id = data.publishers[rng.randrange(num_publishers)][0]
        title = " ".join(rng.sample(TITLE_WORDS, rng.randint(2, 4)))
        data.items.append(
            [
                item_id,
                f"{title} Vol {i}",
                publisher_id,
                Date.from_ymd(rng.randint(1995, 2009), rng.randint(1, 12), rng.randint(1, 28)),
                rng.randint(80, 900),
                round(rng.uniform(5.0, 120.0), 2),
                rng.choice(SUBJECTS),
            ]
        )
        data.item_publisher.append([item_id, publisher_id])
        for author_index in rng.sample(range(num_authors), rng.randint(1, 3)):
            data.item_author.append([item_id, data.authors[author_index][0]])
        for _ in range(rng.randint(0, 3)):
            other = rng.randrange(num_items)
            if other != i:
                data.related_items.append([item_id, f"i{other:07d}"])
    return data
