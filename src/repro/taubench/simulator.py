"""Temporal change simulation (paper §VII-A1).

τBench turns the static catalog into temporal tables by replaying
changes at simulation time steps: at each step a configurable number of
rows are updated (the current version is terminated, a mutated version
begins).  DS1/DS3 pick victims uniformly; DS2 concentrates changes on
hot-spot items via a Gaussian over the item index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sqlengine.values import Date
from repro.taubench.generator import (
    CITIES,
    COUNTRIES,
    FIRST_NAMES,
    LAST_NAMES,
    TITLE_WORDS,
    CatalogData,
)

TIMELINE_BEGIN = Date.from_ymd(2010, 1, 1)
FOREVER = Date(Date.MAX_ORDINAL)

# which column of each table a change mutates, and how
_MUTATIONS = {
    "item": [
        ("price", lambda rng, v: round(max(1.0, v * rng.uniform(0.8, 1.25)), 2), 5),
        ("number_of_pages", lambda rng, v: max(40, v + rng.randint(-60, 60)), 4),
        ("title", lambda rng, v: _retitle(rng, v), 2),
    ],
    "author": [
        ("first_name", lambda rng, v: rng.choice(FIRST_NAMES), 2),
        ("country", lambda rng, v: rng.choice(COUNTRIES), 2),
    ],
    "publisher": [
        ("city", lambda rng, v: rng.choice(CITIES), 1),
        ("name", lambda rng, v: f"{rng.choice(LAST_NAMES)} Press", 1),
    ],
    "related_items": [
        ("related_id", None, 1),  # handled specially (needs an item id)
    ],
}


def _retitle(rng: random.Random, old: str) -> str:
    suffix = old.rsplit(" Vol ", 1)
    base = " ".join(rng.sample(TITLE_WORDS, 3))
    return f"{base} Vol {suffix[-1]}" if len(suffix) == 2 else base


@dataclass
class VersionedRow:
    """One version chain entry: values + [begin, end) ordinals."""

    values: list
    begin: int
    end: int


class TemporalTableBuilder:
    """Accumulates version chains for one table."""

    def __init__(self, columns: list[str], rows: list[list]) -> None:
        self.columns = columns
        self.versions: list[VersionedRow] = [
            VersionedRow(list(row), TIMELINE_BEGIN.ordinal, FOREVER.ordinal)
            for row in rows
        ]
        # index of the current (open) version per original row
        self.current: list[int] = list(range(len(rows)))

    def change(self, row_index: int, column: str, new_value, at: int) -> bool:
        """Terminate the current version at ``at``, begin a mutated one."""
        version = self.versions[self.current[row_index]]
        if version.begin >= at:
            return False  # already changed at this step
        column_index = self.columns.index(column)
        if version.values[column_index] == new_value:
            return False
        version.end = at
        new_values = list(version.values)
        new_values[column_index] = new_value
        self.versions.append(VersionedRow(new_values, at, FOREVER.ordinal))
        self.current[row_index] = len(self.versions) - 1
        return True

    def current_value(self, row_index: int, column: str):
        version = self.versions[self.current[row_index]]
        return version.values[self.columns.index(column)]

    def rows_with_periods(self) -> list[list]:
        return [
            v.values + [Date(v.begin), Date(v.end)] for v in self.versions
        ]


_COLUMNS = {
    "publisher": ["publisher_id", "name", "street", "city", "country"],
    "author": ["author_id", "first_name", "last_name", "country", "date_of_birth"],
    "item": ["id", "title", "publisher_id", "pub_date", "number_of_pages",
             "price", "subject"],
    "related_items": ["item_id", "related_id"],
    "item_author": ["item_id", "author_id"],
    "item_publisher": ["item_id", "publisher_id"],
}


def simulate(
    catalog: CatalogData,
    num_steps: int,
    step_days: int,
    total_changes: int,
    distribution: str = "uniform",
    seed: int = 7,
) -> dict[str, list[list]]:
    """Replay ``total_changes`` over ``num_steps`` steps of ``step_days``.

    ``distribution``: ``"uniform"`` picks victim rows uniformly;
    ``"gaussian"`` concentrates item-related changes on hot-spot items
    (Gaussian over the item index, σ = n/20), the DS2 configuration.

    Returns table name → rows (values + begin_time + end_time).
    """
    rng = random.Random(seed)
    builders = {
        name: TemporalTableBuilder(_COLUMNS[name], rows)
        for name, rows in catalog.table_rows().items()
    }
    num_items = len(catalog.items)
    item_sigma = max(1.0, num_items / 20.0)
    hot_center = num_items // 2

    def pick_item_index() -> int:
        if distribution == "gaussian":
            while True:
                value = int(rng.gauss(hot_center, item_sigma))
                if 0 <= value < num_items:
                    return value
        return rng.randrange(num_items)

    # distribute changes across steps as evenly as possible
    base, remainder = divmod(total_changes, num_steps)
    for step in range(num_steps):
        at = TIMELINE_BEGIN.ordinal + (step + 1) * step_days
        changes_this_step = base + (1 if step < remainder else 0)
        applied = 0
        attempts = 0
        while applied < changes_this_step and attempts < changes_this_step * 20:
            attempts += 1
            table = rng.choices(
                ["item", "author", "publisher", "related_items"],
                weights=[5, 3, 1, 1],
            )[0]
            builder = builders[table]
            if table == "item":
                row_index = pick_item_index()
            elif table == "related_items":
                if not builder.current:
                    continue
                row_index = self_related_index(rng, builder, catalog, pick_item_index)
                if row_index is None:
                    continue
            else:
                row_index = rng.randrange(len(builder.current))
            if table == "related_items":
                new_value = f"i{rng.randrange(num_items):07d}"
                if builder.change(row_index, "related_id", new_value, at):
                    applied += 1
                continue
            column, mutate, _weight = _weighted_mutation(rng, table)
            old = builder.current_value(row_index, column)
            if builder.change(row_index, column, mutate(rng, old), at):
                applied += 1
    return {name: b.rows_with_periods() for name, b in builders.items()}


def self_related_index(rng, builder, catalog, pick_item_index):
    """Pick a related_items row; under Gaussian, one tied to a hot item."""
    if not builder.current:
        return None
    # map: choose a row whose item matches a (possibly hot) item choice
    target = f"i{pick_item_index():07d}"
    candidates = [
        i
        for i in range(len(builder.current))
        if builder.versions[builder.current[i]].values[0] == target
    ]
    if candidates:
        return rng.choice(candidates)
    return rng.randrange(len(builder.current))


def _weighted_mutation(rng: random.Random, table: str):
    options = _MUTATIONS[table]
    weights = [w for _, _, w in options]
    return rng.choices(options, weights=weights)[0]
