"""The sixteen τPSM queries (paper §VII-A2).

Each query highlights one SQL/PSM construct:

======  ==========================================================
q2      SET with a SELECT row
q2b     multiple SET statements
q3      RETURN with a SELECT row
q5      a function in the SELECT list
q6      the CASE statement
q7      the WHILE statement (cursor-driven)
q7b     the REPEAT statement (cursor-driven)
q8      a loop name with the FOR statement
q9      a CALL within a procedure
q10     an IF without a CURSOR
q11     creation of a temporary table
q14     a local cursor declaration with FETCH, OPEN and CLOSE
q17     the LEAVE statement
q17b    a non-nested FETCH (PERST-inapplicable, paper §VII-A2)
q19     a function called in the FROM clause
q20     a SET statement
======  ==========================================================

Queries are parameterized on a loaded dataset's probe values — the paper
notes q2 was changed to search for an author actually present in the
data so the result set is never empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.taubench.datasets import Dataset


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query: its routines plus the invoking statement."""

    name: str
    feature: str
    routines: tuple[str, ...]
    build_query: Callable[["Dataset"], str]
    perst_applicable: bool = True
    uses_cursor: bool = False

    def install(self, dataset: "Dataset") -> None:
        """Register this query's routines on the dataset's stratum.

        Idempotent: re-registering replaces the previous definition.
        """
        for routine_sql in self.routines:
            stmt_name = _routine_name(routine_sql)
            catalog = dataset.stratum.db.catalog
            if catalog.has_routine(stmt_name):
                catalog.drop_routine(stmt_name)
            dataset.stratum.register_routine(routine_sql)

    def conventional_sql(self, dataset: "Dataset") -> str:
        return self.build_query(dataset)

    def sequenced_sql(self, dataset: "Dataset", begin_iso: str, end_iso: str) -> str:
        return (
            f"VALIDTIME [DATE '{begin_iso}', DATE '{end_iso}'] "
            + self.build_query(dataset)
        )


def _routine_name(routine_sql: str) -> str:
    tokens = routine_sql.split()
    index = tokens.index("FUNCTION") if "FUNCTION" in tokens else tokens.index("PROCEDURE")
    return tokens[index + 1].split("(")[0]


# ---------------------------------------------------------------------------
# q2 — SET with a SELECT row
# ---------------------------------------------------------------------------

_Q2_FN = """
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(40)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(40);
  SET fname = (SELECT first_name
               FROM author
               WHERE author_id = aid);
  RETURN fname;
END
"""

Q2 = QuerySpec(
    name="q2",
    feature="SET with a SELECT row",
    routines=(_Q2_FN,),
    build_query=lambda d: (
        "SELECT i.title FROM item i, item_author ia "
        "WHERE i.id = ia.item_id "
        f"AND ia.author_id = '{d.cold_author_id}' "
        f"AND get_author_name(ia.author_id) = '{d.cold_author_first_name}'"
    ),
)

# ---------------------------------------------------------------------------
# q2b — multiple SET statements
# ---------------------------------------------------------------------------

_Q2B_FN = """
CREATE FUNCTION get_author_full_name (aid CHAR(10))
RETURNS CHAR(90)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fn CHAR(40);
  DECLARE ln CHAR(40);
  SET fn = (SELECT first_name FROM author WHERE author_id = aid);
  SET ln = (SELECT last_name FROM author WHERE author_id = aid);
  RETURN fn || ' ' || ln;
END
"""

Q2B = QuerySpec(
    name="q2b",
    feature="multiple SET statements",
    routines=(_Q2B_FN,),
    build_query=lambda d: (
        "SELECT i.title FROM item i, item_author ia "
        "WHERE i.id = ia.item_id "
        f"AND ia.author_id = '{d.cold_author_id}' "
        f"AND get_author_full_name(ia.author_id) = "
        f"'{d.cold_author_first_name} {d.cold_author_last_name}'"
    ),
)

# ---------------------------------------------------------------------------
# q3 — RETURN with a SELECT row
# ---------------------------------------------------------------------------

_Q3_FN = """
CREATE FUNCTION get_publisher_name (pid CHAR(10))
RETURNS CHAR(60)
READS SQL DATA
LANGUAGE SQL
BEGIN
  RETURN (SELECT name FROM publisher WHERE publisher_id = pid);
END
"""

Q3 = QuerySpec(
    name="q3",
    feature="RETURN with a SELECT row",
    routines=(_Q3_FN,),
    build_query=lambda d: (
        "SELECT i.title FROM item i, item_publisher ip "
        "WHERE i.id = ip.item_id "
        f"AND ip.item_id = '{d.probe_item_id}' "
        "AND get_publisher_name(ip.publisher_id) LIKE '%Press%'"
    ),
)

# ---------------------------------------------------------------------------
# q5 — a function in the SELECT list
# ---------------------------------------------------------------------------

Q5 = QuerySpec(
    name="q5",
    feature="a function in the SELECT list",
    routines=(_Q2_FN,),
    build_query=lambda d: (
        "SELECT ia.author_id, get_author_name(ia.author_id) AS author_name "
        "FROM item_author ia "
        f"WHERE ia.item_id = '{d.probe_item_id}'"
    ),
)

# ---------------------------------------------------------------------------
# q6 — the CASE statement
# ---------------------------------------------------------------------------

_Q6_FN = """
CREATE FUNCTION price_category (iid CHAR(10))
RETURNS CHAR(10)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE p FLOAT;
  DECLARE cat CHAR(10);
  SET p = (SELECT price FROM item WHERE id = iid);
  CASE
    WHEN p < 30.0 THEN
      SET cat = 'budget';
    WHEN p < 70.0 THEN
      SET cat = 'standard';
    ELSE
      SET cat = 'premium';
  END CASE;
  RETURN cat;
END
"""

Q6 = QuerySpec(
    name="q6",
    feature="the CASE statement",
    routines=(_Q6_FN,),
    build_query=lambda d: (
        "SELECT i.id, price_category(i.id) AS category FROM item i "
        f"WHERE i.id = '{d.probe_item_id}'"
    ),
)

# ---------------------------------------------------------------------------
# q7 — the WHILE statement (cursor-driven counting)
# ---------------------------------------------------------------------------

_Q7_FN = """
CREATE FUNCTION count_cheap_items (pid CHAR(10))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE p FLOAT;
  DECLARE n INTEGER DEFAULT 0;
  DECLARE c CURSOR FOR
    SELECT i.price
    FROM item i, item_publisher ip
    WHERE i.id = ip.item_id AND ip.publisher_id = pid;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN c;
  w1: WHILE done = 0 DO
    FETCH c INTO p;
    IF done = 0 THEN
      IF p < 60.0 THEN
        SET n = n + 1;
      END IF;
    END IF;
  END WHILE w1;
  CLOSE c;
  RETURN n;
END
"""

Q7 = QuerySpec(
    name="q7",
    feature="the WHILE statement",
    routines=(_Q7_FN,),
    uses_cursor=True,
    build_query=lambda d: (
        "SELECT p.publisher_id, count_cheap_items(p.publisher_id) AS n "
        "FROM publisher p "
        f"WHERE p.publisher_id = '{d.probe_publisher_id}'"
    ),
)

# ---------------------------------------------------------------------------
# q7b — the REPEAT statement
# ---------------------------------------------------------------------------

_Q7B_FN = """
CREATE FUNCTION count_subject_pages (subj CHAR(30))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE pages INTEGER;
  DECLARE total INTEGER DEFAULT 0;
  DECLARE c CURSOR FOR
    SELECT number_of_pages FROM item WHERE subject = subj;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN c;
  r1: REPEAT
    FETCH c INTO pages;
    IF done = 0 THEN
      SET total = total + pages;
    END IF;
  UNTIL done = 1
  END REPEAT r1;
  CLOSE c;
  RETURN total;
END
"""

Q7B = QuerySpec(
    name="q7b",
    feature="the REPEAT statement",
    routines=(_Q7B_FN,),
    uses_cursor=True,
    build_query=lambda d: (
        "SELECT count_subject_pages('databases') AS total_pages"
    ),
)

# ---------------------------------------------------------------------------
# q8 — a loop name with the FOR statement
# ---------------------------------------------------------------------------

_Q8_FN = """
CREATE FUNCTION short_book_title (aid CHAR(10))
RETURNS CHAR(120)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE t CHAR(120);
  f1: FOR rec AS
    SELECT i.title AS title, i.number_of_pages AS pages
    FROM item i, item_author ia
    WHERE i.id = ia.item_id AND ia.author_id = aid
    ORDER BY i.title
  DO
    IF rec.pages < 400 THEN
      SET t = rec.title;
    END IF;
  END FOR f1;
  RETURN t;
END
"""

Q8 = QuerySpec(
    name="q8",
    feature="a loop name with the FOR statement",
    routines=(_Q8_FN,),
    build_query=lambda d: (
        "SELECT a.last_name FROM author a "
        f"WHERE a.author_id = '{d.probe_author_id}' "
        "AND short_book_title(a.author_id) LIKE '%Vol%'"
    ),
)

# ---------------------------------------------------------------------------
# q9 — a CALL within a procedure
# ---------------------------------------------------------------------------

_Q9_INNER = """
CREATE PROCEDURE publisher_items (pid CHAR(10))
LANGUAGE SQL
BEGIN
  SELECT i.title
  FROM item i, item_publisher ip
  WHERE i.id = ip.item_id AND ip.publisher_id = pid;
END
"""

_Q9_OUTER = """
CREATE PROCEDURE publisher_report (pid CHAR(10))
LANGUAGE SQL
BEGIN
  CALL publisher_items(pid);
END
"""

Q9 = QuerySpec(
    name="q9",
    feature="a CALL within a procedure",
    routines=(_Q9_INNER, _Q9_OUTER),
    build_query=lambda d: f"CALL publisher_report('{d.probe_publisher_id}')",
)

# ---------------------------------------------------------------------------
# q10 — an IF without a CURSOR
# ---------------------------------------------------------------------------

_Q10_FN = """
CREATE FUNCTION price_flag (iid CHAR(10))
RETURNS CHAR(10)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE p FLOAT;
  DECLARE flag CHAR(10);
  SET p = (SELECT price FROM item WHERE id = iid);
  IF p >= 50.0 THEN
    SET flag = 'expensive';
  ELSE
    SET flag = 'normal';
  END IF;
  RETURN flag;
END
"""

Q10 = QuerySpec(
    name="q10",
    feature="an IF without a CURSOR",
    routines=(_Q10_FN,),
    build_query=lambda d: (
        "SELECT i.id, price_flag(i.id) AS flag FROM item i "
        f"WHERE i.id = '{d.probe_item_id}'"
    ),
)

# ---------------------------------------------------------------------------
# q11 — creation of a temporary table
# ---------------------------------------------------------------------------

_Q11_PROC = """
CREATE PROCEDURE expensive_items (pid CHAR(10))
LANGUAGE SQL
BEGIN
  CREATE TEMPORARY TABLE pricey AS (
    SELECT i.title AS title, i.price AS price
    FROM item i, item_publisher ip
    WHERE i.id = ip.item_id
      AND ip.publisher_id = pid
      AND i.price > 40.0);
  SELECT title FROM pricey;
  DROP TABLE pricey;
END
"""

Q11 = QuerySpec(
    name="q11",
    feature="creation of a temporary table",
    routines=(_Q11_PROC,),
    build_query=lambda d: f"CALL expensive_items('{d.probe_publisher_id}')",
)

# ---------------------------------------------------------------------------
# q14 — a local cursor declaration with FETCH, OPEN, CLOSE
# ---------------------------------------------------------------------------

_Q14_FN = """
CREATE FUNCTION priciest_title (pid CHAR(10))
RETURNS CHAR(120)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE t CHAR(120);
  DECLARE done INTEGER DEFAULT 0;
  DECLARE c CURSOR FOR
    SELECT i.title
    FROM item i, item_publisher ip
    WHERE i.id = ip.item_id AND ip.publisher_id = pid
    ORDER BY i.price DESC, i.title;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN c;
  FETCH c INTO t;
  CLOSE c;
  IF done = 1 THEN
    SET t = 'none';
  END IF;
  RETURN t;
END
"""

Q14 = QuerySpec(
    name="q14",
    feature="a local cursor with FETCH, OPEN and CLOSE",
    routines=(_Q14_FN,),
    uses_cursor=True,
    build_query=lambda d: (
        f"SELECT priciest_title('{d.probe_publisher_id}') AS title"
    ),
)

# ---------------------------------------------------------------------------
# q17 — the LEAVE statement
# ---------------------------------------------------------------------------

_Q17_FN = """
CREATE FUNCTION find_subject_item (aid CHAR(10), subj CHAR(30))
RETURNS CHAR(120)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE iid CHAR(10);
  DECLARE t CHAR(120);
  DECLARE s CHAR(30);
  DECLARE res CHAR(120);
  DECLARE done INTEGER DEFAULT 0;
  DECLARE c CURSOR FOR
    SELECT i.id, i.title, i.subject
    FROM item i, item_author ia
    WHERE i.id = ia.item_id AND ia.author_id = aid
    ORDER BY i.id;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  SET res = 'none';
  OPEN c;
  l1: LOOP
    FETCH c INTO iid, t, s;
    IF done = 1 THEN
      LEAVE l1;
    END IF;
    IF s = subj THEN
      SET res = t;
      LEAVE l1;
    END IF;
  END LOOP l1;
  CLOSE c;
  RETURN res;
END
"""

Q17 = QuerySpec(
    name="q17",
    feature="the LEAVE statement",
    routines=(_Q17_FN,),
    uses_cursor=True,
    build_query=lambda d: (
        f"SELECT find_subject_item('{d.probe_author_id}', 'databases') AS title"
    ),
)

# ---------------------------------------------------------------------------
# q17b — a non-nested FETCH (PERST-inapplicable)
# ---------------------------------------------------------------------------

_Q17B_HAS_CANADIAN = """
CREATE FUNCTION has_canadian_author (iid CHAR(10))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE r INTEGER;
  SET r = (SELECT COUNT(*)
           FROM item_author ia, author a
           WHERE ia.item_id = iid
             AND a.author_id = ia.author_id
             AND a.country = 'Canada');
  IF r > 0 THEN
    RETURN 1;
  END IF;
  RETURN 0;
END
"""

_Q17B_IS_SMALL = """
CREATE FUNCTION is_small_book (iid CHAR(10))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE pages INTEGER;
  SET pages = (SELECT number_of_pages FROM item WHERE id = iid);
  IF pages < 250 THEN
    RETURN 1;
  END IF;
  RETURN 0;
END
"""

_Q17B_FN = """
CREATE FUNCTION canadian_small_books ()
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE iid CHAR(10);
  DECLARE n INTEGER DEFAULT 0;
  DECLARE done INTEGER DEFAULT 0;
  DECLARE all_items_cur CURSOR FOR SELECT id FROM item ORDER BY id;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN all_items_cur;
  FETCH all_items_cur INTO iid;
  w1: WHILE done = 0 DO
    IF has_canadian_author(iid) = 1 AND is_small_book(iid) = 1 THEN
      SET n = n + 1;
    END IF;
    FETCH all_items_cur INTO iid;
  END WHILE w1;
  CLOSE all_items_cur;
  RETURN n;
END
"""

Q17B = QuerySpec(
    name="q17b",
    feature="a non-nested FETCH (PERST-inapplicable)",
    routines=(_Q17B_HAS_CANADIAN, _Q17B_IS_SMALL, _Q17B_FN),
    perst_applicable=False,
    uses_cursor=True,
    build_query=lambda d: "SELECT canadian_small_books() AS n",
)

# ---------------------------------------------------------------------------
# q19 — a function called in the FROM clause
# ---------------------------------------------------------------------------

_Q19_FN = """
CREATE FUNCTION authors_of (iid CHAR(10))
RETURNS ROW(aid CHAR(10), fname CHAR(40)) ARRAY
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE result ROW(aid CHAR(10), fname CHAR(40)) ARRAY;
  INSERT INTO TABLE result (
    SELECT ia.author_id, a.first_name
    FROM item_author ia, author a
    WHERE ia.item_id = iid AND a.author_id = ia.author_id);
  RETURN result;
END
"""

Q19 = QuerySpec(
    name="q19",
    feature="a function called in the FROM clause",
    routines=(_Q19_FN,),
    build_query=lambda d: (
        "SELECT f.aid, f.fname "
        f"FROM TABLE(authors_of('{d.probe_item_id}')) AS f"
    ),
)

# ---------------------------------------------------------------------------
# q20 — a SET statement
# ---------------------------------------------------------------------------

_Q20_FN = """
CREATE FUNCTION discounted_price (iid CHAR(10))
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE p FLOAT;
  DECLARE d FLOAT;
  SET p = (SELECT price FROM item WHERE id = iid);
  SET d = p * 0.9;
  RETURN d;
END
"""

Q20 = QuerySpec(
    name="q20",
    feature="a SET statement",
    routines=(_Q20_FN,),
    build_query=lambda d: (
        "SELECT i.id FROM item i "
        f"WHERE i.id = '{d.probe_item_id}' "
        "AND discounted_price(i.id) < 100000.0"
    ),
)


ALL_QUERIES: list[QuerySpec] = [
    Q2, Q2B, Q3, Q5, Q6, Q7, Q7B, Q8, Q9, Q10, Q11, Q14, Q17, Q17B, Q19, Q20,
]

_BY_NAME = {q.name: q for q in ALL_QUERIES}


def get_query(name: str) -> QuerySpec:
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown query {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
