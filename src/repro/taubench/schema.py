"""The six τPSM tables (paper §VII-A1).

τBench shreds the XBench DC/SD book-catalog XML into these relations;
every one of them carries valid-time support in the temporal variants.
"""

from __future__ import annotations

# order matters: parents before relationship tables
TABLE_NAMES = [
    "publisher",
    "author",
    "item",
    "related_items",
    "item_author",
    "item_publisher",
]

DDL = {
    "publisher": """
        CREATE TABLE publisher (
            publisher_id CHAR(10),
            name CHAR(60),
            street CHAR(60),
            city CHAR(40),
            country CHAR(40),
            begin_time DATE,
            end_time DATE
        )
    """,
    "author": """
        CREATE TABLE author (
            author_id CHAR(10),
            first_name CHAR(40),
            last_name CHAR(40),
            country CHAR(40),
            date_of_birth DATE,
            begin_time DATE,
            end_time DATE
        )
    """,
    "item": """
        CREATE TABLE item (
            id CHAR(10),
            title CHAR(120),
            publisher_id CHAR(10),
            pub_date DATE,
            number_of_pages INTEGER,
            price FLOAT,
            subject CHAR(30),
            begin_time DATE,
            end_time DATE
        )
    """,
    "related_items": """
        CREATE TABLE related_items (
            item_id CHAR(10),
            related_id CHAR(10),
            begin_time DATE,
            end_time DATE
        )
    """,
    "item_author": """
        CREATE TABLE item_author (
            item_id CHAR(10),
            author_id CHAR(10),
            begin_time DATE,
            end_time DATE
        )
    """,
    "item_publisher": """
        CREATE TABLE item_publisher (
            item_id CHAR(10),
            publisher_id CHAR(10),
            begin_time DATE,
            end_time DATE
        )
    """,
}


def create_all(stratum) -> None:
    """Create the six tables with valid-time support on a stratum."""
    for table in TABLE_NAMES:
        stratum.create_temporal_table(DDL[table])
