"""Temporal SQL/PSM — reproduction of "Temporal Support for Persistent
Stored Modules" (Snodgrass, Gao, Zhang, Thomas; ICDE 2012).

Public API:

* :class:`repro.sqlengine.Database` — the conventional SQL/PSM engine.
* :class:`repro.temporal.TemporalStratum` — the temporal layer: register
  temporal tables, then execute Temporal SQL/PSM (``VALIDTIME`` /
  ``NONSEQUENCED VALIDTIME`` statement modifiers) with current,
  sequenced (MAX or PERST slicing) and nonsequenced semantics.
* :mod:`repro.taubench` — the τPSM benchmark: datasets DS1/DS2/DS3 and
  the sixteen queries q2..q20.
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  figures.
"""

__version__ = "1.0.0"

__all__ = ["Database", "TemporalStratum", "SlicingStrategy", "Period", "__version__"]

_EXPORTS = {
    "Database": ("repro.sqlengine", "Database"),
    "TemporalStratum": ("repro.temporal", "TemporalStratum"),
    "SlicingStrategy": ("repro.temporal", "SlicingStrategy"),
    "Period": ("repro.temporal.period", "Period"),
}


def __getattr__(name: str):
    """Lazy exports so importing subpackages stays cheap and acyclic."""
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
