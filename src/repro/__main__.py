"""``python -m repro`` starts the interactive Temporal SQL/PSM shell."""

import sys

from repro.cli import main

sys.exit(main())
