"""An interactive Temporal SQL/PSM shell.

Run ``python -m repro`` and type statements against a fresh stratum::

    taupsm> CREATE TABLE position (emp CHAR(20), title CHAR(30));
    taupsm> ALTER TABLE position ADD VALIDTIME;
    taupsm> INSERT INTO position (emp, title) VALUES ('mia', 'engineer');
    taupsm> VALIDTIME SELECT title FROM position;

Meta-commands (a leading dot):

=================  ========================================================
``.help``          this text
``.tables``        list tables with their temporal dimensions
``.routines``      list stored routines
``.now [DATE]``    show or set CURRENT_DATE
``.clock [DATE]``  show or set the transaction clock (``.clock none`` resets)
``.strategy S``    sequenced strategy: ``max`` / ``perst`` / ``seqset`` /
                   ``auto`` / ``cost`` (``SET STRATEGY S`` works as SQL too)
``.transform SQL`` show the conventional SQL a statement transforms into
``.load DS SIZE``  load a τPSM dataset (e.g. ``.load DS1 SMALL``)
``.stats``         engine counters
``.metrics``       the observability registry (hierarchical snapshot)
``.trace [on|off]``toggle tracing, or show the last statement's span tree
``.save``          checkpoint the durable database (``--db`` sessions)
``.checkpoint``    alias for ``.save``
``.timeout [S]``   show or set the per-statement deadline (``off`` clears)
``.verify``        scrub the durable store's WAL chain and snapshot
``.quit``          exit (checkpoints first under ``--db``)
=================  ========================================================

Statements may span lines; end them with a semicolon.  ``EXPLAIN
[ANALYZE] <stmt>`` works as a statement, and the same renderings are
available non-interactively::

    python -m repro explain --load DS1 SMALL "VALIDTIME SELECT ..."
    python -m repro trace   --load DS1 SMALL "VALIDTIME SELECT ..."

``--db PATH`` (shell and subcommands) opens a durable database at
``PATH``: committed statements are write-ahead logged, ``.save`` writes
a checkpoint, and the next ``--db PATH`` session recovers the state —
including temporal registrations and routines — even after a crash.

``python -m repro verify --db PATH [--quarantine]`` scrubs a durable
store *offline* (no recovery, no mutation): it walks the WAL CRC chain
and the snapshot header, reports the first torn or corrupt frame, and
with ``--quarantine`` moves the bad suffix to a sidecar file instead of
leaving it to be silently truncated at next open.  Add ``--against
HOST:PORT`` to additionally compare the local store against a running
node: per-table fingerprints are taken at a common commit sequence
number and any divergence is reported (exit 1).

``python -m repro serve [--db PATH] [--port P]`` starts the multi-client
asyncio server: each connection gets its own snapshot-isolated session
(see :mod:`repro.server`).  With ``--replicate-from HOST:PORT`` the
node comes up as a read-only hot standby of that primary: it bootstraps
from a shipped checkpoint, tails the primary's WAL, serves read-only
queries at its applied commit sequence number, and survives link chaos
by resuming from its local offset.  ``python -m repro promote --port P``
turns a standby into a writable primary.
"""

from __future__ import annotations

import sys
from typing import Any, Optional

from repro.obs.explain import ExplainResult
from repro.sqlengine.errors import SqlError
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.values import Date, Null
from repro.temporal import (
    SlicingStrategy,
    TemporalResult,
    TemporalStratum,
    parse_set_strategy,
)

PROMPT = "taupsm> "
CONTINUATION = "   ...> "


def format_value(value: Any) -> str:
    """One cell, SQL-style (NULL, ISO dates, compact floats)."""
    if value is Null:
        return "NULL"
    if isinstance(value, Date):
        return value.to_iso()
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def format_table(columns: list[str], rows: list[list[Any]]) -> str:
    """Render a result as an aligned text table."""
    rendered = [[format_value(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rendered
    )
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def format_result(result: Any) -> str:
    """Render any stratum result (DDL/DML/query/CALL) for the terminal."""
    if result is None:
        return "ok"
    if isinstance(result, ExplainResult):
        return result.text()
    if isinstance(result, int):
        return f"{result} row{'s' if result != 1 else ''} affected"
    if isinstance(result, TemporalResult):
        return format_table(result.columns, result.rows)
    if isinstance(result, ResultSet):
        return format_table(result.columns, result.rows)
    if isinstance(result, list):  # CALL result sets
        parts = [format_result(r) for r in result] or ["ok (no result sets)"]
        return "\n\n".join(parts)
    return str(result)


class Shell:
    """The REPL engine, separated from I/O for testability."""

    def __init__(
        self,
        stratum: Optional[TemporalStratum] = None,
        db_path: Optional[str] = None,
    ) -> None:
        if stratum is None:
            stratum = (
                TemporalStratum.open(db_path)
                if db_path is not None
                else TemporalStratum()
            )
        self.stratum = stratum
        self.strategy = SlicingStrategy.AUTO
        self.buffer: list[str] = []
        self.done = False

    @property
    def durable(self) -> bool:
        return self.stratum.db.durability is not None

    # -- line protocol ------------------------------------------------------

    @property
    def prompt(self) -> str:
        """The prompt to display (continuation inside a statement)."""
        return CONTINUATION if self.buffer else PROMPT

    def feed(self, line: str) -> Optional[str]:
        """Process one input line; returns text to print (or None)."""
        stripped = line.strip()
        if not self.buffer and stripped.startswith("."):
            return self.meta(stripped)
        if not stripped and not self.buffer:
            return None
        self.buffer.append(line)
        if not stripped.endswith(";"):
            return None
        statement = "\n".join(self.buffer)
        self.buffer = []
        return self.run_sql(statement)

    def run_sql(self, sql: str) -> str:
        """Execute one statement, returning rendered output or an error."""
        try:
            chosen = parse_set_strategy(sql)
            if chosen is not None:
                self.strategy = chosen
                return f"sequenced strategy = {chosen.value}"
            result = self.stratum.execute(sql, strategy=self.strategy)
        except SqlError as exc:
            return f"error: {exc}"
        suffix = ""
        if self.stratum.last_strategy is not None and isinstance(
            result, (TemporalResult, list)
        ):
            suffix = f"\n(strategy: {self.stratum.last_strategy.value})"
            self.stratum.last_strategy = None
        return format_result(result) + suffix

    # -- meta-commands --------------------------------------------------

    def meta(self, line: str) -> str:
        """Dispatch a dot-command."""
        parts = line.split(None, 1)
        command = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in (".quit", ".exit"):
            self.done = True
            if self.durable:
                try:
                    self.stratum.close()
                except SqlError as exc:
                    return f"error while checkpointing: {exc}\nbye"
                return "checkpointed; bye"
            return "bye"
        if command in (".save", ".checkpoint"):
            return self._save()
        if command == ".timeout":
            return self._timeout(argument)
        if command == ".verify":
            return self._verify()
        if command == ".help":
            return __doc__.split("Meta-commands")[1]
        if command == ".tables":
            return self._tables()
        if command == ".routines":
            return self._routines()
        if command == ".now":
            return self._now(argument)
        if command == ".clock":
            return self._clock(argument)
        if command == ".strategy":
            return self._strategy(argument)
        if command == ".transform":
            return self._transform(argument)
        if command == ".load":
            return self._load(argument)
        if command == ".stats":
            stats = self.stratum.db.stats.snapshot()
            return "\n".join(f"{k}: {v}" for k, v in stats.items())
        if command == ".metrics":
            return self._metrics()
        if command == ".trace":
            return self._trace(argument)
        return f"unknown meta-command {command} (try .help)"

    def _tables(self) -> str:
        lines = []
        for table in sorted(self.stratum.db.catalog.tables(), key=lambda t: t.name):
            dims = []
            if self.stratum.registry.is_temporal(table.name):
                dims.append("valid time")
            if self.stratum.tt_registry.is_temporal(table.name):
                dims.append("transaction time")
            dimension = f" [{', '.join(dims)}]" if dims else ""
            lines.append(f"{table.name} ({len(table)} rows){dimension}")
        return "\n".join(lines) if lines else "no tables"

    def _routines(self) -> str:
        lines = [
            f"{routine.kind.lower()} {routine.name}"
            for routine in sorted(
                self.stratum.db.catalog.routines(), key=lambda r: r.name
            )
        ]
        return "\n".join(lines) if lines else "no routines"

    def _now(self, argument: str) -> str:
        if argument:
            try:
                self.stratum.db.now = Date.from_iso(argument)
            except SqlError as exc:
                return f"error: {exc}"
        return f"CURRENT_DATE = {self.stratum.db.now.to_iso()}"

    def _clock(self, argument: str) -> str:
        if argument:
            if argument.lower() in ("none", "now", "reset"):
                self.stratum.transaction_clock = None
            else:
                try:
                    self.stratum.transaction_clock = Date.from_iso(argument)
                except SqlError as exc:
                    return f"error: {exc}"
        suffix = "" if self.stratum.transaction_clock else " (tracking CURRENT_DATE)"
        return f"transaction clock = {self.stratum.clock.to_iso()}{suffix}"

    def _strategy(self, argument: str) -> str:
        if argument:
            try:
                self.strategy = SlicingStrategy(argument.lower())
            except ValueError:
                return "strategy must be one of: max, perst, seqset, auto, cost"
        return f"sequenced strategy = {self.strategy.value}"

    def _transform(self, argument: str) -> str:
        if not argument:
            return "usage: .transform <temporal statement>"
        sql = argument.rstrip(";")
        try:
            strategy = (
                self.strategy
                if self.strategy is not SlicingStrategy.AUTO
                else SlicingStrategy.MAX
            )
            return self.stratum.transform(sql, strategy).to_sql()
        except SqlError as exc:
            return f"error: {exc}"

    def _metrics(self) -> str:
        # recomputed on demand: the columnar byte estimate of every table
        self.stratum.db.refresh_storage_gauges()
        flat = self.stratum.db.obs.flat()
        if not flat:
            return "no metrics recorded yet"
        lines = []
        for name in sorted(flat):
            value = flat[name]
            if isinstance(value, dict):
                detail = ", ".join(
                    f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in value.items()
                    if not isinstance(v, dict) and v is not None
                )
                lines.append(f"{name}: {detail}")
            else:
                lines.append(f"{name}: {value}")
        return "\n".join(lines)

    def _trace(self, argument: str) -> str:
        tracer = self.stratum.db.tracer
        if argument.lower() == "on":
            tracer.enabled = True
            return "tracing on"
        if argument.lower() == "off":
            tracer.enabled = False
            return "tracing off"
        if argument:
            return "usage: .trace [on|off]"
        if tracer.last_root is None:
            state = "on" if tracer.enabled else "off"
            return f"tracing is {state}; no trace captured yet"
        return tracer.last_root.render()

    def _timeout(self, argument: str) -> str:
        resilience = self.stratum.db.resilience
        if argument:
            if argument.lower() in ("off", "none"):
                resilience.statement_timeout = None
            else:
                try:
                    seconds = float(argument)
                except ValueError:
                    return "usage: .timeout [SECONDS|off]"
                if seconds <= 0:
                    return "usage: .timeout [SECONDS|off]"
                resilience.statement_timeout = seconds
        current = resilience.statement_timeout
        if current is None:
            return "statement timeout = off"
        return f"statement timeout = {current:g}s (SQLSTATE 57014 on expiry)"

    def _verify(self) -> str:
        if not self.durable:
            return "error: no durable database attached (start with --db PATH)"
        try:
            report = self.stratum.verify()
        except SqlError as exc:
            return f"error: {exc}"
        return report.render()

    def _save(self) -> str:
        if not self.durable:
            return "error: no durable database attached (start with --db PATH)"
        try:
            generation = self.stratum.checkpoint()
        except SqlError as exc:
            return f"error: {exc}"
        manager = self.stratum.db.durability
        return (
            f"checkpoint written to {manager.snapshot_path}"
            f" (generation {generation}, WAL truncated)"
        )

    def _load(self, argument: str) -> str:
        parts = argument.split()
        name = parts[0] if parts else "DS1"
        size = parts[1] if len(parts) > 1 else "SMALL"
        try:
            from repro.taubench import build_dataset

            dataset = build_dataset(name, size)
        except ValueError as exc:
            return f"error: {exc}"
        if self.durable:
            # keep the durable stratum: copy the dataset into it so the
            # load itself is WAL-logged and survives reopening
            from repro.taubench.io import copy_dataset_into

            try:
                dataset = copy_dataset_into(self.stratum, dataset)
            except SqlError as exc:
                return f"error: {exc}"
        else:
            self.stratum = dataset.stratum
        return (
            f"loaded {dataset.spec.key}: {dataset.total_rows()} rows across"
            f" six temporal tables (probe item {dataset.probe_item_id},"
            f" author {dataset.probe_author_id})"
        )


def _build_shell(load: Optional[str], db_path: Optional[str] = None) -> Shell:
    shell = Shell(db_path=db_path)
    if load:
        output = shell._load(load.replace("-", " "))
        if output.startswith("error:"):
            raise SystemExit(output)
        print(output, file=sys.stderr)
    return shell


def run_verify(argv: list[str]) -> int:
    """``repro verify``: scrub a durable store offline.

    Usage::

        python -m repro verify --db PATH [--quarantine]

    Exits 0 when the store is clean (or corruption was successfully
    quarantined), 1 otherwise.  Deliberately does *not* open the
    database: opening runs recovery, which would truncate the evidence
    this command exists to report.
    """
    import argparse

    from repro.sqlengine.resilience import verify_store

    parser = argparse.ArgumentParser(prog="repro verify")
    parser.add_argument(
        "--db", metavar="PATH", required=True,
        help="the durable database directory to scrub",
    )
    parser.add_argument(
        "--quarantine", action="store_true",
        help="move a corrupt WAL suffix to a sidecar file",
    )
    parser.add_argument(
        "--against", metavar="HOST:PORT",
        help="also fingerprint-compare this store against a running node"
             " at a common commit sequence number",
    )
    parser.add_argument(
        "--wait", type=float, default=5.0,
        help="seconds to wait for the commit sequence numbers to align"
             " (--against only; default 5)",
    )
    args = parser.parse_args(argv)
    report = verify_store(args.db, quarantine=args.quarantine)
    print(report.render())
    if not report.ok:
        return 1
    if args.against:
        return _verify_against(args.db, args.against, args.wait)
    return 0


def _verify_against(db_path: str, target: str, wait: float) -> int:
    """Cross-node divergence scrub: fingerprint the local store at the
    remote node's commit sequence number and diff per table.

    The local store must have reached the remote's sequence (the local
    side is replayed *capped* at the remote's seq, so a local store that
    is ahead — say the primary's, diffed against a lagging standby —
    compares fine; one that is behind cannot).  Within ``wait`` seconds
    the remote is re-polled, which rides out a standby that is still
    catching up on the other end.
    """
    import asyncio
    import time

    from repro.server.client import ReproClient
    from repro.server.replication import (
        fingerprint_divergence,
        fingerprints_at,
    )

    host, _, port_text = target.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: --against wants HOST:PORT, got {target!r}",
              file=sys.stderr)
        return 2

    async def fetch_remote() -> dict:
        client = await ReproClient.connect(host or "127.0.0.1", port,
                                           reconnect=False)
        try:
            response = await client.request({"op": "repl_fingerprint"},
                                            retryable=False)
        finally:
            await client.close()
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "fingerprint failed"))
        return response

    deadline = time.monotonic() + wait
    local = remote = None
    while True:
        try:
            remote = asyncio.run(fetch_remote())
        except (ConnectionError, OSError, RuntimeError) as exc:
            print(f"error: could not fingerprint {target}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            local = fingerprints_at(db_path, remote["commit_seq"])
        except SqlError as exc:
            # e.g. the local snapshot is already past the remote's seq
            print(f"error: cannot fingerprint {db_path} at seq"
                  f" {remote['commit_seq']}: {exc}", file=sys.stderr)
            return 2
        if local["commit_seq"] == remote["commit_seq"]:
            break
        if time.monotonic() >= deadline:
            print(
                f"error: no common commit sequence number within {wait:g}s:"
                f" local store is at seq {local['commit_seq']}, remote at"
                f" {remote['commit_seq']} — let the lagging side catch up",
                file=sys.stderr,
            )
            return 2
        time.sleep(0.2)
    divergence = fingerprint_divergence(local, remote)
    seq = remote["commit_seq"]
    if divergence:
        print(f"DIVERGED from {target} at commit seq {seq}:")
        for line in divergence:
            print(f"  {line}")
        return 1
    tables = len(local["tables"])
    print(
        f"consistent with {target} at commit seq {seq}:"
        f" {tables} table fingerprint{'s' if tables != 1 else ''} match"
    )
    return 0


def run_subcommand(argv: list[str]) -> int:
    """``repro explain`` / ``repro trace``: one statement, no REPL.

    Usage::

        python -m repro explain [--analyze] [--strategy S] [--load DS SIZE] SQL
        python -m repro trace   [--strategy S] [--load DS SIZE] SQL

    ``explain`` prints the EXPLAIN rendering (add ``--analyze`` to
    execute and append measured facts); ``trace`` executes the statement
    with tracing enabled and prints the span tree plus the metrics the
    run recorded.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="repro")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("explain", "trace"):
        p = sub.add_parser(name)
        p.add_argument("sql", help="the Temporal SQL/PSM statement")
        p.add_argument(
            "--load", nargs=2, metavar=("DS", "SIZE"),
            help="load a τPSM dataset first (e.g. --load DS1 SMALL)",
        )
        p.add_argument(
            "--db", metavar="PATH",
            help="open a durable database directory (recovers on open)",
        )
        p.add_argument(
            "--strategy", default="auto",
            choices=["auto", "max", "perst", "seqset", "cost"],
        )
        if name == "explain":
            p.add_argument("--analyze", action="store_true")
    args = parser.parse_args(argv)
    shell = _build_shell(
        " ".join(args.load) if args.load else None, db_path=args.db
    )
    stratum = shell.stratum
    strategy = SlicingStrategy(args.strategy)
    sql = args.sql.rstrip(";")
    try:
        if args.command == "explain":
            from repro.obs.explain import explain_statement
            from repro.sqlengine.parser import parse_statement

            result = explain_statement(
                stratum, parse_statement(sql), getattr(args, "analyze", False),
                strategy,
            )
            print(result.text())
        else:
            stratum.db.tracer.enabled = True
            stratum.execute(sql, strategy=strategy)
            root = stratum.db.tracer.last_root
            print(root.render() if root else "(no spans recorded)")
            print()
            print(shell._metrics())
    except SqlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        shell.stratum.db.close()
    return 0


def run_serve(argv: list[str]) -> int:
    """``repro serve``: the multi-client asyncio server.

    Usage::

        python -m repro serve [--db PATH] [--host H] [--port P]
                              [--load DS SIZE]
                              [--replicate-from HOST:PORT]

    Each connected client gets its own session with snapshot-isolated
    MVCC semantics; the wire protocol is length-prefixed JSON (see
    :mod:`repro.server`).  SIGINT/SIGTERM trigger a graceful drain:
    in-flight statements finish, sessions roll back, and a durable
    store is checkpointed before exit.

    ``--replicate-from HOST:PORT`` (requires ``--db``) brings the node
    up as a read-only hot standby: it bootstraps from the primary's
    checkpoint, tails its WAL, and serves SELECTs at the applied commit
    sequence number until ``repro promote`` lifts it to primary.  A
    still-replicating standby shuts down *without* checkpointing, so
    its local WAL stays a byte-prefix of the primary's and the next
    start resumes from that offset instead of re-bootstrapping.
    """
    import argparse
    import asyncio
    import signal

    from repro.server import ReproServer

    parser = argparse.ArgumentParser(prog="repro serve")
    parser.add_argument(
        "--db", metavar="PATH",
        help="serve a durable database directory (recovers on open)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    parser.add_argument(
        "--load", nargs=2, metavar=("DS", "SIZE"),
        help="load a τPSM dataset first (e.g. --load DS1 SMALL)",
    )
    parser.add_argument(
        "--replicate-from", metavar="HOST:PORT", dest="replicate_from",
        help="run as a read-only hot standby of this primary",
    )
    args = parser.parse_args(argv)
    primary = None
    if args.replicate_from:
        if not args.db:
            print("error: --replicate-from requires --db (the standby's"
                  " durable store)", file=sys.stderr)
            return 2
        if args.load:
            print("error: --replicate-from and --load conflict: a standby's"
                  " contents come from the primary", file=sys.stderr)
            return 2
        host, _, port_text = args.replicate_from.rpartition(":")
        try:
            primary = (host or "127.0.0.1", int(port_text))
        except ValueError:
            print(f"error: --replicate-from wants HOST:PORT, got"
                  f" {args.replicate_from!r}", file=sys.stderr)
            return 2
    shell = _build_shell(
        " ".join(args.load) if args.load else None, db_path=args.db
    )
    stratum = shell.stratum
    still_standby = False

    async def run() -> None:
        nonlocal still_standby
        server = ReproServer(stratum, host=args.host, port=args.port)
        host, port = await server.start()
        if primary is not None:
            from repro.server.replication import StandbyManager

            standby = StandbyManager(server, primary[0], primary[1])
            await standby.start()
            print(
                f"repro standby following {primary[0]}:{primary[1]}",
                flush=True,
            )
        print(f"repro server listening on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await server.serve_until(stop)
        # promote clears server.standby; if it is still set we are a
        # replica and must not checkpoint (that would bump the local
        # generation and force a re-bootstrap on restart)
        still_standby = server.standby is not None

    try:
        asyncio.run(run())
    finally:
        stratum.db.close(checkpoint=not still_standby)
    print("repro server stopped", flush=True)
    return 0


def run_promote(argv: list[str]) -> int:
    """``repro promote``: lift a running standby to writable primary.

    Usage::

        python -m repro promote [--host H] [--port P]

    The standby stops tailing, replays any buffered WAL tail, bumps its
    checkpoint generation, and starts accepting writes.  Prints the new
    generation and the commit sequence number the node was at when it
    took over.
    """
    import argparse
    import asyncio

    from repro.server.client import ReproClient

    parser = argparse.ArgumentParser(prog="repro promote")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    args = parser.parse_args(argv)

    async def promote() -> dict:
        client = await ReproClient.connect(args.host, args.port,
                                           reconnect=False)
        try:
            return await client.request({"op": "promote"}, retryable=False)
        finally:
            await client.close()

    try:
        response = asyncio.run(promote())
    except (ConnectionError, OSError) as exc:
        print(f"error: could not reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    if not response.get("ok"):
        print(f"error: {response.get('error', 'promotion failed')}",
              file=sys.stderr)
        return 1
    print(
        f"promoted: generation {response.get('generation')},"
        f" applied_csn {response.get('applied_csn')} — node is writable"
    )
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point: subcommand dispatch, or the interactive loop."""
    argv = argv if argv is not None else sys.argv[1:]
    if argv and argv[0] == "verify":
        return run_verify(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "promote":
        return run_promote(argv[1:])
    if argv and argv[0] in ("explain", "trace"):
        return run_subcommand(argv)
    import argparse

    parser = argparse.ArgumentParser(prog="repro")
    parser.add_argument(
        "--db", metavar="PATH",
        help="open a durable database directory (recovers on open;"
        " checkpointed on .quit)",
    )
    args = parser.parse_args(argv)
    shell = Shell(db_path=args.db)
    print("Temporal SQL/PSM shell — .help for commands, .quit to exit")
    if shell.durable:
        manager = shell.stratum.db.durability
        print(f"durable database at {manager.dir} (generation {manager.generation})")
    try:
        while not shell.done:
            try:
                line = input(shell.prompt)
            except EOFError:
                print()
                break
            output = shell.feed(line)
            if output is not None:
                print(output)
    except KeyboardInterrupt:
        print()
    finally:
        shell.stratum.db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
