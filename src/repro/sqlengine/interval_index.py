"""Endpoint-sorted interval index for temporal scan pruning.

The temporal transforms (§V) emit predicates of two shapes against a
table's ``(begin, end)`` period columns::

    t.begin <= P AND P < t.end          -- stab: rows alive at point P
    t.begin < E AND B < t.end           -- overlap with period [B, E)

Both reduce to *"begin at most X and end at least Y"* over the day
ordinals.  This index stores the rows whose period bounds are both
DATE values sorted by begin ordinal, with a segment tree of maximum
end ordinals on top, so ``search(begin_max, end_min)`` reports the
matching rows in O(log n + k) instead of scanning the heap.

Rows whose begin or end is not a :class:`Date` (NULL bounds) are left
out of the index: a comparison against NULL is never true, so such
rows can never satisfy the bound conjuncts and excluding them is safe.
The index only *prunes* — callers still evaluate the full WHERE over
the candidates — so results are identical to a linear scan, and
candidates are returned in table position order to keep row order
byte-for-byte identical too.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any

from repro.sqlengine.values import Date

_NEG_INF = -1  # below any valid day ordinal (Date.MIN_ORDINAL is 1)


class IntervalIndex:
    """Static index over one ``(begin, end)`` column pair of a table.

    Built from the table's current row list and cached against
    ``table.version`` (see :meth:`Table.interval_index`); never mutated
    in place.
    """

    __slots__ = ("entry_count", "total_rows", "_begins", "_positions", "_rows", "_ends", "_tree")

    def __init__(self, rows: list[list[Any]], begin_index: int, end_index: int) -> None:
        entries = []
        for position, row in enumerate(rows):
            begin = row[begin_index]
            end = row[end_index]
            if isinstance(begin, Date) and isinstance(end, Date):
                entries.append((begin.ordinal, position, end.ordinal, row))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        self.entry_count = len(entries)
        self.total_rows = len(rows)
        self._begins = [entry[0] for entry in entries]
        self._positions = [entry[1] for entry in entries]
        self._ends = [entry[2] for entry in entries]
        self._rows = [entry[3] for entry in entries]
        # segment tree over the begin-sorted entries; each node holds the
        # maximum end ordinal of its range so whole subtrees with every
        # end below the threshold are skipped during reporting
        size = 1
        while size < max(self.entry_count, 1):
            size *= 2
        tree = [_NEG_INF] * (2 * size)
        tree[size : size + self.entry_count] = self._ends
        for node in range(size - 1, 0, -1):
            tree[node] = max(tree[2 * node], tree[2 * node + 1])
        self._tree = tree

    # -- queries ------------------------------------------------------------

    def _search_hits(self, begin_max: int, end_min: int) -> list[int]:
        """Entry indexes with ``begin <= begin_max AND end >= end_min``,
        sorted by table position."""
        prefix = bisect_right(self._begins, begin_max)
        if prefix == 0:
            return []
        threshold = end_min - 1  # report entries with end > threshold
        size = len(self._tree) // 2
        hits: list[int] = []
        # iterative DFS over the tree, pruning subtrees that start at or
        # past the prefix or whose max end is at most the threshold
        stack = [(1, 0, size)]
        tree = self._tree
        while stack:
            node, lo, hi = stack.pop()
            if lo >= prefix or tree[node] <= threshold:
                continue
            if hi - lo == 1:
                hits.append(lo)
                continue
            mid = (lo + hi) // 2
            # push right first so the left child is processed first; the
            # ordering of `hits` does not matter (re-sorted by position)
            stack.append((2 * node + 1, mid, hi))
            stack.append((2 * node, lo, mid))
        hits.sort(key=self._positions.__getitem__)
        return hits

    def search(self, begin_max: int, end_min: int) -> list[list[Any]]:
        """Rows with ``begin <= begin_max AND end >= end_min`` (ordinals),
        in table position order."""
        rows = self._rows
        return [rows[i] for i in self._search_hits(begin_max, end_min)]

    def search_positions(self, begin_max: int, end_min: int) -> list[int]:
        """Table positions (ascending) of the rows :meth:`search` would
        return — the entry point for the vectorized selection path."""
        positions = self._positions
        return [positions[i] for i in self._search_hits(begin_max, end_min)]

    def stab(self, point: int) -> list[list[Any]]:
        """Rows alive at ``point``: ``begin <= point AND point < end``."""
        return self.search(point, point + 1)

    def overlaps(self, begin: int, end: int) -> list[list[Any]]:
        """Rows whose period overlaps ``[begin, end)``:
        ``begin < row.end AND row.begin < end``."""
        return self.search(end - 1, begin + 1)
