"""Crash recovery: load the snapshot, redo the committed WAL suffix.

Called once from ``Database.attach_durability`` while the WAL is still
detached from the transaction manager, so nothing applied here is
re-logged.  The sequence (classic ARIES-lite for a logical redo log):

1. **Snapshot** — rebuild catalog tables, views, routines, temporal
   registries, stratum bookkeeping and CURRENT_DATE from the latest
   valid ``snapshot.json`` (absent on a fresh database).
2. **Redo** — scan ``wal.log``.  Frames decode until the first torn,
   checksum-failing, or undecodable record (truncate-at-first-bad-record
   — see :func:`repro.sqlengine.wal.read_frames`).  Records are grouped
   into transactions by their ``begin``/``commit`` markers; only
   transactions whose ``commit`` frame survived are applied, in log
   order.  An uncommitted tail (crash mid-commit) is discarded.
3. **Truncate** — the file is cut back to the end of the last committed
   transaction, so the bad/uncommitted tail can never resurface.

A WAL whose header generation does not match the snapshot's is stale —
the crash happened between the snapshot rename and the WAL reset of a
checkpoint — and is discarded wholesale.

Replay applies raw storage mutations (rows, version counters) rather
than the logging primitives, exactly like undo application: recovery
must never re-log, re-fire an armed fault plan, or double-count
``engine.rows_written`` sources.
"""

from __future__ import annotations

from typing import Any

from repro.sqlengine.catalog import Routine
from repro.sqlengine.storage import Table
from repro.sqlengine.values import Date
from repro.sqlengine.wal import (
    WalError,
    decode_column,
    decode_row,
    decode_rows_any,
    decode_value,
    read_frames,
)


def recover(manager, replay_cap: "int | None" = None) -> dict[str, Any]:
    """Run recovery for ``manager``; returns a small report dict.

    ``replay_cap`` stops redo after the committed transaction whose
    sequence number equals the cap (later commits are left on disk, not
    applied, and nothing is truncated) — the cross-node scrubber uses it
    to materialize a store *as of* a common commit sequence.
    """
    from repro.sqlengine.checkpoint import load_snapshot

    db = manager.db
    tracer = db.tracer
    manager.replaying = True
    try:
        with tracer.span("recovery", dir=str(manager.dir)):
            with tracer.span("recovery.snapshot") as span:
                snapshot = load_snapshot(manager.snapshot_path)
                if snapshot is not None:
                    if (
                        replay_cap is not None
                        and snapshot.get("txn_counter", 0) > replay_cap
                    ):
                        raise WalError(
                            f"snapshot is already past replay cap {replay_cap}"
                            f" (txn_counter {snapshot.get('txn_counter', 0)})"
                        )
                    _apply_snapshot(manager, snapshot)
                    manager.generation = snapshot["generation"]
                    manager.txn_counter = snapshot.get("txn_counter", 0)
                span.set(
                    present=snapshot is not None,
                    generation=manager.generation,
                )
            with tracer.span("recovery.replay") as span:
                report = _replay_wal(manager, replay_cap)
                span.set(**report)
    finally:
        manager.replaying = False
    manager.open_for_append()
    return report


# ---------------------------------------------------------------------------
# snapshot application
# ---------------------------------------------------------------------------


def _apply_snapshot(manager, snapshot: dict[str, Any]) -> None:
    from repro.sqlengine.parser import parse_statement
    from repro.sqlengine import ast_nodes as ast

    db = manager.db
    catalog = db.catalog
    for spec in snapshot["tables"]:
        table = Table(spec["name"], [decode_column(c) for c in spec["columns"]])
        # current snapshots store rows transposed under "cols"; older
        # generations used a per-row list under "rows"
        table.rows = decode_rows_any(
            spec["cols"] if "cols" in spec else spec["rows"]
        )
        catalog.add_table(table, replace=True)
    for name, sql in snapshot["views"]:
        select = parse_statement(sql)
        if not isinstance(select, ast.Select):
            raise WalError(f"snapshot view {name!r} is not a SELECT")
        catalog.add_view(name, select, replace=True)
    for kind, sql in snapshot["routines"]:
        definition = parse_statement(sql)
        catalog.add_routine(Routine(kind=kind, definition=definition), replace=True)
    for dim, entries in snapshot.get("registries", {}).items():
        registry = _registry_for(manager, dim)
        from repro.temporal.schema import TemporalTableInfo

        for name, begin_column, end_column in entries:
            registry.add(
                TemporalTableInfo(
                    name=name, begin_column=begin_column, end_column=end_column
                ),
                catalog.get_table(name),
            )
    stratum_state = snapshot.get("stratum")
    if stratum_state is not None and manager.stratum is not None:
        manager.stratum._nonseq_only_routines = set(stratum_state["nonseq_only"])
        manager.stratum._inner_cp_requirements = {
            cp: list(tables) for cp, tables in stratum_state["inner_cp"].items()
        }
    db._now = Date(snapshot["now"])


def _registry_for(manager, dim: str):
    registry = manager.registries.get(dim)
    if registry is None:
        raise WalError(
            f"database contains temporal registry records ({dim!r}) —"
            " open it through TemporalStratum.open so the registries can"
            " be rebuilt"
        )
    return registry


# ---------------------------------------------------------------------------
# WAL replay
# ---------------------------------------------------------------------------


def _replay_wal(manager, replay_cap: "int | None" = None) -> dict[str, Any]:
    db = manager.db
    report = {
        "records_replayed": 0,
        "transactions_replayed": 0,
        "bytes_truncated": 0,
        "stale_generation": False,
    }
    if not manager.wal_path.exists():
        return report
    data = manager.wal_path.read_bytes()
    records, good_end = read_frames(data)
    if not records:
        # empty or header-corrupt WAL: start it over at our generation
        if data:
            report["bytes_truncated"] = len(data)
        manager.reset_wal(manager.generation)
        _report_metrics(db, report)
        return report
    header = records[0]
    if header[0] != "walhdr" or header[1] != manager.generation:
        # stale (pre-checkpoint) or foreign log — discard wholesale
        report["stale_generation"] = True
        report["bytes_truncated"] = len(data)
        manager.reset_wal(manager.generation)
        _report_metrics(db, report)
        return report

    pending: list[list] = []
    in_txn = False
    committed_end = _end_of_record(data, 0)  # just past the header frame
    offset = committed_end
    for record in records[1:]:
        record_end = _end_of_record(data, offset)
        tag = record[0]
        if tag == "begin":
            pending = []
            in_txn = True
        elif tag == "commit":
            if in_txn:
                if replay_cap is not None and record[1] > replay_cap:
                    pending = []
                    in_txn = False
                    break  # commits are sequence-ordered: nothing more applies
                for entry in pending:
                    _apply_record(manager, entry)
                    report["records_replayed"] += 1
                db._now = Date(record[2])
                manager.txn_counter = max(manager.txn_counter, record[1])
                report["transactions_replayed"] += 1
                committed_end = record_end
            pending = []
            in_txn = False
        elif in_txn:
            pending.append(record)
        # records outside begin/commit (cannot be produced by the
        # writer) are ignored rather than trusted
        offset = record_end
    dropped = len(data) - committed_end
    if dropped and replay_cap is None:
        report["bytes_truncated"] = dropped
        manager.truncate_wal_to(committed_end)
    _report_metrics(db, report)
    return report


def _end_of_record(data: bytes, offset: int) -> int:
    import struct

    length = struct.unpack_from("<I", data, offset)[0]
    return offset + 8 + length


def _report_metrics(db, report: dict[str, Any]) -> None:
    db.obs.inc("recovery.records_replayed", report["records_replayed"])
    db.obs.inc("recovery.transactions_replayed", report["transactions_replayed"])
    db.obs.inc("recovery.bytes_truncated", report["bytes_truncated"])
    db.obs.inc("recovery.runs", 1)


# ---------------------------------------------------------------------------
# record application
# ---------------------------------------------------------------------------


def _apply_record(manager, record: list) -> None:
    db = manager.db
    catalog = db.catalog
    tag = record[0]
    if tag == "ins":
        table = catalog.get_table(record[1])
        table.rows.append(decode_row(record[2]))
        table.version += 1
    elif tag == "upd":
        table = catalog.get_table(record[1])
        row = table.rows[record[2]]
        for index, value in record[3]:
            row[index] = decode_value(value)
        table.version += 1
    elif tag == "cell":
        table = catalog.get_table(record[1])
        table.rows[record[2]][record[3]] = decode_value(record[4])
        table.version += 1
    elif tag == "wrow":
        table = catalog.get_table(record[1])
        table.rows[record[2]][:] = decode_row(record[3])
        table.version += 1
    elif tag == "delpos":
        table = catalog.get_table(record[1])
        doomed = set(record[2])
        table.rows = [
            row for index, row in enumerate(table.rows) if index not in doomed
        ]
        table.version += 1
    elif tag == "setrows":
        table = catalog.get_table(record[1])
        table.rows = decode_rows_any(record[2])
        table.version += 1
    elif tag == "addcol":
        table = catalog.get_table(record[1])
        column = decode_column(record[2])
        default = decode_value(record[3])
        table.columns.append(column)
        table._index[column.name.lower()] = len(table.columns) - 1
        for row in table.rows:
            row.append(default)
        table.version += 1
    elif tag == "mktable":
        table = Table(record[1], [decode_column(c) for c in record[2]])
        table.rows = decode_rows_any(record[3])
        catalog.add_table(table, replace=True)
    elif tag == "rmtable":
        if catalog.has_table(record[1]):
            catalog.drop_table(record[1])
    elif tag == "mkview":
        from repro.sqlengine.parser import parse_statement

        catalog.add_view(record[1], parse_statement(record[2]), replace=True)
    elif tag == "rmview":
        if catalog.has_view(record[1]):
            catalog.drop_view(record[1])
    elif tag == "mkroutine":
        from repro.sqlengine.parser import parse_statement
        from repro.sqlengine import ast_nodes as ast

        definition = parse_statement(record[1])
        kind = (
            "FUNCTION"
            if isinstance(definition, ast.CreateFunction)
            else "PROCEDURE"
        )
        catalog.add_routine(
            Routine(kind=kind, definition=definition), replace=True
        )
    elif tag == "rmroutine":
        if catalog.has_routine(record[1]):
            catalog.drop_routine(record[1])
    elif tag == "troutine":
        if manager.stratum is not None:
            from repro.sqlengine.parser import parse_statement

            definition = parse_statement(record[1])
            if catalog.has_routine(definition.name):
                catalog.drop_routine(definition.name)
            manager.stratum.register_routine_ast(definition)
        # without a stratum the preceding mkroutine record already
        # installed the rewritten definition; nothing more to rebuild
    elif tag == "reg":
        from repro.temporal.schema import TemporalTableInfo

        registry = _registry_for(manager, record[1])
        registry.add(
            TemporalTableInfo(
                name=record[2], begin_column=record[3], end_column=record[4]
            ),
            catalog.get_table(record[2]),
        )
    elif tag == "unreg":
        _registry_for(manager, record[1]).remove(record[2])
    elif tag == "now":
        db._now = Date(record[1])
    else:
        raise WalError(f"unknown WAL record tag {tag!r}")
