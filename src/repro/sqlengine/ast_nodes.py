"""Abstract syntax tree for SQL + PSM.

Every node can render itself back to SQL text via ``to_sql()``; the
temporal stratum's transformations are AST-to-AST, and the rendered text
of a transformed statement is what a stratum in front of a real DBMS
would ship to the engine (compare the paper's Figures 5-11).

Statement nodes carry an optional ``modifier`` — the temporal statement
modifier (``VALIDTIME [bt, et]`` / ``NONSEQUENCED VALIDTIME``) parsed in
front of them.  The *conventional* executor refuses to run a statement
whose modifier is set; only the stratum consumes modifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from enum import Enum
from typing import Any, Optional, Sequence, Union

from repro.sqlengine.types import SqlType

# ---------------------------------------------------------------------------
# temporal statement modifier (syntax only; semantics live in repro.temporal)
# ---------------------------------------------------------------------------


class TemporalFlavor(Enum):
    SEQUENCED = "SEQUENCED"
    NONSEQUENCED = "NONSEQUENCED"


@dataclass(frozen=True)
class TemporalModifier:
    """``[NONSEQUENCED] VALIDTIME|TRANSACTIONTIME [(bt, et)]`` prefix.

    ``dimension`` is ``"VALID"`` or ``"TRANSACTION"``; the paper focuses
    on valid time and notes everything applies to transaction time too
    (§III) — the stratum supports both.
    """

    flavor: TemporalFlavor
    begin: Optional["Expression"] = None
    end: Optional["Expression"] = None
    dimension: str = "VALID"

    @property
    def keyword(self) -> str:
        return "VALIDTIME" if self.dimension == "VALID" else "TRANSACTIONTIME"

    def to_sql(self) -> str:
        if self.flavor is TemporalFlavor.NONSEQUENCED:
            return f"NONSEQUENCED {self.keyword}"
        if self.begin is not None:
            return f"{self.keyword} [{self.begin.to_sql()}, {self.end.to_sql()}]"
        return self.keyword


class Node:
    """Base class for all AST nodes."""

    def to_sql(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError(type(self).__name__)

    def copy(self, **changes: Any) -> "Node":
        """Shallow dataclass copy with field overrides."""
        return replace(self, **changes)  # type: ignore[type-var]

    def __str__(self) -> str:
        return self.to_sql()


def _indent(text: str, level: int) -> str:
    pad = "  " * level
    return "\n".join(pad + line if line else line for line in text.split("\n"))


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    pass


@dataclass
class Literal(Expression):
    """A literal value (int, float, str, bool, Date, or Null)."""

    value: Any

    def to_sql(self) -> str:
        from repro.sqlengine.values import Date, Null

        value = self.value
        if value is Null:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(value, Date):
            return f"DATE '{value.to_iso()}'"
        return str(value)


@dataclass
class Name(Expression):
    """A possibly-qualified name: a column reference or PSM variable.

    ``qualifier`` is the table name or alias (None for bare names).  The
    executor resolves bare names against the row environment first, then
    the enclosing routine frame's variables.
    """

    qualifier: Optional[str]
    name: str

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    @property
    def key(self) -> tuple:
        return (
            self.qualifier.lower() if self.qualifier else None,
            self.name.lower(),
        )


# operator precedence levels for rendering (higher binds tighter);
# predicates (BETWEEN/IN/LIKE/IS NULL) sit with the comparisons
_PREC_OR = 1
_PREC_AND = 2
_PREC_NOT = 3
_PREC_COMPARISON = 4
_PREC_ADDITIVE = 5
_PREC_MULTIPLICATIVE = 6
_PREC_UNARY = 7
_PREC_PRIMARY = 9

_BINARY_PRECEDENCE = {
    "OR": _PREC_OR,
    "AND": _PREC_AND,
    "=": _PREC_COMPARISON, "<>": _PREC_COMPARISON, "<": _PREC_COMPARISON,
    "<=": _PREC_COMPARISON, ">": _PREC_COMPARISON, ">=": _PREC_COMPARISON,
    "+": _PREC_ADDITIVE, "-": _PREC_ADDITIVE, "||": _PREC_ADDITIVE,
    "*": _PREC_MULTIPLICATIVE, "/": _PREC_MULTIPLICATIVE,
}


def _precedence(expr: "Expression") -> int:
    if isinstance(expr, BinaryOp):
        return _BINARY_PRECEDENCE[expr.op]
    if isinstance(expr, UnaryOp):
        return _PREC_NOT if expr.op == "NOT" else _PREC_UNARY
    if isinstance(
        expr,
        (BetweenPredicate, InPredicate, LikePredicate, IsNullPredicate,
         ExistsPredicate),
    ):
        return _PREC_COMPARISON
    return _PREC_PRIMARY


@dataclass
class BinaryOp(Expression):
    """Arithmetic (+ - * /), comparison (= <> < <= > >=), logic (AND OR),
    or string concatenation (||).

    Rendering is precedence-aware: operands that bind looser than this
    operator (or equally, on the non-associative side) are parenthesized
    so the emitted SQL reparses to the same expression — the guarantee
    the stratum's source-to-source output depends on.
    """

    op: str
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        own = _BINARY_PRECEDENCE[self.op]
        left_sql = self.left.to_sql()
        if _precedence(self.left) < own or (
            _precedence(self.left) == own and own == _PREC_COMPARISON
        ):
            left_sql = f"({left_sql})"
        right_sql = self.right.to_sql()
        right_prec = _precedence(self.right)
        if right_prec < own or (
            right_prec == own
            and (own == _PREC_COMPARISON or self.op in ("-", "/"))
        ):
            right_sql = f"({right_sql})"
        return f"{left_sql} {self.op} {right_sql}"


@dataclass
class UnaryOp(Expression):
    """Unary minus / plus / NOT."""

    op: str
    operand: Expression

    def to_sql(self) -> str:
        inner = self.operand.to_sql()
        if self.op == "NOT":
            # parenthesize AND/OR operands (NOT binds tighter); leave
            # comparisons and primaries bare so rendering is a fixed
            # point under reparsing
            if _precedence(self.operand) < _PREC_NOT:
                return f"NOT ({inner})"
            return f"NOT {inner}"
        if _precedence(self.operand) < _PREC_UNARY or inner.startswith("-"):
            # the startswith guard keeps "-(-1)" from lexing as a comment
            return f"{self.op}({inner})"
        return f"{self.op}{inner}"


@dataclass
class FunctionCall(Expression):
    """A call to a built-in, aggregate, or user-defined function."""

    name: str
    args: list[Expression]
    distinct: bool = False
    star: bool = False  # COUNT(*)

    def to_sql(self) -> str:
        if self.name.upper() in ("CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP"):
            return self.name.upper()
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(a.to_sql() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass
class Cast(Expression):
    expr: Expression
    target: SqlType

    def to_sql(self) -> str:
        return f"CAST({self.expr.to_sql()} AS {self.target.to_sql()})"


@dataclass
class CaseExpr(Expression):
    """CASE [operand] WHEN ... THEN ... [ELSE ...] END (expression form)."""

    operand: Optional[Expression]
    whens: list[tuple[Expression, Expression]]
    else_expr: Optional[Expression]

    def to_sql(self) -> str:
        parts = ["CASE"]
        if self.operand is not None:
            parts.append(self.operand.to_sql())
        for when, then in self.whens:
            parts.append(f"WHEN {when.to_sql()} THEN {then.to_sql()}")
        if self.else_expr is not None:
            parts.append(f"ELSE {self.else_expr.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass
class IsNullPredicate(Expression):
    expr: Expression
    negated: bool = False

    def to_sql(self) -> str:
        tail = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.expr.to_sql()} {tail}"


@dataclass
class BetweenPredicate(Expression):
    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"{self.expr.to_sql()} {op} {self.low.to_sql()}"
            f" AND {self.high.to_sql()}"
        )


@dataclass
class InPredicate(Expression):
    """IN with either a value list or a subquery."""

    expr: Expression
    items: Optional[list[Expression]] = None
    subquery: Optional["Select"] = None
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        if self.subquery is not None:
            return f"{self.expr.to_sql()} {op} ({self.subquery.to_sql()})"
        inner = ", ".join(i.to_sql() for i in (self.items or []))
        return f"{self.expr.to_sql()} {op} ({inner})"


@dataclass
class ExistsPredicate(Expression):
    subquery: "Select"
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{op} ({self.subquery.to_sql()})"


@dataclass
class LikePredicate(Expression):
    expr: Expression
    pattern: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.expr.to_sql()} {op} {self.pattern.to_sql()}"


@dataclass
class ScalarSubquery(Expression):
    """A parenthesised SELECT used as a value (must yield <= 1 row)."""

    select: "Select"

    def to_sql(self) -> str:
        return f"({self.select.to_sql()})"


@dataclass
class Parenthesized(Expression):
    """Explicit grouping, preserved so rendered SQL stays unambiguous."""

    expr: Expression

    def to_sql(self) -> str:
        return f"({self.expr.to_sql()})"


# ---------------------------------------------------------------------------
# query structure
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    """One entry of a select list; ``expr is None`` means ``*``/``t.*``."""

    expr: Optional[Expression]
    alias: Optional[str] = None
    star_qualifier: Optional[str] = None

    @property
    def is_star(self) -> bool:
        return self.expr is None

    def to_sql(self) -> str:
        if self.is_star:
            return f"{self.star_qualifier}.*" if self.star_qualifier else "*"
        text = self.expr.to_sql()
        if self.alias:
            text += f" AS {self.alias}"
        return text


class FromItem(Node):
    alias: Optional[str]


@dataclass
class TableRef(FromItem):
    name: str
    alias: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef(FromItem):
    select: "Select"
    alias: str

    def to_sql(self) -> str:
        return f"({self.select.to_sql()}) AS {self.alias}"


@dataclass
class TableFunctionRef(FromItem):
    """``TABLE(f(args)) AS alias`` — a table-valued function in FROM.

    Arguments may reference columns of tables listed earlier in the same
    FROM clause (lateral correlation), which is how DB2 lets PERST join
    a query with a routine's returned temporal table.
    """

    call: FunctionCall
    alias: str

    def to_sql(self) -> str:
        return f"TABLE({self.call.to_sql()}) AS {self.alias}"


@dataclass
class Join(FromItem):
    left: FromItem
    right: FromItem
    kind: str  # INNER, LEFT, CROSS
    condition: Optional[Expression] = None
    alias: Optional[str] = None

    def to_sql(self) -> str:
        text = f"{self.left.to_sql()} {self.kind} JOIN {self.right.to_sql()}"
        if self.condition is not None:
            text += f" ON {self.condition.to_sql()}"
        return text


@dataclass
class OrderItem(Node):
    expr: Expression
    descending: bool = False

    def to_sql(self) -> str:
        return self.expr.to_sql() + (" DESC" if self.descending else "")


class Statement(Node):
    """Base class for executable statements."""

    modifier: Optional[TemporalModifier] = None


@dataclass
class Select(Statement):
    items: list[SelectItem] = field(default_factory=list)
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    distinct: bool = False
    limit: Optional[int] = None
    set_op: Optional[str] = None  # UNION / UNION ALL / EXCEPT / INTERSECT
    set_rhs: Optional["Select"] = None
    modifier: Optional[TemporalModifier] = None

    def to_sql(self) -> str:
        parts = []
        if self.modifier is not None:
            parts.append(self.modifier.to_sql())
        parts.append("SELECT")
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(i.to_sql() for i in self.items))
        if self.from_items:
            parts.append("FROM " + ", ".join(f.to_sql() for f in self.from_items))
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.to_sql() for g in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        text = " ".join(parts)
        if self.set_op:
            text += f" {self.set_op} {self.set_rhs.to_sql()}"
        if self.order_by:
            text += " ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[list[str]] = None
    values: Optional[list[list[Expression]]] = None
    select: Optional[Select] = None
    modifier: Optional[TemporalModifier] = None

    def to_sql(self) -> str:
        prefix = f"{self.modifier.to_sql()} " if self.modifier else ""
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.select is not None:
            return f"{prefix}INSERT INTO {self.table}{cols} {self.select.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(e.to_sql() for e in row) + ")" for row in self.values or []
        )
        return f"{prefix}INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None
    alias: Optional[str] = None
    modifier: Optional[TemporalModifier] = None

    def to_sql(self) -> str:
        prefix = f"{self.modifier.to_sql()} " if self.modifier else ""
        target = f"{self.table} {self.alias}" if self.alias else self.table
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        text = f"{prefix}UPDATE {target} SET {sets}"
        if self.where is not None:
            text += f" WHERE {self.where.to_sql()}"
        return text


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expression] = None
    alias: Optional[str] = None
    modifier: Optional[TemporalModifier] = None

    def to_sql(self) -> str:
        prefix = f"{self.modifier.to_sql()} " if self.modifier else ""
        target = f"{self.table} {self.alias}" if self.alias else self.table
        text = f"{prefix}DELETE FROM {target}"
        if self.where is not None:
            text += f" WHERE {self.where.to_sql()}"
        return text


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef(Node):
    name: str
    type: SqlType
    primary_key: bool = False
    not_null: bool = False

    def to_sql(self) -> str:
        text = f"{self.name} {self.type.to_sql()}"
        if self.not_null:
            text += " NOT NULL"
        if self.primary_key:
            text += " PRIMARY KEY"
        return text


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    temporary: bool = False
    as_select: Optional[Select] = None
    primary_key: Optional[list[str]] = None

    def to_sql(self) -> str:
        kind = "TEMPORARY TABLE" if self.temporary else "TABLE"
        if self.as_select is not None:
            return f"CREATE {kind} {self.name} AS ({self.as_select.to_sql()})"
        cols = ", ".join(c.to_sql() for c in self.columns)
        if self.primary_key:
            cols += f", PRIMARY KEY ({', '.join(self.primary_key)})"
        return f"CREATE {kind} {self.name} ({cols})"


@dataclass
class AlterTable(Statement):
    """``ALTER TABLE name ADD VALIDTIME`` — temporal DDL.

    Parsed here so scripts can mix temporal DDL with ordinary SQL; only
    the stratum executes it (the conventional executor refuses).
    """

    name: str
    action: str = "ADD VALIDTIME"

    def to_sql(self) -> str:
        return f"ALTER TABLE {self.name} {self.action}"


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        return f"DROP TABLE {self.name}"


@dataclass
class CreateView(Statement):
    name: str
    select: Select = None

    def to_sql(self) -> str:
        return f"CREATE VIEW {self.name} AS ({self.select.to_sql()})"


@dataclass
class DropView(Statement):
    name: str

    def to_sql(self) -> str:
        return f"DROP VIEW {self.name}"


@dataclass
class TransactionStatement(Statement):
    """Transaction control: BEGIN / COMMIT / ROLLBACK / SAVEPOINT forms.

    ``action`` is one of ``"BEGIN"``, ``"COMMIT"``, ``"ROLLBACK"``,
    ``"SAVEPOINT"``, ``"ROLLBACK TO SAVEPOINT"``, ``"RELEASE
    SAVEPOINT"``; the savepoint forms carry ``name``.  Executed by the
    database's :class:`~repro.sqlengine.txn.TransactionManager`, never
    by the statement executor.
    """

    action: str
    name: Optional[str] = None

    def to_sql(self) -> str:
        if self.action == "BEGIN":
            return "START TRANSACTION"
        if self.name is not None:
            return f"{self.action} {self.name}"
        return self.action


@dataclass
class ExplainStatement(Statement):
    """``EXPLAIN [ANALYZE] <statement>``.

    Wraps any other statement (including temporally-modified ones, so
    ``EXPLAIN VALIDTIME SELECT ...`` parses).  Rendered by
    :mod:`repro.obs.explain`; with ``analyze`` the wrapped statement is
    actually executed under tracing and measured facts are appended.
    """

    statement: "Statement" = None  # type: ignore[assignment]
    analyze: bool = False

    def to_sql(self) -> str:
        keyword = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{keyword} {self.statement.to_sql()}"


# ---------------------------------------------------------------------------
# PSM routines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RowField:
    name: str
    type: SqlType

    def to_sql(self) -> str:
        return f"{self.name} {self.type.to_sql()}"


@dataclass(frozen=True)
class RowArrayType:
    """``ROW(f1 t1, ..., fn tn) ARRAY`` — a table-valued return type.

    PERST rewrites every sequenced function to return one of these: the
    routine's time-varying result as an explicit temporal table.
    """

    fields: tuple[RowField, ...]

    def to_sql(self) -> str:
        inner = ", ".join(f.to_sql() for f in self.fields)
        return f"ROW({inner}) ARRAY"

    @property
    def column_names(self) -> list[str]:
        return [f.name for f in self.fields]


ReturnType = Union[SqlType, RowArrayType]


@dataclass
class ParamDef(Node):
    name: str
    type: SqlType
    mode: str = "IN"  # IN / OUT / INOUT

    def to_sql(self) -> str:
        if self.mode != "IN":
            return f"{self.mode} {self.name} {self.type.to_sql()}"
        return f"{self.name} {self.type.to_sql()}"


@dataclass
class CreateFunction(Statement):
    name: str
    params: list[ParamDef] = field(default_factory=list)
    returns: ReturnType = None
    body: "PsmStatement" = None
    reads_sql_data: bool = True
    deterministic: bool = False

    def to_sql(self) -> str:
        params = ", ".join(p.to_sql() for p in self.params)
        lines = [f"CREATE FUNCTION {self.name} ({params})"]
        lines.append(f"RETURNS {self.returns.to_sql()}")
        if self.reads_sql_data:
            lines.append("READS SQL DATA")
        lines.append("LANGUAGE SQL")
        lines.append(self.body.to_sql())
        return "\n".join(lines)


@dataclass
class CreateProcedure(Statement):
    name: str
    params: list[ParamDef] = field(default_factory=list)
    body: "PsmStatement" = None

    def to_sql(self) -> str:
        params = ", ".join(p.to_sql() for p in self.params)
        return f"CREATE PROCEDURE {self.name} ({params})\nLANGUAGE SQL\n{self.body.to_sql()}"


@dataclass
class DropRoutine(Statement):
    kind: str  # FUNCTION or PROCEDURE
    name: str

    def to_sql(self) -> str:
        return f"DROP {self.kind} {self.name}"


# ---------------------------------------------------------------------------
# PSM statements
# ---------------------------------------------------------------------------


class PsmStatement(Statement):
    pass


@dataclass
class DeclareVariable(PsmStatement):
    names: list[str]
    type: SqlType = None
    default: Optional[Expression] = None
    # PERST rewrites scalar variables into temporal variable tables; the
    # declaration then carries the row-array shape instead of a scalar type.
    array_type: Optional[RowArrayType] = None

    def to_sql(self) -> str:
        names = ", ".join(self.names)
        type_sql = (
            self.array_type.to_sql() if self.array_type is not None else self.type.to_sql()
        )
        text = f"DECLARE {names} {type_sql}"
        if self.default is not None:
            text += f" DEFAULT {self.default.to_sql()}"
        return text + ";"


@dataclass
class DeclareCursor(PsmStatement):
    name: str
    select: Select = None

    def to_sql(self) -> str:
        return f"DECLARE {self.name} CURSOR FOR {self.select.to_sql()};"


@dataclass
class DeclareHandler(PsmStatement):
    kind: str  # CONTINUE or EXIT
    condition: str  # NOT FOUND, SQLEXCEPTION
    action: "PsmStatement" = None

    def to_sql(self) -> str:
        return (
            f"DECLARE {self.kind} HANDLER FOR {self.condition}"
            f" {self.action.to_sql()};"
        )


@dataclass
class Compound(PsmStatement):
    """BEGIN [ATOMIC] ... END, optionally labelled."""

    declarations: list[PsmStatement] = field(default_factory=list)
    statements: list[Statement] = field(default_factory=list)
    label: Optional[str] = None
    atomic: bool = False

    def to_sql(self) -> str:
        head = f"{self.label}: BEGIN" if self.label else "BEGIN"
        if self.atomic:
            head += " ATOMIC"
        body: list[str] = []
        for decl in self.declarations:
            body.append(_indent(decl.to_sql(), 1))
        for stmt in self.statements:
            text = stmt.to_sql()
            if not text.endswith(";"):
                text += ";"
            body.append(_indent(text, 1))
        tail = f"END {self.label}" if self.label else "END"
        return "\n".join([head] + body + [tail])


@dataclass
class SetStatement(PsmStatement):
    """``SET v = expr`` or row form ``SET (a, b) = (SELECT ...)``."""

    targets: list[str]
    value: Expression = None

    def to_sql(self) -> str:
        if len(self.targets) == 1:
            return f"SET {self.targets[0]} = {self.value.to_sql()}"
        return f"SET ({', '.join(self.targets)}) = {self.value.to_sql()}"


@dataclass
class IfStatement(PsmStatement):
    branches: list[tuple[Expression, list[Statement]]] = field(default_factory=list)
    else_branch: Optional[list[Statement]] = None

    def to_sql(self) -> str:
        lines: list[str] = []
        for i, (cond, stmts) in enumerate(self.branches):
            word = "IF" if i == 0 else "ELSEIF"
            lines.append(f"{word} {cond.to_sql()} THEN")
            lines.extend(_indent(_semi(s), 1) for s in stmts)
        if self.else_branch is not None:
            lines.append("ELSE")
            lines.extend(_indent(_semi(s), 1) for s in self.else_branch)
        lines.append("END IF")
        return "\n".join(lines)


@dataclass
class CaseStatement(PsmStatement):
    operand: Optional[Expression] = None
    whens: list[tuple[Expression, list[Statement]]] = field(default_factory=list)
    else_branch: Optional[list[Statement]] = None

    def to_sql(self) -> str:
        head = "CASE" if self.operand is None else f"CASE {self.operand.to_sql()}"
        lines = [head]
        for when, stmts in self.whens:
            lines.append(_indent(f"WHEN {when.to_sql()} THEN", 1))
            lines.extend(_indent(_semi(s), 2) for s in stmts)
        if self.else_branch is not None:
            lines.append(_indent("ELSE", 1))
            lines.extend(_indent(_semi(s), 2) for s in self.else_branch)
        lines.append("END CASE")
        return "\n".join(lines)


@dataclass
class WhileStatement(PsmStatement):
    condition: Expression = None
    body: list[Statement] = field(default_factory=list)
    label: Optional[str] = None

    def to_sql(self) -> str:
        head = f"{self.label}: " if self.label else ""
        lines = [f"{head}WHILE {self.condition.to_sql()} DO"]
        lines.extend(_indent(_semi(s), 1) for s in self.body)
        lines.append("END WHILE" + (f" {self.label}" if self.label else ""))
        return "\n".join(lines)


@dataclass
class RepeatStatement(PsmStatement):
    body: list[Statement] = field(default_factory=list)
    until: Expression = None
    label: Optional[str] = None

    def to_sql(self) -> str:
        head = f"{self.label}: " if self.label else ""
        lines = [f"{head}REPEAT"]
        lines.extend(_indent(_semi(s), 1) for s in self.body)
        lines.append(f"UNTIL {self.until.to_sql()}")
        lines.append("END REPEAT" + (f" {self.label}" if self.label else ""))
        return "\n".join(lines)


@dataclass
class ForStatement(PsmStatement):
    """``[label:] FOR var AS [cursor CURSOR FOR] select DO ... END FOR``."""

    loop_var: str = ""
    select: Select = None
    body: list[Statement] = field(default_factory=list)
    cursor_name: Optional[str] = None
    label: Optional[str] = None

    def to_sql(self) -> str:
        head = f"{self.label}: " if self.label else ""
        cursor = f"{self.cursor_name} CURSOR FOR " if self.cursor_name else ""
        lines = [f"{head}FOR {self.loop_var} AS {cursor}{self.select.to_sql()} DO"]
        lines.extend(_indent(_semi(s), 1) for s in self.body)
        lines.append("END FOR" + (f" {self.label}" if self.label else ""))
        return "\n".join(lines)


@dataclass
class LoopStatement(PsmStatement):
    body: list[Statement] = field(default_factory=list)
    label: Optional[str] = None

    def to_sql(self) -> str:
        head = f"{self.label}: " if self.label else ""
        lines = [f"{head}LOOP"]
        lines.extend(_indent(_semi(s), 1) for s in self.body)
        lines.append("END LOOP" + (f" {self.label}" if self.label else ""))
        return "\n".join(lines)


@dataclass
class LeaveStatement(PsmStatement):
    label: str

    def to_sql(self) -> str:
        return f"LEAVE {self.label}"


@dataclass
class SignalStatement(PsmStatement):
    """``SIGNAL SQLSTATE 'xxxxx' [SET MESSAGE_TEXT = '...']``.

    Raises a :class:`~repro.sqlengine.errors.SignalError` carrying the
    state, catchable by a matching SQLSTATE handler or a generic
    SQLEXCEPTION handler.  Valid both inside routine bodies and as a
    top-level statement.
    """

    sqlstate: str
    message: Optional[str] = None

    def to_sql(self) -> str:
        sql = f"SIGNAL SQLSTATE '{self.sqlstate}'"
        if self.message is not None:
            escaped = self.message.replace("'", "''")
            sql += f" SET MESSAGE_TEXT = '{escaped}'"
        return sql


@dataclass
class IterateStatement(PsmStatement):
    label: str

    def to_sql(self) -> str:
        return f"ITERATE {self.label}"


@dataclass
class ReturnStatement(PsmStatement):
    value: Optional[Expression] = None

    def to_sql(self) -> str:
        if self.value is None:
            return "RETURN"
        return f"RETURN {self.value.to_sql()}"


@dataclass
class CallStatement(PsmStatement):
    name: str
    args: list[Expression] = field(default_factory=list)
    modifier: Optional[TemporalModifier] = None

    def to_sql(self) -> str:
        prefix = f"{self.modifier.to_sql()} " if self.modifier else ""
        inner = ", ".join(a.to_sql() for a in self.args)
        return f"{prefix}CALL {self.name}({inner})"


@dataclass
class OpenCursor(PsmStatement):
    name: str

    def to_sql(self) -> str:
        return f"OPEN {self.name}"


@dataclass
class FetchCursor(PsmStatement):
    name: str
    targets: list[str] = field(default_factory=list)

    def to_sql(self) -> str:
        return f"FETCH {self.name} INTO {', '.join(self.targets)}"


@dataclass
class CloseCursor(PsmStatement):
    name: str

    def to_sql(self) -> str:
        return f"CLOSE {self.name}"


@dataclass
class SelectInto(PsmStatement):
    """``SELECT ... INTO v1, v2 FROM ...`` inside a routine body."""

    select: Select = None
    targets: list[str] = field(default_factory=list)

    def to_sql(self) -> str:
        base = self.select.to_sql()
        # inject INTO after the select list for display purposes
        items = ", ".join(i.to_sql() for i in self.select.items)
        head = "SELECT DISTINCT " if self.select.distinct else "SELECT "
        rest = base.split(" FROM ", 1)
        into = f" INTO {', '.join(self.targets)}"
        if len(rest) == 2:
            return f"{head}{items}{into} FROM {rest[1]}"
        return f"{head}{items}{into}"


def _semi(stmt: Statement) -> str:
    text = stmt.to_sql()
    return text if text.endswith(";") else text + ";"


# ---------------------------------------------------------------------------
# generic child-walking (used by static analysis)
# ---------------------------------------------------------------------------


def iter_children(node: Any):
    """Yield every Node reachable one level below ``node``.

    Walks dataclass fields, lists and tuples; useful for generic traversal
    in the temporal analysis passes.
    """
    if isinstance(node, Node):
        candidates = [getattr(node, f.name) for f in fields(node)]
    elif isinstance(node, (list, tuple)):
        candidates = list(node)
    else:
        return
    for value in candidates:
        if isinstance(value, Node):
            yield value
        elif isinstance(value, (list, tuple)):
            for sub in value:
                if isinstance(sub, Node):
                    yield sub
                elif isinstance(sub, (list, tuple)):
                    yield from iter_children(sub)


def walk(node: Node):
    """Depth-first pre-order walk over all Nodes under ``node``."""
    yield node
    for child in iter_children(node):
        yield from walk(child)
