"""The `Database` facade: parse + execute conventional SQL/PSM.

Also owns :class:`EngineStats`, the instrumentation the benchmark
harness reports: per-routine invocation counts, statements executed and
rows written are the machine-independent cost drivers behind the
paper's MAX-vs-PERST comparison.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.executor import Executor, ResultSet
from repro.sqlengine.mvcc import MvccManager
from repro.sqlengine.parser import parse_script, parse_statement
from repro.sqlengine.resilience import ResilienceManager
from repro.sqlengine.txn import TransactionManager
from repro.sqlengine.values import Date


class EngineStats:
    """Counters accumulated across statement executions.

    Hot counters stay plain ints; row mutations are routed into the
    metrics registry under ``engine.rows_written.<source>`` so every
    write path (insert/update/delete, sequenced rewrites, TT
    maintenance, bulk loads) is attributed.  ``rows_written`` remains as
    a deprecated read-only alias for the sum across sources.
    """

    ROWS_WRITTEN_PREFIX = "engine.rows_written."
    ROWS_SCANNED = "engine.rows_scanned"

    def __init__(self, obs: Optional[MetricsRegistry] = None) -> None:
        self.obs = obs if obs is not None else MetricsRegistry()
        self.statements = 0
        self.total_routine_calls = 0
        self.routine_calls: dict[str, int] = {}
        self.call_depth = 0  # transient: current execution nesting
        self.plans_compiled = 0
        self.plan_cache_hits = 0
        self.transforms = 0
        self.transform_cache_hits = 0
        self.rollbacks = 0

    def count_rows(self, n: int, source: str = "insert") -> None:
        """Attribute ``n`` written rows to one mutation ``source``."""
        self.obs.inc(self.ROWS_WRITTEN_PREFIX + source, n)

    @property
    def rows_written(self) -> int:
        """Deprecated: total across ``engine.rows_written.*`` sources."""
        return self.obs.sum_prefix(self.ROWS_WRITTEN_PREFIX)

    @property
    def rows_scanned(self) -> int:
        return self.obs.value(self.ROWS_SCANNED)

    def reset(self) -> None:
        self.statements = 0
        self.total_routine_calls = 0
        self.routine_calls = {}
        self.call_depth = 0
        self.plans_compiled = 0
        self.plan_cache_hits = 0
        self.transforms = 0
        self.transform_cache_hits = 0
        self.rollbacks = 0
        self.obs.reset_prefix("engine.")

    def snapshot(self) -> dict[str, Any]:
        return {
            "statements": self.statements,
            "rows_written": self.rows_written,
            "rows_written_by_source": {
                name[len(self.ROWS_WRITTEN_PREFIX):]: value
                for name, value in self.obs.flat().items()
                if name.startswith(self.ROWS_WRITTEN_PREFIX)
            },
            "rows_scanned": self.rows_scanned,
            "total_routine_calls": self.total_routine_calls,
            "routine_calls": dict(self.routine_calls),
            "plans_compiled": self.plans_compiled,
            "plan_cache_hits": self.plan_cache_hits,
            "transforms": self.transforms,
            "transform_cache_hits": self.transform_cache_hits,
            "rollbacks": self.rollbacks,
        }


class PlanCache:
    """Statement-plan cache keyed by AST identity.

    An entry holds a strong reference to the statement node, so a
    recycled ``id()`` can never alias a different statement, and records
    the catalog schema version the plan was bound against — any DDL
    (non-temporary tables, views, routines) invalidates on fetch.  A
    ``None`` plan marks a statement the planner cannot handle, sparing
    re-analysis on every execution.
    """

    __slots__ = ("_entries",)

    CAPACITY = 512

    def __init__(self) -> None:
        self._entries: dict[int, tuple] = {}

    def fetch(self, stmt: ast.Statement, schema_version: int) -> tuple[bool, Any]:
        entry = self._entries.get(id(stmt))
        if entry is None:
            return False, None
        node, version, plan = entry
        if node is not stmt or version != schema_version:
            del self._entries[id(stmt)]
            return False, None
        return True, plan

    def store(self, stmt: ast.Statement, schema_version: int, plan: Any) -> None:
        if len(self._entries) >= self.CAPACITY:
            self._entries.clear()
        self._entries[id(stmt)] = (stmt, schema_version, plan)

    def drop(self, stmt: ast.Statement) -> None:
        self._entries.pop(id(stmt), None)

    def evict_newer(self, schema_version: int) -> None:
        """Drop entries bound after ``schema_version``.

        Called after a rollback restores the catalog's version counter:
        an entry stored during the rolled-back window would otherwise
        falsely revalidate once later DDL pushes the counter back up to
        the version it was bound at.
        """
        stale = [
            key for key, (_, version, _) in self._entries.items()
            if version > schema_version
        ]
        for key in stale:
            del self._entries[key]

    def clear(self) -> None:
        self._entries.clear()


class Database:
    """An in-memory SQL/PSM database.

    ``now`` is the value of CURRENT_DATE, settable so current-semantics
    queries are reproducible; it defaults to 2011-01-01 (inside the
    benchmark datasets' two-year window).
    """

    def __init__(self, now: Optional[Date] = None) -> None:
        self.catalog = Catalog()
        # observability: one metrics registry + tracer per database;
        # EngineStats keeps its hot counters but reports row mutations
        # into the registry (DESIGN.md §3.3)
        self.obs = MetricsRegistry()
        self.tracer = Tracer()
        self.stats = EngineStats(self.obs)
        # durability: None until attach_durability wires a WAL +
        # checkpoint directory (DESIGN.md §3.4); must exist before the
        # `now` property setter runs below
        self.durability = None
        self._now = now if now is not None else Date.from_ymd(2011, 1, 1)
        self._executor = Executor(self)
        # per-top-level-statement memo for TABLE(f(args)) invocations:
        # routines are deterministic over data that does not change while
        # one statement runs, so a lateral join may reuse results for
        # repeated argument tuples (what a DBMS optimizer does).
        # `memoize_table_functions` exists for the ablation benchmark.
        self.table_function_cache: dict = {}
        self.memoize_table_functions = True
        # bind/plan layer: compiled statement plans and expression
        # closures, both invalidated by catalog schema changes.
        # `plan_caching_enabled` is the ablation switch for the whole
        # two-phase path (plan cache, expression cache, and the
        # stratum's transform cache consult it).
        self.plan_cache = PlanCache()
        self.expr_cache: dict = {}
        self.plan_caching_enabled = True
        # interval-index scan pruning over declared (begin, end) period
        # pairs; `interval_indexing_enabled` is the ablation switch.
        # `cp_cache` memoizes the last constant-period materialization
        # per cp table (source table versions + context), letting the
        # stratum skip the rebuild when nothing changed.
        self.interval_indexing_enabled = True
        self.cp_cache: dict = {}
        # vectorized WHERE evaluation over the derived column stores
        # (storage.ColumnStore + exprcompile batch kernels);
        # `vectorized_filtering_enabled` is the ablation switch — off,
        # every scan runs the row-at-a-time compiled predicate.
        self.vectorized_filtering_enabled = True
        # MVCC: snapshot pins, write claims, version-chain GC (DESIGN.md
        # §3.8); fully dormant — one bool per mutation — until a second
        # session registers.  Must exist before any TransactionManager.
        self.mvcc = MvccManager(self)
        # undo-log transaction manager: statement guards, explicit
        # BEGIN/COMMIT/ROLLBACK, savepoints, fault injection.  `txn` is
        # the *active* session's manager; `root_txn` is the built-in
        # session direct API callers use.  Objects whose `txn` pointer
        # must follow session switches (the catalog, and the temporal
        # registries once a stratum binds) register in `txn_followers`.
        self.txn = TransactionManager(self)
        self.root_txn = self.txn
        self.catalog.txn = self.txn
        self.txn_followers: list[Any] = [self.catalog]
        self._session_txns: list[TransactionManager] = []
        # resilience: query watchdog + resource governor (DESIGN.md
        # §3.7); disarmed by default, so hot paths pay one bool check
        self.resilience = ResilienceManager(self)

    # -- sessions (MVCC) -------------------------------------------------

    def create_session(self, name: Optional[str] = None) -> TransactionManager:
        """Register a new session: its own :class:`TransactionManager`
        with its own snapshot, write set, and redo buffer.

        Only allowed while no write claims are in flight (the committed
        pre-image of an already-claimed table cannot be captured
        retroactively); the server retries registration until the store
        is quiescent.  Statement execution across sessions must be
        serialized by the caller — :meth:`activate_txn` switches the
        whole engine's transaction pointer.
        """
        if not self.mvcc.multi and (self.txn.explicit or self.txn.marks):
            raise ExecutionError(
                "cannot create a session while a transaction is open"
            )
        txn = TransactionManager(
            self, name=name or f"session-{len(self._session_txns) + 1}"
        )
        txn.wal = self.root_txn.wal
        # the undo log is per-session, but rollback cache eviction is
        # global: share the hook list so a stratum's transform purge
        # runs no matter which session rolled back
        txn.rollback_hooks = self.root_txn.rollback_hooks
        self.mvcc.register_session()
        self._session_txns.append(txn)
        return txn

    def close_session(self, txn: TransactionManager) -> None:
        """Roll back anything the session left open and unregister it."""
        if txn is self.root_txn:
            raise ExecutionError("the root session cannot be closed")
        if txn not in self._session_txns:
            return  # already closed
        previous = self.txn
        self.activate_txn(txn)
        try:
            if txn.explicit:
                txn.rollback()  # releases claims and the snapshot pin
            else:
                if txn.write_set:
                    self.mvcc.release_writes(txn, committed=False)
                self.mvcc.unpin(txn)
        finally:
            self._session_txns.remove(txn)
            self.mvcc.unregister_session()
            self.activate_txn(
                previous if previous is not txn else self.root_txn
            )

    def activate_txn(self, txn: TransactionManager) -> None:
        """Make ``txn`` the engine's active session: every component
        that consults a ``txn`` pointer (catalog, registries, tables)
        follows, so the undo log, WAL buffer, claims, and snapshot all
        belong to the session that is executing."""
        if self.txn is txn:
            return
        self.txn = txn
        for follower in self.txn_followers:
            follower.txn = txn
        for table in self.catalog._tables.values():
            table.txn = txn

    def read_table(self, name: str):
        """The version of a catalog table visible to the active
        session's snapshot (the live table while single-session)."""
        table = self.catalog.get_table(name)
        if self.mvcc.multi:
            return self.mvcc.read_view(table, self.txn)
        return table

    # -- observability ---------------------------------------------------

    def refresh_storage_gauges(self) -> int:
        """Recompute the ``engine.bytes_resident`` gauge: the summed
        byte estimate of every catalog table's columnar image.  Called
        on demand (``.metrics``, ``trace_summary``) rather than per
        statement — building a store for a never-scanned table is work
        we only want when someone is looking."""
        total = sum(table.bytes_resident() for table in self.catalog.tables())
        self.obs.set_gauge("engine.bytes_resident", total)
        self.resilience.note_gauge_refresh()
        return total

    # -- CURRENT_DATE ----------------------------------------------------

    @property
    def now(self) -> Date:
        """CURRENT_DATE.  Settable for reproducible current semantics;
        under durability each change is WAL-logged so a reopened
        database resumes at the clock it was closed at."""
        return self._now

    @now.setter
    def now(self, value: Date) -> None:
        self._now = value
        if self.durability is not None:
            self.durability.log_now(value.ordinal)

    # -- durability ------------------------------------------------------

    @classmethod
    def open(cls, path, *, now: Optional[Date] = None, sync: bool = True,
             auto_checkpoint_bytes: Optional[int] = None) -> "Database":
        """Open (or create) a durable database at ``path``.

        Equivalent to ``Database()`` + :meth:`attach_durability`; for a
        database with temporal tables use ``TemporalStratum.open`` so
        the registries are rebuilt too.
        """
        db = cls(now=now)
        db.attach_durability(
            path, sync=sync, auto_checkpoint_bytes=auto_checkpoint_bytes
        )
        return db

    def attach_durability(self, path, *, stratum=None, sync: bool = True,
                          auto_checkpoint_bytes: Optional[int] = None,
                          replay_cap: Optional[int] = None):
        """Bind a WAL + snapshot directory, running crash recovery first.

        ``stratum`` (a :class:`~repro.temporal.stratum.TemporalStratum`)
        makes registry changes durable and lets recovery rebuild them.
        ``replay_cap`` stops redo at a commit sequence number (used by
        the cross-node scrubber to recover a copy *as of* a common csn).
        Returns the :class:`~repro.sqlengine.wal.DurabilityManager`.
        """
        from repro.sqlengine.recovery import recover
        from repro.sqlengine.wal import (
            DEFAULT_AUTO_CHECKPOINT_BYTES,
            DurabilityManager,
            WalError,
        )

        if self.durability is not None:
            raise WalError("durability is already attached to this database")
        if self.txn.explicit or self.txn.marks:
            raise WalError("cannot attach durability inside a transaction")
        manager = DurabilityManager(
            self,
            path,
            sync=sync,
            auto_checkpoint_bytes=(
                auto_checkpoint_bytes
                if auto_checkpoint_bytes is not None
                else DEFAULT_AUTO_CHECKPOINT_BYTES
            ),
        )
        if stratum is not None:
            manager.bind_stratum(stratum)
        recover(manager, replay_cap)
        self.durability = manager
        self.txn.wal = manager
        # recovery may have rebuilt arbitrary schema/data: every compiled
        # artifact bound against the pre-recovery state must go
        self.plan_cache.clear()
        self.expr_cache.clear()
        self.table_function_cache.clear()
        self.cp_cache.clear()
        if stratum is not None:
            stratum._transform_cache.clear()
            stratum._installed_clones.clear()
        return manager

    def checkpoint(self) -> int:
        """Snapshot state and truncate the WAL (durability required)."""
        if self.durability is None:
            raise ExecutionError("checkpoint: durability is not attached")
        return self.durability.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        """Flush (and by default checkpoint) and detach durability.

        Idempotent: the WAL buffer is flushed exactly once; repeated
        calls (and closes of purely in-memory databases) are no-ops.
        """
        if self.durability is None:
            return
        self.durability.close(checkpoint=checkpoint)
        self.txn.wal = None
        self.durability = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # don't checkpoint on the error path: leave the WAL as the
        # authoritative record of what committed before the failure
        self.close(checkpoint=exc_type is None)

    def verify(self, *, quarantine: bool = False):
        """Scrub the attached durable store (see
        :func:`repro.sqlengine.resilience.verify_store`).

        The WAL buffer is flushed first when idle, so everything
        committed so far is on disk and subject to verification.
        Returns a :class:`~repro.sqlengine.resilience.VerifyReport`.
        """
        from repro.sqlengine.resilience import verify_store
        from repro.sqlengine.wal import WalError

        if self.durability is None:
            raise WalError("verify: durability is not attached")
        if not self.txn.explicit and not self.txn.marks:
            self.durability.commit_buffered()
        return verify_store(self.durability.dir, quarantine=quarantine)

    # -- execution -------------------------------------------------------

    def execute(self, sql: str) -> Any:
        """Parse and execute one statement.

        Returns a :class:`ResultSet` for queries, a row count for DML,
        a list of result sets for CALL, and None for DDL.
        """
        return self.execute_ast(parse_statement(sql))

    def execute_ast(self, stmt: ast.Statement) -> Any:
        if isinstance(stmt, ast.TransactionStatement):
            return self.txn.execute_statement(stmt)
        if isinstance(stmt, ast.ExplainStatement):
            from repro.obs.explain import explain_engine_statement

            return explain_engine_statement(self, stmt.statement, stmt.analyze)
        self.table_function_cache.clear()
        resilience = self.resilience
        txn = self.txn
        # pin the snapshot this statement reads through; statements the
        # stratum or an explicit transaction re-enter with (snapshot
        # already pinned) inherit it, giving repeatable reads
        pinned = txn.snapshot is None
        if pinned:
            self.mvcc.pin(txn)
        resilience.begin_statement()  # arms the watchdog clock at depth 0
        token = txn.mark()  # implicit statement-level atomicity
        try:
            result = self._executor.execute(stmt)
        except BaseException:
            txn.rollback_to(token)
            raise
        finally:
            resilience.end_statement()
            self.table_function_cache.clear()
            if pinned and not txn.explicit:
                self.mvcc.unpin(txn)
        txn.release(token)
        return result

    def execute_script(self, sql: str) -> list[Any]:
        """Execute a semicolon-separated script; returns per-statement results."""
        return [self.execute_ast(stmt) for stmt in parse_script(sql)]

    def query(self, sql: str) -> ResultSet:
        """Execute a statement that must produce a result set."""
        result = self.execute(sql)
        if not isinstance(result, ResultSet):
            raise TypeError(f"statement did not produce a result set: {sql!r}")
        return result

    # -- convenience -------------------------------------------------------

    @property
    def executor(self) -> Executor:
        return self._executor

    def table(self, name: str):
        return self.catalog.get_table(name)

    def insert_rows(self, table_name: str, rows: list[list[Any]]) -> None:
        """Bulk-load rows (bypasses SQL parsing; used by data generators)."""
        table = self.catalog.get_table(table_name)
        for row in rows:
            table.insert(row)
        self.stats.count_rows(len(rows), "bulk_load")
        # bulk loads run outside any statement mark: flush the redo
        # records now so the load is one durable transaction
        if self.txn.wal is not None and not self.txn.explicit and not self.txn.marks:
            self.txn.wal.commit_buffered()
