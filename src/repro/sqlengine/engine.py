"""The `Database` facade: parse + execute conventional SQL/PSM.

Also owns :class:`EngineStats`, the instrumentation the benchmark
harness reports: per-routine invocation counts, statements executed and
rows written are the machine-independent cost drivers behind the
paper's MAX-vs-PERST comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import Executor, ResultSet
from repro.sqlengine.parser import parse_script, parse_statement
from repro.sqlengine.values import Date


@dataclass
class EngineStats:
    """Counters accumulated across statement executions."""

    statements: int = 0
    rows_written: int = 0
    total_routine_calls: int = 0
    routine_calls: dict[str, int] = field(default_factory=dict)
    call_depth: int = 0  # transient: current execution nesting

    def reset(self) -> None:
        self.statements = 0
        self.rows_written = 0
        self.total_routine_calls = 0
        self.routine_calls = {}
        self.call_depth = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "statements": self.statements,
            "rows_written": self.rows_written,
            "total_routine_calls": self.total_routine_calls,
            "routine_calls": dict(self.routine_calls),
        }


class Database:
    """An in-memory SQL/PSM database.

    ``now`` is the value of CURRENT_DATE, settable so current-semantics
    queries are reproducible; it defaults to 2011-01-01 (inside the
    benchmark datasets' two-year window).
    """

    def __init__(self, now: Optional[Date] = None) -> None:
        self.catalog = Catalog()
        self.stats = EngineStats()
        self.now = now if now is not None else Date.from_ymd(2011, 1, 1)
        self._executor = Executor(self)
        # per-top-level-statement memo for TABLE(f(args)) invocations:
        # routines are deterministic over data that does not change while
        # one statement runs, so a lateral join may reuse results for
        # repeated argument tuples (what a DBMS optimizer does).
        # `memoize_table_functions` exists for the ablation benchmark.
        self.table_function_cache: dict = {}
        self.memoize_table_functions = True

    # -- execution -------------------------------------------------------

    def execute(self, sql: str) -> Any:
        """Parse and execute one statement.

        Returns a :class:`ResultSet` for queries, a row count for DML,
        a list of result sets for CALL, and None for DDL.
        """
        return self.execute_ast(parse_statement(sql))

    def execute_ast(self, stmt: ast.Statement) -> Any:
        self.table_function_cache.clear()
        try:
            return self._executor.execute(stmt)
        finally:
            self.table_function_cache.clear()

    def execute_script(self, sql: str) -> list[Any]:
        """Execute a semicolon-separated script; returns per-statement results."""
        return [self._executor.execute(stmt) for stmt in parse_script(sql)]

    def query(self, sql: str) -> ResultSet:
        """Execute a statement that must produce a result set."""
        result = self.execute(sql)
        if not isinstance(result, ResultSet):
            raise TypeError(f"statement did not produce a result set: {sql!r}")
        return result

    # -- convenience -------------------------------------------------------

    @property
    def executor(self) -> Executor:
        return self._executor

    def table(self, name: str):
        return self.catalog.get_table(name)

    def insert_rows(self, table_name: str, rows: list[list[Any]]) -> None:
        """Bulk-load rows (bypasses SQL parsing; used by data generators)."""
        table = self.catalog.get_table(table_name)
        for row in rows:
            table.insert(row)
        self.stats.rows_written += len(rows)
