"""Recursive-descent parser for SQL + PSM.

The grammar is the SQL subset plus PSM control statements inventoried in
DESIGN.md §3.1, and the optional temporal statement modifier prefix
(``VALIDTIME [bt, et]`` / ``NONSEQUENCED VALIDTIME``) from the paper's
§IV-B BNF, which parses onto ``Statement.modifier`` for the stratum to
consume.

Entry points: :func:`parse_statement`, :func:`parse_script`,
:func:`parse_expression`.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine import types as sqltypes
from repro.sqlengine.errors import ParseError
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.tokens import Token, TokenKind
from repro.sqlengine.values import Date, Null

_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
_STATEMENT_KEYWORDS = frozenset(
    {"SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER",
     "CALL", "SET", "BEGIN", "DECLARE", "IF", "CASE", "WHILE", "REPEAT",
     "FOR", "LOOP", "LEAVE", "ITERATE", "RETURN", "OPEN", "FETCH", "CLOSE",
     "VALIDTIME", "NONSEQUENCED"}
)


def parse_statement(sql: str) -> ast.Statement:
    """Parse exactly one statement (a trailing semicolon is allowed)."""
    parser = Parser(sql)
    stmt = parser.statement()
    parser.accept_punct(";")
    parser.expect_eof()
    return stmt


def parse_script(sql: str) -> list[ast.Statement]:
    """Parse a semicolon-separated sequence of statements."""
    parser = Parser(sql)
    statements: list[ast.Statement] = []
    while not parser.at_eof():
        statements.append(parser.statement())
        if not parser.accept_punct(";"):
            break
    parser.expect_eof()
    return statements


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone expression (useful in tests and the stratum)."""
    parser = Parser(sql)
    expr = parser.expression()
    parser.expect_eof()
    return expr


class Parser:
    """One-pass recursive-descent parser over a token list."""

    def __init__(self, sql: str) -> None:
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token utilities ----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(f"{message}; found {token} at line {token.line}")

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.peek().is_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, *words: str) -> Token:
        token = self.accept_keyword(*words)
        if token is None:
            raise self.error(f"expected {' or '.join(words)}")
        return token

    def accept_punct(self, punct: str) -> bool:
        if self.peek().matches(TokenKind.PUNCT, punct):
            self.advance()
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        if not self.accept_punct(punct):
            raise self.error(f"expected {punct!r}")

    def accept_operator(self, op: str) -> bool:
        if self.peek().matches(TokenKind.OPERATOR, op):
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind is TokenKind.IDENT:
            self.advance()
            return token.value
        # allow a few soft keywords as identifiers (e.g. a column DATA)
        if token.kind is TokenKind.KEYWORD and token.value in (
            "DATA", "KEY", "DATE", "INDEX", "FOUND", "CONDITION", "SQL",
            "LEFT", "RIGHT", "DAY",
        ):
            self.advance()
            return token.value.lower()
        raise self.error("expected identifier")

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise self.error("unexpected trailing input")

    # -- statements ---------------------------------------------------------

    def statement(self) -> ast.Statement:
        if self.accept_keyword("EXPLAIN"):
            analyze = bool(self.accept_keyword("ANALYZE"))
            # EXPLAIN wraps a whole statement, temporal modifier and all
            # (EXPLAIN VALIDTIME SELECT ... / EXPLAIN ANALYZE CALL ...)
            return ast.ExplainStatement(
                statement=self.statement(), analyze=analyze
            )
        modifier = self.temporal_modifier()
        token = self.peek()
        if token.kind is TokenKind.IDENT and self.peek(1).matches(
            TokenKind.OPERATOR, ":"
        ):
            # a labelled loop (lbl: WHILE / FOR / REPEAT / LOOP)
            stmt = self.psm_statement()
            if modifier is not None:
                stmt.modifier = modifier
            return stmt
        if token.kind is not TokenKind.KEYWORD:
            raise self.error("expected a statement")
        word = token.value
        if word == "SELECT":
            stmt = self.select_statement()
        elif word == "INSERT":
            stmt = self.insert_statement()
        elif word == "UPDATE":
            stmt = self.update_statement()
        elif word == "DELETE":
            stmt = self.delete_statement()
        elif word == "CREATE":
            stmt = self.create_statement()
        elif word == "DROP":
            stmt = self.drop_statement()
        elif word == "ALTER":
            stmt = self.alter_statement()
        elif word == "CALL":
            stmt = self.call_statement()
        elif word in ("START", "COMMIT", "ROLLBACK", "SAVEPOINT", "RELEASE"):
            stmt = self.transaction_statement()
        elif word == "BEGIN" and self._begin_is_transaction():
            stmt = self.transaction_statement()
        else:
            stmt = self.psm_statement()
        if modifier is not None:
            if not hasattr(stmt, "modifier"):
                raise self.error("temporal modifier not allowed here")
            stmt.modifier = modifier
        return stmt

    def _begin_is_transaction(self) -> bool:
        """Disambiguate ``BEGIN`` (transaction) from ``BEGIN ... END``
        (PSM compound): transactional only when followed by a statement
        boundary, ``WORK``, or ``TRANSACTION``."""
        nxt = self.peek(1)
        if nxt.kind is TokenKind.EOF or nxt.matches(TokenKind.PUNCT, ";"):
            return True
        if nxt.is_keyword("TRANSACTION"):
            return True
        return nxt.kind is TokenKind.IDENT and nxt.value.upper() == "WORK"

    def _accept_soft_ident(self, word: str) -> bool:
        """Consume a non-reserved word (e.g. WORK, TO) if present."""
        token = self.peek()
        if token.kind is TokenKind.IDENT and token.value.upper() == word:
            self.advance()
            return True
        return False

    def transaction_statement(self) -> ast.TransactionStatement:
        word = self.advance().value
        if word == "START":
            self.expect_keyword("TRANSACTION")
            return ast.TransactionStatement(action="BEGIN")
        if word == "BEGIN":
            if not self.accept_keyword("TRANSACTION"):
                self._accept_soft_ident("WORK")
            return ast.TransactionStatement(action="BEGIN")
        if word == "COMMIT":
            self._accept_soft_ident("WORK")
            return ast.TransactionStatement(action="COMMIT")
        if word == "SAVEPOINT":
            return ast.TransactionStatement(
                action="SAVEPOINT", name=self.expect_ident()
            )
        if word == "RELEASE":
            self.expect_keyword("SAVEPOINT")
            return ast.TransactionStatement(
                action="RELEASE SAVEPOINT", name=self.expect_ident()
            )
        # ROLLBACK [WORK] [TO [SAVEPOINT] name]
        self._accept_soft_ident("WORK")
        if self._accept_soft_ident("TO"):
            self.accept_keyword("SAVEPOINT")
            return ast.TransactionStatement(
                action="ROLLBACK TO SAVEPOINT", name=self.expect_ident()
            )
        return ast.TransactionStatement(action="ROLLBACK")

    def signal_statement(self) -> ast.SignalStatement:
        self.expect_keyword("SIGNAL")
        self.expect_keyword("SQLSTATE")
        token = self.peek()
        if token.kind is not TokenKind.STRING:
            raise self.error("expected a quoted SQLSTATE value")
        self.advance()
        message = None
        if self.accept_keyword("SET"):
            if self.expect_ident().upper() != "MESSAGE_TEXT":
                raise self.error("expected MESSAGE_TEXT")
            if not self.accept_operator("="):
                raise self.error("expected = after MESSAGE_TEXT")
            mtoken = self.peek()
            if mtoken.kind is not TokenKind.STRING:
                raise self.error("expected a string message")
            self.advance()
            message = mtoken.value
        return ast.SignalStatement(sqlstate=token.value, message=message)

    def temporal_modifier(self) -> Optional[ast.TemporalModifier]:
        if self.accept_keyword("NONSEQUENCED"):
            keyword = self.expect_keyword("VALIDTIME", "TRANSACTIONTIME")
            dimension = "VALID" if keyword.value == "VALIDTIME" else "TRANSACTION"
            return ast.TemporalModifier(
                ast.TemporalFlavor.NONSEQUENCED, dimension=dimension
            )
        keyword = self.accept_keyword("VALIDTIME", "TRANSACTIONTIME")
        if keyword is not None:
            dimension = "VALID" if keyword.value == "VALIDTIME" else "TRANSACTION"
            begin = end = None
            if self.accept_punct("["):
                begin = self.expression()
                self.expect_punct(",")
                end = self.expression()
                self.expect_punct("]")
            return ast.TemporalModifier(
                ast.TemporalFlavor.SEQUENCED, begin=begin, end=end,
                dimension=dimension,
            )
        return None

    # -- SELECT ---------------------------------------------------------

    def select_statement(self) -> ast.Select:
        select = self.select_core()
        tail = select
        while self.peek().is_keyword("UNION", "EXCEPT", "INTERSECT"):
            op = self.advance().value
            if self.accept_keyword("ALL"):
                op += " ALL"
            rhs = self.select_core()
            tail.set_op = op
            tail.set_rhs = rhs
            tail = rhs
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            select.order_by = self.order_items()
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind is not TokenKind.NUMBER:
                raise self.error("expected number after LIMIT")
            select.limit = int(token.value)
        return select

    def select_core(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        elif self.accept_keyword("ALL"):
            pass
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())
        from_items: list[ast.FromItem] = []
        where = having = None
        group_by: list[ast.Expression] = []
        if self.accept_keyword("FROM"):
            from_items = [self.from_item()]
            while self.accept_punct(","):
                from_items.append(self.from_item())
        if self.accept_keyword("WHERE"):
            where = self.expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = [self.expression()]
            while self.accept_punct(","):
                group_by.append(self.expression())
        if self.accept_keyword("HAVING"):
            having = self.expression()
        return ast.Select(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def select_item(self) -> ast.SelectItem:
        token = self.peek()
        if token.matches(TokenKind.OPERATOR, "*"):
            self.advance()
            return ast.SelectItem(expr=None)
        # qualified star: ident . *
        if (
            token.kind is TokenKind.IDENT
            and self.peek(1).matches(TokenKind.PUNCT, ".")
            and self.peek(2).matches(TokenKind.OPERATOR, "*")
        ):
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(expr=None, star_qualifier=qualifier)
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def from_item(self) -> ast.FromItem:
        item = self.from_primary()
        while True:
            kind = None
            if self.accept_keyword("INNER"):
                kind = "INNER"
                self.expect_keyword("JOIN")
            elif self.peek().is_keyword("LEFT") and self.peek(1).is_keyword(
                "JOIN", "OUTER"
            ):
                self.advance()
                self.accept_keyword("OUTER")
                kind = "LEFT"
                self.expect_keyword("JOIN")
            elif self.peek().is_keyword("RIGHT") and self.peek(1).is_keyword(
                "JOIN", "OUTER"
            ):
                self.advance()
                self.accept_keyword("OUTER")
                kind = "RIGHT"
                self.expect_keyword("JOIN")
            elif self.accept_keyword("CROSS"):
                kind = "CROSS"
                self.expect_keyword("JOIN")
            elif self.accept_keyword("JOIN"):
                kind = "INNER"
            else:
                return item
            right = self.from_primary()
            condition = None
            if kind != "CROSS":
                self.expect_keyword("ON")
                condition = self.expression()
            item = ast.Join(left=item, right=right, kind=kind, condition=condition)

    def from_primary(self) -> ast.FromItem:
        if self.accept_punct("("):
            select = self.select_statement()
            self.expect_punct(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return ast.SubqueryRef(select=select, alias=alias)
        if self.accept_keyword("TABLE"):
            self.expect_punct("(")
            name = self.expect_ident()
            self.expect_punct("(")
            args = self.call_args()
            call = ast.FunctionCall(name=name, args=args)
            self.expect_punct(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return ast.TableFunctionRef(call=call, alias=alias)
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    def order_items(self) -> list[ast.OrderItem]:
        items = [self.order_item()]
        while self.accept_punct(","):
            items.append(self.order_item())
        return items

    def order_item(self) -> ast.OrderItem:
        expr = self.expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    # -- DML --------------------------------------------------------------

    def insert_statement(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        self.accept_keyword("TABLE")  # PERST emits INSERT INTO TABLE var
        table = self.expect_ident()
        columns = None
        if self.peek().matches(TokenKind.PUNCT, "(") and not self.peek(1).is_keyword(
            "SELECT", "VALIDTIME", "NONSEQUENCED"
        ):
            self.expect_punct("(")
            columns = [self.expect_ident()]
            while self.accept_punct(","):
                columns.append(self.expect_ident())
            self.expect_punct(")")
        if self.accept_keyword("VALUES"):
            rows = [self.value_row()]
            while self.accept_punct(","):
                rows.append(self.value_row())
            return ast.Insert(table=table, columns=columns, values=rows)
        wrapped = self.accept_punct("(")
        select = self.select_statement()
        if wrapped:
            self.expect_punct(")")
        return ast.Insert(table=table, columns=columns, select=select)

    def value_row(self) -> list[ast.Expression]:
        self.expect_punct("(")
        exprs = [self.expression()]
        while self.accept_punct(","):
            exprs.append(self.expression())
        self.expect_punct(")")
        return exprs

    def update_statement(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        self.accept_keyword("TABLE")
        table = self.expect_ident()
        alias = None
        if self.peek().kind is TokenKind.IDENT:
            alias = self.advance().value
        self.expect_keyword("SET")
        assignments = [self.assignment()]
        while self.accept_punct(","):
            assignments.append(self.assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return ast.Update(table=table, alias=alias, assignments=assignments, where=where)

    def assignment(self) -> tuple[str, ast.Expression]:
        column = self.expect_ident()
        if not self.accept_operator("="):
            raise self.error("expected = in assignment")
        return column, self.expression()

    def delete_statement(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        self.accept_keyword("TABLE")  # PERST emits DELETE FROM TABLE var
        table = self.expect_ident()
        alias = None
        if self.peek().kind is TokenKind.IDENT:
            alias = self.advance().value
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return ast.Delete(table=table, alias=alias, where=where)

    # -- DDL ----------------------------------------------------------------

    def create_statement(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TEMPORARY"):
            self.expect_keyword("TABLE")
            return self.create_table(temporary=True)
        if self.accept_keyword("TABLE"):
            return self.create_table(temporary=False)
        if self.accept_keyword("VIEW"):
            name = self.expect_ident()
            self.expect_keyword("AS")
            wrapped = self.accept_punct("(")
            modifier = self.temporal_modifier()
            select = self.select_statement()
            if modifier is not None:
                select.modifier = modifier
            if wrapped:
                self.expect_punct(")")
            return ast.CreateView(name=name, select=select)
        if self.accept_keyword("FUNCTION"):
            return self.create_function()
        if self.accept_keyword("PROCEDURE"):
            return self.create_procedure()
        raise self.error("expected TABLE, VIEW, FUNCTION or PROCEDURE")

    def create_table(self, temporary: bool) -> ast.CreateTable:
        name = self.expect_ident()
        if self.accept_keyword("AS"):
            wrapped = self.accept_punct("(")
            select = self.select_statement()
            if wrapped:
                self.expect_punct(")")
            return ast.CreateTable(name=name, temporary=temporary, as_select=select)
        self.expect_punct("(")
        columns: list[ast.ColumnDef] = []
        primary_key: Optional[list[str]] = None
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_punct("(")
                primary_key = [self.expect_ident()]
                while self.accept_punct(","):
                    primary_key.append(self.expect_ident())
                self.expect_punct(")")
            else:
                col_name = self.expect_ident()
                col_type = self.sql_type()
                not_null = False
                pk = False
                if self.accept_keyword("NOT"):
                    self.expect_keyword("NULL")
                    not_null = True
                if self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    pk = True
                columns.append(
                    ast.ColumnDef(name=col_name, type=col_type, primary_key=pk, not_null=not_null)
                )
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTable(
            name=name, columns=columns, temporary=temporary, primary_key=primary_key
        )

    def drop_statement(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            return ast.DropTable(name=self.expect_ident())
        if self.accept_keyword("TEMPORARY"):
            self.expect_keyword("TABLE")
            return ast.DropTable(name=self.expect_ident())
        if self.accept_keyword("VIEW"):
            return ast.DropView(name=self.expect_ident())
        if self.accept_keyword("FUNCTION"):
            return ast.DropRoutine(kind="FUNCTION", name=self.expect_ident())
        if self.accept_keyword("PROCEDURE"):
            return ast.DropRoutine(kind="PROCEDURE", name=self.expect_ident())
        raise self.error("expected TABLE, VIEW, FUNCTION or PROCEDURE")

    def alter_statement(self) -> ast.AlterTable:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        name = self.expect_ident()
        self.expect_keyword("ADD")
        keyword = self.expect_keyword("VALIDTIME", "TRANSACTIONTIME")
        return ast.AlterTable(name=name, action=f"ADD {keyword.value}")

    # -- routines -------------------------------------------------------

    def create_function(self) -> ast.CreateFunction:
        name = self.expect_ident()
        params = self.param_list(allow_modes=False)
        self.expect_keyword("RETURNS")
        returns = self.return_type()
        reads = False
        deterministic = False
        while True:
            if self.accept_keyword("READS"):
                self.expect_keyword("SQL")
                self.expect_keyword("DATA")
                reads = True
            elif self.accept_keyword("MODIFIES"):
                self.expect_keyword("SQL")
                self.expect_keyword("DATA")
                reads = True
            elif self.accept_keyword("CONTAINS"):
                self.expect_keyword("SQL")
            elif self.accept_keyword("LANGUAGE"):
                self.expect_keyword("SQL")
            elif self.accept_keyword("DETERMINISTIC"):
                deterministic = True
            else:
                break
        body = self.psm_statement()
        return ast.CreateFunction(
            name=name,
            params=params,
            returns=returns,
            body=body,
            reads_sql_data=reads,
            deterministic=deterministic,
        )

    def create_procedure(self) -> ast.CreateProcedure:
        name = self.expect_ident()
        params = self.param_list(allow_modes=True)
        while self.accept_keyword("LANGUAGE"):
            self.expect_keyword("SQL")
        body = self.psm_statement()
        return ast.CreateProcedure(name=name, params=params, body=body)

    def param_list(self, allow_modes: bool) -> list[ast.ParamDef]:
        self.expect_punct("(")
        params: list[ast.ParamDef] = []
        if not self.accept_punct(")"):
            while True:
                mode = "IN"
                if allow_modes and self.peek().is_keyword("IN", "OUT", "INOUT"):
                    mode = self.advance().value
                elif self.accept_keyword("IN"):
                    mode = "IN"
                pname = self.expect_ident()
                ptype = self.sql_type()
                params.append(ast.ParamDef(name=pname, type=ptype, mode=mode))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
        return params

    def return_type(self) -> ast.ReturnType:
        if self.peek().is_keyword("ROW"):
            self.advance()
            self.expect_punct("(")
            row_fields = []
            while True:
                fname = self.expect_ident()
                ftype = self.sql_type()
                row_fields.append(ast.RowField(name=fname, type=ftype))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            self.expect_keyword("ARRAY")
            return ast.RowArrayType(fields=tuple(row_fields))
        return self.sql_type()

    # -- PSM statements ---------------------------------------------------

    def psm_statement(self) -> ast.Statement:
        token = self.peek()
        label = None
        # labelled loops: ident ':' WHILE/FOR/REPEAT/LOOP
        if token.kind is TokenKind.IDENT and self.peek(1).matches(
            TokenKind.OPERATOR, ":"
        ):
            label = self.advance().value
            self.advance()
            token = self.peek()
            if not token.is_keyword("WHILE", "REPEAT", "FOR", "LOOP"):
                raise self.error("label must precede WHILE, REPEAT, FOR or LOOP")
        if token.kind is TokenKind.IDENT:
            raise self.error("expected a statement keyword")
        word = token.value
        if word == "BEGIN":
            return self.compound()
        if word == "DECLARE":
            return self.declare()
        if word == "SET":
            return self.set_statement()
        if word == "IF":
            return self.if_statement()
        if word == "CASE":
            return self.case_statement()
        if word == "WHILE":
            return self.while_statement(label)
        if word == "REPEAT":
            return self.repeat_statement(label)
        if word == "FOR":
            return self.for_statement(label)
        if word == "LOOP":
            return self.loop_statement(label)
        if word == "LEAVE":
            self.advance()
            return ast.LeaveStatement(label=self.expect_ident())
        if word == "ITERATE":
            self.advance()
            return ast.IterateStatement(label=self.expect_ident())
        if word == "RETURN":
            self.advance()
            if self.peek().matches(TokenKind.PUNCT, ";") or self.at_eof():
                return ast.ReturnStatement(value=None)
            return ast.ReturnStatement(value=self.expression())
        if word == "OPEN":
            self.advance()
            return ast.OpenCursor(name=self.expect_ident())
        if word == "FETCH":
            return self.fetch_statement()
        if word == "CLOSE":
            self.advance()
            return ast.CloseCursor(name=self.expect_ident())
        if word == "CALL":
            return self.call_statement()
        if word == "SIGNAL":
            return self.signal_statement()
        if word in ("SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP",
                    "VALIDTIME", "NONSEQUENCED", "TRANSACTIONTIME",
                    "COMMIT", "ROLLBACK", "SAVEPOINT", "RELEASE", "START"):
            return self.statement()
        raise self.error("expected a PSM statement")

    def compound(self) -> ast.Compound:
        self.expect_keyword("BEGIN")
        atomic = bool(self.accept_keyword("ATOMIC"))
        declarations: list[ast.PsmStatement] = []
        statements: list[ast.Statement] = []
        while self.peek().is_keyword("DECLARE"):
            declarations.append(self.declare())
            self.expect_punct(";")
        while not self.peek().is_keyword("END"):
            if self.at_eof():
                raise self.error("unterminated BEGIN block")
            statements.append(self.statement_in_body())
            self.expect_punct(";")
        self.expect_keyword("END")
        # optional trailing label name (ignored at parse level)
        if self.peek().kind is TokenKind.IDENT:
            self.advance()
        return ast.Compound(
            declarations=declarations, statements=statements, atomic=atomic
        )

    def statement_in_body(self) -> ast.Statement:
        """A statement inside a routine body; SELECT may carry INTO."""
        modifier = self.temporal_modifier()
        if self.peek().is_keyword("SELECT"):
            stmt = self.select_possibly_into()
        else:
            stmt = self.statement()
        if modifier is not None:
            stmt.modifier = modifier
        return stmt

    def select_possibly_into(self) -> ast.Statement:
        """Parse SELECT, capturing an INTO clause if present."""
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())
        targets: list[str] = []
        if self.accept_keyword("INTO"):
            targets.append(self.expect_ident())
            while self.accept_punct(","):
                targets.append(self.expect_ident())
        from_items: list[ast.FromItem] = []
        where = having = None
        group_by: list[ast.Expression] = []
        if self.accept_keyword("FROM"):
            from_items = [self.from_item()]
            while self.accept_punct(","):
                from_items.append(self.from_item())
        if self.accept_keyword("WHERE"):
            where = self.expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = [self.expression()]
            while self.accept_punct(","):
                group_by.append(self.expression())
        if self.accept_keyword("HAVING"):
            having = self.expression()
        select = ast.Select(
            items=items, from_items=from_items, where=where,
            group_by=group_by, having=having, distinct=distinct,
        )
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            select.order_by = self.order_items()
        if targets:
            return ast.SelectInto(select=select, targets=targets)
        return select

    def declare(self) -> ast.PsmStatement:
        self.expect_keyword("DECLARE")
        if self.peek().is_keyword("CONTINUE", "EXIT"):
            kind = self.advance().value
            self.expect_keyword("HANDLER")
            self.expect_keyword("FOR")
            condition = self.handler_condition()
            action = self.psm_statement()
            return ast.DeclareHandler(kind=kind, condition=condition, action=action)
        names = [self.expect_ident()]
        if self.accept_keyword("CURSOR"):
            self.expect_keyword("FOR")
            select = self.select_statement()
            return ast.DeclareCursor(name=names[0], select=select)
        while self.accept_punct(","):
            names.append(self.expect_ident())
        if self.peek().is_keyword("ROW"):
            self.advance()
            self.expect_punct("(")
            row_fields = []
            while True:
                fname = self.expect_ident()
                ftype = self.sql_type()
                row_fields.append(ast.RowField(name=fname, type=ftype))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            self.expect_keyword("ARRAY")
            return ast.DeclareVariable(
                names=names, type=None, array_type=ast.RowArrayType(tuple(row_fields))
            )
        var_type = self.sql_type()
        default = None
        if self.peek().is_keyword("DEFAULT") or (
            self.peek().kind is TokenKind.IDENT and self.peek().value.upper() == "DEFAULT"
        ):
            self.advance()
            default = self.expression()
        return ast.DeclareVariable(names=names, type=var_type, default=default)

    def handler_condition(self) -> str:
        if self.accept_keyword("NOT"):
            self.expect_keyword("FOUND")
            return "NOT FOUND"
        if self.accept_keyword("SQLSTATE"):
            token = self.advance()
            return f"SQLSTATE {token.value}"
        token = self.advance()
        return token.value.upper()  # SQLEXCEPTION etc. lex as IDENT

    def set_statement(self) -> ast.SetStatement:
        self.expect_keyword("SET")
        if self.accept_punct("("):
            targets = [self.expect_ident()]
            while self.accept_punct(","):
                targets.append(self.expect_ident())
            self.expect_punct(")")
        else:
            targets = [self.expect_ident()]
        if not self.accept_operator("="):
            raise self.error("expected = in SET")
        value = self.expression()
        return ast.SetStatement(targets=targets, value=value)

    def if_statement(self) -> ast.IfStatement:
        self.expect_keyword("IF")
        branches: list[tuple[ast.Expression, list[ast.Statement]]] = []
        condition = self.expression()
        self.expect_keyword("THEN")
        branches.append((condition, self.statement_list(("ELSEIF", "ELSE", "END"))))
        while self.accept_keyword("ELSEIF"):
            condition = self.expression()
            self.expect_keyword("THEN")
            branches.append((condition, self.statement_list(("ELSEIF", "ELSE", "END"))))
        else_branch = None
        if self.accept_keyword("ELSE"):
            else_branch = self.statement_list(("END",))
        self.expect_keyword("END")
        self.expect_keyword("IF")
        return ast.IfStatement(branches=branches, else_branch=else_branch)

    def case_statement(self) -> ast.CaseStatement:
        self.expect_keyword("CASE")
        operand = None
        if not self.peek().is_keyword("WHEN"):
            operand = self.expression()
        whens: list[tuple[ast.Expression, list[ast.Statement]]] = []
        while self.accept_keyword("WHEN"):
            when = self.expression()
            self.expect_keyword("THEN")
            whens.append((when, self.statement_list(("WHEN", "ELSE", "END"))))
        else_branch = None
        if self.accept_keyword("ELSE"):
            else_branch = self.statement_list(("END",))
        self.expect_keyword("END")
        self.expect_keyword("CASE")
        return ast.CaseStatement(operand=operand, whens=whens, else_branch=else_branch)

    def statement_list(self, stop_keywords: tuple[str, ...]) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while not self.peek().is_keyword(*stop_keywords):
            if self.at_eof():
                raise self.error("unterminated statement list")
            statements.append(self.statement_in_body())
            self.expect_punct(";")
        return statements

    def while_statement(self, label: Optional[str]) -> ast.WhileStatement:
        self.expect_keyword("WHILE")
        condition = self.expression()
        self.expect_keyword("DO")
        body = self.statement_list(("END",))
        self.expect_keyword("END")
        self.expect_keyword("WHILE")
        label = self.trailing_label(label)
        return ast.WhileStatement(condition=condition, body=body, label=label)

    def repeat_statement(self, label: Optional[str]) -> ast.RepeatStatement:
        self.expect_keyword("REPEAT")
        body: list[ast.Statement] = []
        while not self.peek().is_keyword("UNTIL"):
            if self.at_eof():
                raise self.error("unterminated REPEAT")
            body.append(self.statement_in_body())
            self.expect_punct(";")
        self.expect_keyword("UNTIL")
        until = self.expression()
        self.expect_keyword("END")
        self.expect_keyword("REPEAT")
        label = self.trailing_label(label)
        return ast.RepeatStatement(body=body, until=until, label=label)

    def for_statement(self, label: Optional[str]) -> ast.ForStatement:
        self.expect_keyword("FOR")
        loop_var = self.expect_ident()
        self.expect_keyword("AS")
        cursor_name = None
        checkpoint = self.pos
        maybe_cursor = None
        if self.peek().kind is TokenKind.IDENT:
            maybe_cursor = self.advance().value
            if self.accept_keyword("CURSOR"):
                self.expect_keyword("FOR")
                cursor_name = maybe_cursor
            else:
                self.pos = checkpoint
        select = self.select_statement()
        self.expect_keyword("DO")
        body = self.statement_list(("END",))
        self.expect_keyword("END")
        self.expect_keyword("FOR")
        label = self.trailing_label(label)
        return ast.ForStatement(
            loop_var=loop_var, select=select, body=body,
            cursor_name=cursor_name, label=label,
        )

    def loop_statement(self, label: Optional[str]) -> ast.LoopStatement:
        self.expect_keyword("LOOP")
        body = self.statement_list(("END",))
        self.expect_keyword("END")
        self.expect_keyword("LOOP")
        label = self.trailing_label(label)
        return ast.LoopStatement(body=body, label=label)

    def trailing_label(self, label: Optional[str]) -> Optional[str]:
        if self.peek().kind is TokenKind.IDENT and not self.peek().matches(
            TokenKind.PUNCT, ";"
        ):
            return self.advance().value
        return label

    def fetch_statement(self) -> ast.FetchCursor:
        self.expect_keyword("FETCH")
        self.accept_keyword("FROM")
        name = self.expect_ident()
        self.expect_keyword("INTO")
        targets = [self.expect_ident()]
        while self.accept_punct(","):
            targets.append(self.expect_ident())
        return ast.FetchCursor(name=name, targets=targets)

    def call_statement(self) -> ast.CallStatement:
        self.expect_keyword("CALL")
        name = self.expect_ident()
        self.expect_punct("(")
        args = self.call_args()
        return ast.CallStatement(name=name, args=args)

    def call_args(self) -> list[ast.Expression]:
        args: list[ast.Expression] = []
        if not self.accept_punct(")"):
            args.append(self.expression())
            while self.accept_punct(","):
                args.append(self.expression())
            self.expect_punct(")")
        return args

    # -- types --------------------------------------------------------------

    def sql_type(self) -> sqltypes.SqlType:
        token = self.peek()
        if not token.kind is TokenKind.KEYWORD:
            raise self.error("expected a type name")
        word = self.advance().value
        if word in ("INTEGER", "INT"):
            return sqltypes.SqlType("INTEGER")
        if word in ("SMALLINT", "BIGINT"):
            return sqltypes.SqlType(word)
        if word in ("DECIMAL", "NUMERIC"):
            precision = scale = None
            if self.accept_punct("("):
                precision = int(self.advance().value)
                if self.accept_punct(","):
                    scale = int(self.advance().value)
                self.expect_punct(")")
            return sqltypes.SqlType(word, precision=precision, scale=scale)
        if word in ("FLOAT", "REAL"):
            return sqltypes.SqlType(word)
        if word == "DOUBLE":
            self.accept_keyword("PRECISION")
            return sqltypes.SqlType("DOUBLE")
        if word in ("CHAR", "CHARACTER"):
            if self.accept_keyword("VARYING"):
                word = "VARCHAR"
            length = None
            if self.accept_punct("("):
                length = int(self.advance().value)
                self.expect_punct(")")
            return sqltypes.SqlType(word if word != "CHARACTER" else "CHAR", length=length)
        if word == "VARCHAR":
            length = None
            if self.accept_punct("("):
                length = int(self.advance().value)
                self.expect_punct(")")
            return sqltypes.SqlType("VARCHAR", length=length)
        if word == "DATE":
            return sqltypes.SqlType("DATE")
        if word == "BOOLEAN":
            return sqltypes.SqlType("BOOLEAN")
        raise self.error(f"unsupported type {word}")

    # -- expressions ----------------------------------------------------

    def expression(self) -> ast.Expression:
        return self.or_expr()

    def or_expr(self) -> ast.Expression:
        left = self.and_expr()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp(op="OR", left=left, right=self.and_expr())
        return left

    def and_expr(self) -> ast.Expression:
        left = self.not_expr()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp(op="AND", left=left, right=self.not_expr())
        return left

    def not_expr(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self.not_expr())
        return self.predicate()

    def predicate(self) -> ast.Expression:
        if self.peek().is_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            select = self.select_statement()
            self.expect_punct(")")
            return ast.ExistsPredicate(subquery=select)
        left = self.additive()
        negated = False
        if self.peek().is_keyword("NOT") and self.peek(1).is_keyword(
            "IN", "BETWEEN", "LIKE"
        ):
            self.advance()
            negated = True
        token = self.peek()
        if token.is_keyword("IS"):
            self.advance()
            neg = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNullPredicate(expr=left, negated=neg)
        if token.is_keyword("BETWEEN") or (negated and token.is_keyword("BETWEEN")):
            pass
        if self.accept_keyword("BETWEEN"):
            low = self.additive()
            self.expect_keyword("AND")
            high = self.additive()
            return ast.BetweenPredicate(expr=left, low=low, high=high, negated=negated)
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            if self.peek().is_keyword("SELECT"):
                select = self.select_statement()
                self.expect_punct(")")
                return ast.InPredicate(expr=left, subquery=select, negated=negated)
            items = [self.expression()]
            while self.accept_punct(","):
                items.append(self.expression())
            self.expect_punct(")")
            return ast.InPredicate(expr=left, items=items, negated=negated)
        if self.accept_keyword("LIKE"):
            pattern = self.additive()
            return ast.LikePredicate(expr=left, pattern=pattern, negated=negated)
        if token.kind is TokenKind.OPERATOR and token.value in _COMPARISON_OPS:
            op = self.advance().value
            if op == "!=":
                op = "<>"
            right = self.additive()
            return ast.BinaryOp(op=op, left=left, right=right)
        return left

    def additive(self) -> ast.Expression:
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token.matches(TokenKind.OPERATOR, "+"):
                self.advance()
                left = ast.BinaryOp(op="+", left=left, right=self.multiplicative())
            elif token.matches(TokenKind.OPERATOR, "-"):
                self.advance()
                left = ast.BinaryOp(op="-", left=left, right=self.multiplicative())
            elif token.matches(TokenKind.OPERATOR, "||"):
                self.advance()
                left = ast.BinaryOp(op="||", left=left, right=self.multiplicative())
            else:
                return left

    def multiplicative(self) -> ast.Expression:
        left = self.unary()
        while True:
            token = self.peek()
            if token.matches(TokenKind.OPERATOR, "*"):
                self.advance()
                left = ast.BinaryOp(op="*", left=left, right=self.unary())
            elif token.matches(TokenKind.OPERATOR, "/"):
                self.advance()
                left = ast.BinaryOp(op="/", left=left, right=self.unary())
            else:
                return left

    def unary(self) -> ast.Expression:
        token = self.peek()
        if token.matches(TokenKind.OPERATOR, "-"):
            self.advance()
            return ast.UnaryOp(op="-", operand=self.unary())
        if token.matches(TokenKind.OPERATOR, "+"):
            self.advance()
            return self.unary()
        return self.primary()

    def primary(self) -> ast.Expression:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(value=float(text))
            return ast.Literal(value=int(text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(value=token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(value=Null)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(value=True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(value=False)
        if token.is_keyword("DATE") and self.peek(1).kind is TokenKind.STRING:
            self.advance()
            literal = self.advance()
            return ast.Literal(value=Date.from_iso(literal.value))
        if token.is_keyword("CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP"):
            self.advance()
            return ast.FunctionCall(name="CURRENT_DATE", args=[])
        if token.is_keyword("CAST"):
            self.advance()
            self.expect_punct("(")
            expr = self.expression()
            self.expect_keyword("AS")
            target = self.sql_type()
            self.expect_punct(")")
            return ast.Cast(expr=expr, target=target)
        if token.is_keyword("CASE"):
            return self.case_expression()
        if token.matches(TokenKind.PUNCT, "("):
            self.advance()
            if self.peek().is_keyword("SELECT"):
                select = self.select_statement()
                self.expect_punct(")")
                return ast.ScalarSubquery(select=select)
            expr = self.expression()
            self.expect_punct(")")
            return ast.Parenthesized(expr=expr)
        if token.kind is TokenKind.IDENT or token.is_keyword(
            "DATE", "DATA", "KEY", "INDEX", "FOUND", "CONDITION", "SQL",
            "LEFT", "RIGHT", "DAY",
        ):
            return self.name_or_call()
        raise self.error("expected an expression")

    def case_expression(self) -> ast.CaseExpr:
        self.expect_keyword("CASE")
        operand = None
        if not self.peek().is_keyword("WHEN"):
            operand = self.expression()
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self.accept_keyword("WHEN"):
            when = self.expression()
            self.expect_keyword("THEN")
            then = self.expression()
            whens.append((when, then))
        else_expr = None
        if self.accept_keyword("ELSE"):
            else_expr = self.expression()
        self.expect_keyword("END")
        return ast.CaseExpr(operand=operand, whens=whens, else_expr=else_expr)

    def name_or_call(self) -> ast.Expression:
        name = self.expect_ident()
        if self.peek().matches(TokenKind.PUNCT, "("):
            self.advance()
            if self.peek().matches(TokenKind.OPERATOR, "*"):
                self.advance()
                self.expect_punct(")")
                return ast.FunctionCall(name=name, args=[], star=True)
            distinct = bool(self.accept_keyword("DISTINCT"))
            args = self.call_args()
            return ast.FunctionCall(name=name, args=args, distinct=distinct)
        if self.accept_punct("."):
            column = self.expect_ident()
            return ast.Name(qualifier=name, name=column)
        return ast.Name(qualifier=None, name=name)
