"""Checkpointing: serialize the whole database, then truncate the WAL.

A checkpoint is the durability layer's compaction step: everything the
WAL would replay is folded into one ``snapshot.json`` so recovery costs
O(state) instead of O(history).

Write protocol (crash-safe at every step):

1. Build the snapshot payload at generation ``N+1`` and write it to a
   temporary file, ``fsync``.
2. Atomically rename it over ``snapshot.json`` and ``fsync`` the
   directory — from this instant the snapshot is the recovery base.
3. Reset ``wal.log`` to a fresh file whose header carries generation
   ``N+1``.

A crash between steps 2 and 3 leaves the *old* WAL (generation ``N``)
next to the *new* snapshot (generation ``N+1``); recovery compares the
generations and ignores the stale log, so committed work is never
applied twice.  A crash before step 2 leaves the old snapshot + old WAL
pair untouched.

Snapshot contents: catalog tables (column metadata + rows, transposed
into the columnar encoding of
:func:`repro.sqlengine.wal.encode_rows_columnar`, which shrinks the
date-heavy temporal tables substantially; temporary tables excluded),
views and routines (as SQL text), the temporal
registries of a bound stratum, the stratum's nonsequenced-only routine
bookkeeping, and CURRENT_DATE.  The payload is guarded by a CRC header
line so a torn snapshot is detected and rejected at load time.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Optional

from repro.sqlengine.resilience import retry_durable
from repro.sqlengine.wal import WalError, encode_rows_columnar

SNAPSHOT_MAGIC = "TAUPSM-SNAPSHOT-1"


def build_snapshot(manager) -> dict[str, Any]:
    """The JSON-able state of ``manager``'s database (+ bound stratum)."""
    db = manager.db
    catalog = db.catalog
    tables = []
    for table in catalog.tables():
        if table.temporary:
            continue
        tables.append(
            {
                "name": table.name,
                "columns": [
                    [
                        c.name,
                        [c.type.name, c.type.length, c.type.precision, c.type.scale],
                        c.not_null,
                        c.primary_key,
                    ]
                    for c in table.columns
                ],
                "cols": encode_rows_columnar(table.rows),
            }
        )
    payload: dict[str, Any] = {
        "magic": SNAPSHOT_MAGIC,
        "generation": manager.generation + 1,
        "now": db.now.ordinal,
        "txn_counter": manager.txn_counter,
        "tables": tables,
        "views": [
            [name, select.to_sql()] for name, select in catalog._views.items()
        ],
        "routines": [
            [routine.kind, routine.definition.to_sql()]
            for routine in catalog.routines()
        ],
        "registries": {
            dim: [
                [info.name, info.begin_column, info.end_column]
                for info in registry.infos()
            ]
            for dim, registry in manager.registries.items()
        },
    }
    stratum = manager.stratum
    if stratum is not None:
        payload["stratum"] = {
            "nonseq_only": sorted(stratum._nonseq_only_routines),
            "inner_cp": {
                cp: list(tables_)
                for cp, tables_ in stratum._inner_cp_requirements.items()
            },
        }
    return payload


def write_checkpoint(manager) -> int:
    """Write a snapshot atomically, then reset the WAL.  Returns the
    new generation.

    Both steps run under bounded-backoff retry (see
    :func:`repro.sqlengine.resilience.retry_durable`): transient
    ``OSError`` blips are absorbed, anything else surfaces as a typed
    :class:`~repro.sqlengine.errors.DurabilityError` carrying the path
    and operation.  The ``checkpoint.rename`` fault site fires between
    the tmp-file write and the atomic rename — the crash point that
    leaves the *old* snapshot authoritative.
    """
    payload = build_snapshot(manager)
    generation = payload["generation"]
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    header = f"{SNAPSHOT_MAGIC} {zlib.crc32(body):08x}\n".encode("ascii")
    tmp_path = manager.snapshot_path.with_suffix(".json.tmp")

    def _write_tmp() -> None:
        with open(tmp_path, "wb") as handle:
            handle.write(header)
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())

    retry_durable(
        "checkpoint.write", tmp_path, _write_tmp, obs=manager.obs
    )
    fault_plan = manager.db.txn.fault_plan

    def _rename() -> None:
        if fault_plan is not None:
            fault_plan.hit("checkpoint.rename", "snapshot")
        os.replace(tmp_path, manager.snapshot_path)
        _fsync_dir(manager.dir)

    retry_durable(
        "checkpoint.rename", manager.snapshot_path, _rename, obs=manager.obs
    )
    manager.reset_wal(generation)
    manager.obs.inc("checkpoint.writes", 1)
    manager.obs.inc("checkpoint.bytes", len(body))
    return generation


def load_snapshot(path: Path) -> Optional[dict[str, Any]]:
    """Load and validate a snapshot; None when absent, raises on corruption."""
    if not path.exists():
        return None
    raw = path.read_bytes()
    newline = raw.find(b"\n")
    if newline < 0:
        raise WalError(f"{path.name}: truncated snapshot header")
    header = raw[:newline].decode("ascii", errors="replace").split()
    if len(header) != 2 or header[0] != SNAPSHOT_MAGIC:
        raise WalError(f"{path.name}: not a {SNAPSHOT_MAGIC} snapshot")
    body = raw[newline + 1 :]
    if f"{zlib.crc32(body):08x}" != header[1]:
        raise WalError(f"{path.name}: snapshot checksum mismatch")
    payload = json.loads(body.decode("utf-8"))
    if payload.get("magic") != SNAPSHOT_MAGIC:
        raise WalError(f"{path.name}: snapshot payload magic mismatch")
    return payload


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
