"""Hand-written lexer for SQL/PSM text.

Produces a flat list of :class:`~repro.sqlengine.tokens.Token`.  The
grammar is the SQL subset described in DESIGN.md section 3.1 plus the
temporal keywords, which lex like any other keyword; whether they are
*meaningful* is the parser's concern.
"""

from __future__ import annotations

from repro.sqlengine.errors import LexError
from repro.sqlengine.tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenKind

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_SPACE = frozenset(" \t\r\n")


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into a token list terminated by an EOF token.

    Raises :class:`LexError` on unterminated strings or stray characters.
    Supports ``--`` line comments and ``/* ... */`` block comments.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in _SPACE:
            if ch == "\n":
                line += 1
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end
            continue
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", i, line)
            line += text.count("\n", i, end)
            i = end + 2
            continue
        if ch == "'":
            value, i, line = _lex_string(text, i, line)
            tokens.append(Token(TokenKind.STRING, value, i, line))
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and text[i + 1] in _DIGITS):
            start = i
            i = _scan_number(text, i)
            tokens.append(Token(TokenKind.NUMBER, text[start:i], start, line))
            continue
        if ch in _IDENT_START or ch == '"':
            token, i = _lex_word(text, i, line)
            tokens.append(token)
            continue
        op = _match_operator(text, i)
        if op is not None:
            tokens.append(Token(TokenKind.OPERATOR, op, i, line))
            i += len(op)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, ch, i, line))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", i, line)
    tokens.append(Token(TokenKind.EOF, "", n, line))
    return tokens


def _lex_string(text: str, i: int, line: int) -> tuple[str, int, int]:
    """Lex a single-quoted string starting at ``i``; '' escapes a quote."""
    start = i
    i += 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1, line
        if ch == "\n":
            line += 1
        parts.append(ch)
        i += 1
    raise LexError("unterminated string literal", start, line)


def _scan_number(text: str, i: int) -> int:
    """Scan an integer or decimal literal, returning the end offset."""
    n = len(text)
    while i < n and text[i] in _DIGITS:
        i += 1
    if i < n and text[i] == "." and i + 1 < n and text[i + 1] in _DIGITS:
        i += 1
        while i < n and text[i] in _DIGITS:
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j] in _DIGITS:
            i = j
            while i < n and text[i] in _DIGITS:
                i += 1
    return i


def _lex_word(text: str, i: int, line: int) -> tuple[Token, int]:
    """Lex an identifier, keyword, or double-quoted delimited identifier."""
    start = i
    if text[i] == '"':
        end = text.find('"', i + 1)
        if end < 0:
            raise LexError("unterminated delimited identifier", i, line)
        return Token(TokenKind.IDENT, text[i + 1 : end], start, line), end + 1
    n = len(text)
    while i < n and text[i] in _IDENT_CONT:
        i += 1
    word = text[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenKind.KEYWORD, upper, start, line), i
    return Token(TokenKind.IDENT, word, start, line), i


def _match_operator(text: str, i: int) -> str | None:
    """Return the longest operator starting at ``i``, or None."""
    for op in OPERATORS:
        if text.startswith(op, i):
            return op
    return None
