"""Resilience layer: query watchdog, resource governor, retry, scrubbing, chaos.

The engine's north star is serving heavy concurrent traffic; no
multi-client front-end is safe to build until a single statement can be
interrupted, budgeted, and retried.  This module concentrates those
cross-cutting concerns:

* :class:`ResilienceManager` — one per :class:`~repro.sqlengine.engine.Database`,
  combining the **query watchdog** (per-statement deadlines, async
  cancellation, deterministic cancel-at-check triggers for tests) and
  the **resource governor** (row-scan / undo-depth / resident-bytes
  budgets).  Hot paths pay one attribute load while disarmed::

      res = db.resilience
      if res.armed:
          res.check()

  Check sites: every planner scan batch, every interpreted table bind,
  every MAX constant-period iteration, the PERST row pass, constant-
  period materialization, and every PSM statement boundary.  A tripped
  deadline raises :class:`QueryCancelled` (SQLSTATE ``57014``), a
  :class:`~repro.sqlengine.errors.SignalError` subclass, so it unwinds
  through the existing handler/rollback machinery exactly like a
  ``SIGNAL``-raised condition and leaves the undo log clean.

* **Graceful degradation** — under resident-bytes pressure the planner
  consults :meth:`ResilienceManager.allow_columnar` before building a
  columnar image and falls back to streaming row-at-a-time scans; every
  degradation is counted (``resilience.degradations.vectorized``) and
  surfaced in EXPLAIN ANALYZE.

* :func:`retry_durable` — bounded-backoff retry around WAL write/fsync
  and checkpoint tmp+rename.  Transient ``OSError``\\ s (EINTR/EAGAIN/
  ENOSPC-style) are retried with exponential backoff and counted under
  ``wal.retries``; exhaustion (or a non-transient error) raises a typed
  :class:`~repro.sqlengine.errors.DurabilityError` carrying the path
  and operation.

* :func:`verify_store` — the **durable-state scrubber**: walks the WAL
  CRC chain and the checkpoint header *offline*, reports the first
  torn/corrupt frame, and can quarantine the bad suffix to a sidecar
  file instead of silently truncating at next open.  Exposed as
  ``Database.verify()`` and the ``repro verify --db PATH`` CLI.

* :class:`ChaosSchedule` — a seeded extension of
  :class:`~repro.sqlengine.txn.FaultPlan`/``FaultSet`` arming randomized
  multi-site fault sequences (mutation faults, fsync kills, mid-loop
  cancellations) across whole workloads.  The chaos harness asserts the
  resilience invariant: *complete, or fail typed with clean rollback,
  or recover to the committed-prefix fingerprint — never hang, never
  corrupt*.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.sqlengine.errors import (
    DurabilityError,
    QueryCancelled,
    ResourceBudgetExceeded,
)

__all__ = [
    "ResilienceManager",
    "QueryCancelled",
    "ResourceBudgetExceeded",
    "DurabilityError",
    "retry_durable",
    "TRANSIENT_ERRNOS",
    "VerifyReport",
    "verify_store",
    "ChaosSchedule",
]


# ---------------------------------------------------------------------------
# watchdog + governor
# ---------------------------------------------------------------------------


class ResilienceManager:
    """Per-database watchdog and resource governor.

    Everything is disarmed by default; ``armed`` is a plain bool the hot
    paths read before calling :meth:`check`, so the disabled path costs
    two attribute loads and a branch.  Arming happens through the
    configuration properties (``statement_timeout``, budgets), an
    explicit :meth:`cancel`, or a deterministic ``cancel_at_check``
    trigger (used by tests and the chaos harness).

    Deadlines and the row-scan baseline are per *top-level* statement:
    :meth:`begin_statement`/:meth:`end_statement` track nesting (the
    stratum re-enters ``Database.execute_ast`` once per constant
    period), and only the outermost entry re-arms the clock.
    """

    __slots__ = (
        "db",
        "armed",
        "checks",
        "_statement_timeout",
        "_deadline",
        "_cancel_requested",
        "_cancel_at_check",
        "_max_rows_scanned",
        "_max_undo_depth",
        "_max_resident_bytes",
        "_depth",
        "_rows_baseline",
        "_resident_extra",
    )

    def __init__(self, db) -> None:
        self.db = db
        self.armed = False
        self.checks = 0  # watchdog checks since the statement began
        self._statement_timeout: Optional[float] = None
        self._deadline: Optional[float] = None
        self._cancel_requested = False
        self._cancel_at_check: Optional[int] = None
        self._max_rows_scanned: Optional[int] = None
        self._max_undo_depth: Optional[int] = None
        self._max_resident_bytes: Optional[int] = None
        self._depth = 0
        self._rows_baseline = 0
        # bytes admitted by allow_columnar since the last gauge refresh:
        # the gauge is only recomputed on demand, so stores granted in
        # between must count against the budget too
        self._resident_extra = 0

    # -- configuration ---------------------------------------------------

    def _rearm(self) -> None:
        self.armed = (
            self._statement_timeout is not None
            or self._deadline is not None
            or self._cancel_requested
            or self._cancel_at_check is not None
            or self._max_rows_scanned is not None
            or self._max_undo_depth is not None
            or self._max_resident_bytes is not None
        )

    @property
    def statement_timeout(self) -> Optional[float]:
        """Per-top-level-statement deadline in seconds (None = off)."""
        return self._statement_timeout

    @statement_timeout.setter
    def statement_timeout(self, seconds: Optional[float]) -> None:
        self._statement_timeout = seconds
        if self._depth > 0:
            # take effect immediately when set mid-statement
            self._deadline = (
                time.monotonic() + seconds if seconds is not None else None
            )
        self._rearm()

    @property
    def max_rows_scanned(self) -> Optional[int]:
        return self._max_rows_scanned

    @max_rows_scanned.setter
    def max_rows_scanned(self, limit: Optional[int]) -> None:
        self._max_rows_scanned = limit
        self._rearm()

    @property
    def max_undo_depth(self) -> Optional[int]:
        return self._max_undo_depth

    @max_undo_depth.setter
    def max_undo_depth(self, limit: Optional[int]) -> None:
        self._max_undo_depth = limit
        self._rearm()

    @property
    def max_resident_bytes(self) -> Optional[int]:
        return self._max_resident_bytes

    @max_resident_bytes.setter
    def max_resident_bytes(self, limit: Optional[int]) -> None:
        self._max_resident_bytes = limit
        self._rearm()

    @property
    def cancel_at_check(self) -> Optional[int]:
        """One-shot deterministic trigger: cancel on the Nth watchdog
        check of the current (or next) top-level statement.  Cleared
        when it fires, so a CONTINUE handler can make progress."""
        return self._cancel_at_check

    @cancel_at_check.setter
    def cancel_at_check(self, n: Optional[int]) -> None:
        self._cancel_at_check = n
        self._rearm()

    def configure(
        self,
        *,
        statement_timeout: Optional[float] = None,
        max_rows_scanned: Optional[int] = None,
        max_undo_depth: Optional[int] = None,
        max_resident_bytes: Optional[int] = None,
    ) -> "ResilienceManager":
        """Set (or clear, with None) every knob in one call."""
        self._statement_timeout = statement_timeout
        self._max_rows_scanned = max_rows_scanned
        self._max_undo_depth = max_undo_depth
        self._max_resident_bytes = max_resident_bytes
        self._rearm()
        return self

    def disable(self) -> None:
        """Back to the disarmed (free) state."""
        self._statement_timeout = None
        self._deadline = None
        self._cancel_requested = False
        self._cancel_at_check = None
        self._max_rows_scanned = None
        self._max_undo_depth = None
        self._max_resident_bytes = None
        self.armed = False

    def cancel(self) -> None:
        """Request cancellation of the in-flight statement; the next
        watchdog check raises :class:`QueryCancelled`."""
        self._cancel_requested = True
        self.armed = True

    # -- statement lifecycle --------------------------------------------

    def begin_statement(self) -> None:
        """Called on entry to a top-level statement (nesting-aware)."""
        self._depth += 1
        if self._depth == 1 and self.armed:
            self.checks = 0
            self._rows_baseline = self.db.obs.value("engine.rows_scanned")
            if self._statement_timeout is not None:
                self._deadline = time.monotonic() + self._statement_timeout

    def end_statement(self) -> None:
        if self._depth > 0:
            self._depth -= 1
        if self._depth == 0:
            self._deadline = None
            self._rearm()

    # -- the hot check ---------------------------------------------------

    def check(self) -> None:
        """One watchdog/governor checkpoint.  Call only when ``armed``."""
        self.checks += 1
        trigger = self._cancel_at_check
        if trigger is not None and self.checks >= trigger:
            self._cancel_at_check = None  # one-shot
            self.db.obs.inc("resilience.cancellations")
            raise QueryCancelled(
                f"query cancelled by watchdog trigger (check #{self.checks})"
            )
        if self._cancel_requested:
            self._cancel_requested = False
            self.db.obs.inc("resilience.cancellations")
            raise QueryCancelled("query cancelled on request")
        deadline = self._deadline
        if deadline is not None and time.monotonic() > deadline:
            self.db.obs.inc("resilience.cancellations")
            raise QueryCancelled(
                f"statement deadline exceeded"
                f" ({self._statement_timeout:.3f}s)"
            )
        limit = self._max_rows_scanned
        if limit is not None:
            used = self.db.obs.value("engine.rows_scanned") - self._rows_baseline
            if used > limit:
                self.db.obs.inc("resilience.budget_stops")
                raise ResourceBudgetExceeded(
                    f"row-scan budget exceeded: {used} > {limit} rows"
                    f" this statement",
                    budget="rows_scanned",
                    limit=limit,
                    used=used,
                )
        limit = self._max_undo_depth
        if limit is not None:
            used = len(self.db.txn.log)
            if used > limit:
                self.db.obs.inc("resilience.budget_stops")
                raise ResourceBudgetExceeded(
                    f"undo-depth budget exceeded: {used} > {limit}"
                    f" log entries",
                    budget="undo_depth",
                    limit=limit,
                    used=used,
                )

    # -- graceful degradation (the governor's soft edge) -----------------

    def allow_columnar(self, table) -> bool:
        """May the planner materialize ``table``'s columnar image?

        Under a resident-bytes budget, building a *new* store that
        would push the estimate past the limit is denied — the scan
        degrades to the streaming row-at-a-time path instead of
        failing.  A store that is already built and current is always
        allowed: it costs no new memory.  Estimation is deliberately
        cheap (rows × columns × a per-cell constant); calling
        ``table.bytes_resident()`` here would *build* the store we are
        deciding about.
        """
        limit = self._max_resident_bytes
        if limit is None:
            return True
        cached = table._column_store
        if cached is not None and cached[0] == table.version:
            return True
        estimate = _estimate_store_bytes(table)
        resident = (
            self.db.obs.gauges.get("engine.bytes_resident", 0)
            + self._resident_extra
        )
        if resident + estimate > limit:
            self.db.obs.inc("resilience.degradations.vectorized")
            return False
        self._resident_extra += estimate
        return True

    def note_gauge_refresh(self) -> None:
        """The ``engine.bytes_resident`` gauge was just recomputed; the
        provisional grants are folded into it."""
        self._resident_extra = 0

    # -- introspection ---------------------------------------------------

    def state(self) -> dict[str, Any]:
        return {
            "armed": self.armed,
            "statement_timeout": self._statement_timeout,
            "max_rows_scanned": self._max_rows_scanned,
            "max_undo_depth": self._max_undo_depth,
            "max_resident_bytes": self._max_resident_bytes,
            "checks": self.checks,
            "cancellations": self.db.obs.value("resilience.cancellations"),
            "budget_stops": self.db.obs.value("resilience.budget_stops"),
            "degradations": self.db.obs.value(
                "resilience.degradations.vectorized"
            ),
        }


# rough per-cell byte cost of a columnar image (ColumnVector holds
# typed arrays for dates/ints and object lists otherwise; 24 bytes/cell
# sits between the two) plus a fixed per-column overhead
_CELL_BYTES = 24
_COLUMN_OVERHEAD = 64


def _estimate_store_bytes(table) -> int:
    return (
        len(table.rows) * len(table.columns) * _CELL_BYTES
        + len(table.columns) * _COLUMN_OVERHEAD
    )


# ---------------------------------------------------------------------------
# transient-fault retry
# ---------------------------------------------------------------------------

# errno values treated as transient: interrupted syscalls, temporary
# resource exhaustion.  Anything else is wrapped and raised immediately.
TRANSIENT_ERRNOS = frozenset(
    {errno.EINTR, errno.EAGAIN, errno.ENOSPC, errno.EBUSY, errno.EIO}
)

RETRY_ATTEMPTS = 5
RETRY_BASE_DELAY = 0.001  # seconds; doubles per retry
RETRY_MAX_DELAY = 0.020


def retry_durable(
    operation: str,
    path: Union[str, Path],
    fn: Callable[[], Any],
    *,
    obs=None,
    attempts: int = RETRY_ATTEMPTS,
) -> Any:
    """Run ``fn`` with bounded-backoff retry on transient ``OSError``.

    Retries are counted under ``wal.retries`` (when ``obs`` is given).
    A non-transient ``OSError``, or exhaustion of ``attempts``, raises
    :class:`DurabilityError` chaining the original error.  Exceptions
    that are not ``OSError`` (including injected
    :class:`~repro.sqlengine.errors.FaultInjected` crashes) pass through
    untouched — a simulated crash must never be "retried away".
    """
    delay = RETRY_BASE_DELAY
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except OSError as exc:
            transient = exc.errno in TRANSIENT_ERRNOS
            if transient and attempt < attempts:
                if obs is not None:
                    obs.inc("wal.retries")
                time.sleep(delay)
                delay = min(delay * 2, RETRY_MAX_DELAY)
                continue
            raise DurabilityError(
                operation, str(path), attempts=attempt, cause=exc
            ) from exc


# ---------------------------------------------------------------------------
# durable-state scrubber
# ---------------------------------------------------------------------------


@dataclass
class VerifyReport:
    """The scrubber's findings for one database directory."""

    path: str
    snapshot_present: bool = False
    snapshot_ok: bool = True
    snapshot_generation: Optional[int] = None
    wal_present: bool = False
    wal_generation: Optional[int] = None
    wal_size: int = 0
    good_end: int = 0
    frames: int = 0
    committed_transactions: int = 0
    uncommitted_records: int = 0
    stale_wal: bool = False
    corrupt_offset: Optional[int] = None
    quarantined_to: Optional[str] = None
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Clean, or cleaned: corruption that was quarantined passes."""
        return not self.problems

    def render(self) -> str:
        lines = [f"verify {self.path}:"]
        if self.snapshot_present:
            status = "ok" if self.snapshot_ok else "CORRUPT"
            lines.append(
                f"  snapshot: {status}"
                + (
                    f" (generation {self.snapshot_generation})"
                    if self.snapshot_generation is not None
                    else ""
                )
            )
        else:
            lines.append("  snapshot: absent (fresh store)")
        if self.wal_present:
            lines.append(
                f"  wal: {self.frames} intact frame(s),"
                f" {self.committed_transactions} committed transaction(s),"
                f" {self.good_end}/{self.wal_size} bytes intact"
                + (
                    f" (generation {self.wal_generation})"
                    if self.wal_generation is not None
                    else ""
                )
            )
            if self.stale_wal:
                lines.append(
                    "  note: wal generation predates the snapshot —"
                    " stale log, ignored at recovery"
                )
            if self.uncommitted_records:
                lines.append(
                    f"  note: {self.uncommitted_records} record(s) after"
                    " the last commit (uncommitted tail, discarded at"
                    " recovery)"
                )
        else:
            lines.append("  wal: absent")
        for problem in self.problems:
            lines.append(f"  FAIL: {problem}")
        if self.quarantined_to:
            lines.append(
                f"  quarantined: bad suffix moved to {self.quarantined_to}"
            )
        lines.append("  result: " + ("OK" if self.ok else "CORRUPT"))
        return "\n".join(lines)


def verify_store(
    path: Union[str, Path], *, quarantine: bool = False
) -> VerifyReport:
    """Walk a database directory's durable state offline.

    Validates the snapshot CRC header and the WAL frame chain (length
    prefixes, CRC32 per frame, decodable payloads, header generation,
    begin/commit pairing).  On corruption the report carries the byte
    offset of the first bad frame; with ``quarantine=True`` the bad
    suffix is moved to a ``wal.log.quarantine-<offset>`` sidecar and
    the WAL truncated at the last intact frame, so the evidence is
    preserved instead of silently discarded at next open.
    """
    from repro.sqlengine.checkpoint import load_snapshot
    from repro.sqlengine.wal import SNAPSHOT_FILE, WAL_FILE, WalError, read_frames

    directory = Path(path)
    report = VerifyReport(path=str(directory))
    snapshot_path = directory / SNAPSHOT_FILE
    wal_path = directory / WAL_FILE

    # -- snapshot -------------------------------------------------------
    report.snapshot_present = snapshot_path.exists()
    snapshot_generation = None
    if report.snapshot_present:
        try:
            payload = load_snapshot(snapshot_path)
        except WalError as exc:
            report.snapshot_ok = False
            report.problems.append(str(exc))
        else:
            if payload is not None:
                snapshot_generation = payload.get("generation")
                report.snapshot_generation = snapshot_generation

    # -- WAL frame chain ------------------------------------------------
    report.wal_present = wal_path.exists()
    if not report.wal_present:
        return report
    data = wal_path.read_bytes()
    report.wal_size = len(data)
    records, good_end = read_frames(data)
    report.good_end = good_end
    report.frames = len(records)
    if good_end < len(data):
        report.corrupt_offset = good_end
        report.problems.append(
            f"{WAL_FILE}: torn or corrupt frame at byte {good_end}"
            f" ({len(data) - good_end} trailing byte(s) unreadable)"
        )
    if records:
        header = records[0]
        if header[0] != "walhdr" or len(header) < 2:
            report.problems.append(f"{WAL_FILE}: missing walhdr header frame")
        else:
            report.wal_generation = header[1]
            if (
                snapshot_generation is not None
                and header[1] < snapshot_generation
            ):
                report.stale_wal = True
            elif (
                snapshot_generation is not None
                and header[1] > snapshot_generation
            ):
                report.problems.append(
                    f"{WAL_FILE}: generation {header[1]} is ahead of the"
                    f" snapshot's {snapshot_generation} — snapshot and log"
                    " do not belong together"
                )
    elif data:
        report.problems.append(f"{WAL_FILE}: no intact frames")

    # -- begin/commit pairing -------------------------------------------
    tail = 0  # records since the last commit marker
    for record in records[1:]:
        if record[0] == "commit":
            report.committed_transactions += 1
            tail = 0
        else:
            tail += 1
    report.uncommitted_records = tail

    # -- quarantine -----------------------------------------------------
    if report.corrupt_offset is not None and quarantine:
        sidecar = wal_path.with_name(
            f"{WAL_FILE}.quarantine-{report.corrupt_offset}"
        )
        sidecar.write_bytes(data[report.corrupt_offset :])
        with open(wal_path, "r+b") as handle:
            handle.truncate(report.corrupt_offset)
            handle.flush()
            os.fsync(handle.fileno())
        report.quarantined_to = str(sidecar)
        # the store is clean again; keep the finding in the report text
        # but drop it from the failure list
        report.problems = [
            p for p in report.problems if "torn or corrupt frame" not in p
        ]
    return report


# ---------------------------------------------------------------------------
# chaos schedules
# ---------------------------------------------------------------------------

# fault sites a schedule may arm, split by whether they require an
# attached durability manager to ever be reached
MUTATION_SITES = (
    "table.insert",
    "table.update",
    "table.delete",
    "table.set_cell",
    "table.replace_rows",
    "table.truncate",
)
DURABLE_SITES = ("wal.write", "wal.fsync", "checkpoint.rename")


class ChaosSchedule:
    """A seeded, randomized multi-site fault/cancellation schedule.

    Extends :class:`~repro.sqlengine.txn.FaultPlan`/``FaultSet`` from
    single deterministic faults to whole-workload chaos: a schedule owns
    zero or more fault plans over the mutation and durability sites plus
    an optional watchdog ``cancel_at_check`` trigger, all drawn from one
    seed so every run is reproducible.

    Usage::

        schedule = ChaosSchedule(seed)
        schedule.arm(db)
        try:
            ... run the workload ...
        finally:
            schedule.disarm(db)
    """

    def __init__(
        self,
        seed: int,
        *,
        durable: bool = False,
        max_faults: int = 2,
        max_fault_at: int = 40,
        cancel_probability: float = 0.5,
        max_cancel_check: int = 400,
        transient_probability: float = 0.3,
    ) -> None:
        from repro.sqlengine.txn import FaultPlan

        self.seed = seed
        rng = random.Random(seed)
        sites = MUTATION_SITES + (DURABLE_SITES if durable else ())
        self.plans: list = []
        for _ in range(rng.randrange(max_faults + 1)):
            site = rng.choice(sites)
            # cap the trigger offset to the workload's expected hit
            # volume, else most plans never reach their `at`
            kwargs: dict[str, Any] = {"at": rng.randrange(1, max_fault_at)}
            if rng.random() < 0.3:
                kwargs["every"] = rng.randrange(2, 20)
                kwargs["times"] = rng.randrange(1, 4)
            if site in ("wal.write", "wal.fsync", "checkpoint.rename") and (
                rng.random() < transient_probability
            ):
                # an EINTR-style blip: absorbed by retry_durable, the
                # workload should complete as if nothing happened
                kwargs["exc_factory"] = _transient_os_error
            self.plans.append(FaultPlan(site, **kwargs))
        self.cancel_at_check: Optional[int] = (
            rng.randrange(1, max_cancel_check)
            if rng.random() < cancel_probability
            else None
        )
        self._saved_fault_plan: Any = None

    @property
    def transient_only(self) -> bool:
        """True when every armed fault is a retryable OSError blip."""
        return all(
            getattr(plan, "exc_factory", None) is not None
            for plan in self.plans
        ) and self.cancel_at_check is None

    def describe(self) -> str:
        parts = [
            f"{plan.site}@{plan.at}"
            + (f"/every{plan.every}x{plan.times}" if plan.every else "")
            + ("(transient)" if getattr(plan, "exc_factory", None) else "")
            for plan in self.plans
        ]
        if self.cancel_at_check is not None:
            parts.append(f"cancel@check{self.cancel_at_check}")
        return f"seed={self.seed}: " + (", ".join(parts) if parts else "no-op")

    def arm(self, db) -> None:
        from repro.sqlengine.txn import FaultSet

        self._saved_fault_plan = db.txn.fault_plan
        if self.plans:
            db.txn.fault_plan = FaultSet(*self.plans)
        if self.cancel_at_check is not None:
            db.resilience.cancel_at_check = self.cancel_at_check

    def disarm(self, db) -> None:
        db.txn.fault_plan = self._saved_fault_plan
        self._saved_fault_plan = None
        db.resilience.cancel_at_check = None


def _transient_os_error(site: str, target: str, hits: int) -> OSError:
    return OSError(
        errno.EINTR,
        f"injected transient fault at {site} on {target!r} (match #{hits})",
    )


class ReplicationChaos:
    """Seeded perturbation of the WAL-shipping link.

    The replication-side sibling of :class:`ChaosSchedule`: one seed
    draws a reproducible sequence of link misbehaviors.  An instance is
    a ``StandbyManager`` ``link_filter`` — called with each fetched
    ``(offset, data)`` batch, it returns the deliveries the standby
    actually sees:

    - **tear**: only a prefix of the batch arrives (the tail is
      re-fetched on the next poll, since the applied offset only
      advances past complete commit groups);
    - **duplicate**: the batch is delivered twice (the second copy
      trims to nothing against the applier's local offset);
    - **stall**: the batch is dropped outright (the tailer re-requests
      the same offset);
    - **reorder**: the batch is held back and delivered *after* its
      successor, which the applier rejects as a gap — a recoverable
      :class:`~repro.sqlengine.errors.ReplicationError` that makes the
      tailer re-request from its applied offset.

    ``kill_primary_after`` does not shape the link; it marks the batch
    count after which a harness should kill the primary mid-stream
    (consult :attr:`primary_should_die`).
    """

    ACTIONS = ("pass", "tear", "duplicate", "stall", "reorder")

    def __init__(
        self,
        seed: int,
        *,
        perturb_probability: float = 0.4,
        kill_primary_after: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self._rng = random.Random((seed << 1) ^ 0x9E3779B9)
        self.perturb_probability = perturb_probability
        self.kill_primary_after = kill_primary_after
        self.batches_seen = 0
        self.actions: list = []  # the drawn sequence, for post-mortems
        self._held: Optional[tuple] = None

    @property
    def primary_should_die(self) -> bool:
        return (
            self.kill_primary_after is not None
            and self.batches_seen >= self.kill_primary_after
        )

    def describe(self) -> str:
        kill = (
            f", kill-primary@{self.kill_primary_after}"
            if self.kill_primary_after is not None
            else ""
        )
        return (
            f"seed={self.seed}: p={self.perturb_probability}{kill},"
            f" actions={','.join(self.actions) or 'none yet'}"
        )

    def __call__(self, offset: int, data: bytes) -> list:
        self.batches_seen += 1
        rng = self._rng
        if rng.random() >= self.perturb_probability:
            action = "pass"
        else:
            action = rng.choice(self.ACTIONS[1:])
        self.actions.append(action)
        deliveries: list = []
        if self._held is not None and action != "reorder":
            # release a previously held batch *after* the current one:
            # the standby sees them out of order
            held, self._held = self._held, None
            if action == "tear" and len(data) > 1:
                deliveries.append((offset, data[: rng.randrange(1, len(data))]))
            elif action == "duplicate":
                deliveries.extend([(offset, data), (offset, data)])
            elif action == "stall":
                pass
            else:
                deliveries.append((offset, data))
            deliveries.append(held)
            return deliveries
        if action == "tear" and len(data) > 1:
            deliveries.append((offset, data[: rng.randrange(1, len(data))]))
        elif action == "duplicate":
            deliveries.extend([(offset, data), (offset, data)])
        elif action == "stall":
            pass
        elif action == "reorder":
            if self._held is not None:
                deliveries.append(self._held)
            self._held = (offset, data)
        else:
            deliveries.append((offset, data))
        return deliveries
