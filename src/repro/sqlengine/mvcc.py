"""Snapshot-isolation MVCC over the copy-on-write version chains.

One :class:`MvccManager` per :class:`~repro.sqlengine.engine.Database`
coordinates any number of sessions (each a
:class:`~repro.sqlengine.txn.TransactionManager`):

* a global *commit sequence number* (``csn``) advances once per
  committed writing transaction;
* a reader **pins** a snapshot — the csn at BEGIN (or at the start of
  an autocommit statement) — and every read resolves through
  :meth:`read_view`, which returns either the live table (fast path:
  nothing newer committed, no foreign writer) or a cached read-only
  view over the pre-image captured in the table's version chain;
* a writer **claims** each table before its first mutation.  The claim
  is where conflicts surface: a table already claimed by another live
  transaction raises :class:`~repro.sqlengine.errors.SerializationError`
  (first-writer-wins), as does a table whose last committed csn is
  newer than the claimant's snapshot (first-committer-wins).  A
  successful claim captures the committed pre-image — row *copies*,
  because updates mutate row lists in place — onto the version chain;
* commit bumps the csn and stamps it on every claimed table; abort
  releases the claims and leaves the chain entry (its image still
  describes the committed state the undo log just restored).

**Single-session cost is zero.** While only one session is registered
(``multi`` is False) claims return immediately, no pre-images are
captured, and reads go straight to the live table — the tier-1 suite
and the benchmarks pay two attribute loads and a branch per mutation.
Chains exist only while a snapshot that needs them is pinned: garbage
collection runs on every unpin and commit, and when the last extra
session leaves, all chains are dropped.

Schema changes are deliberately **not** versioned: DDL is globally
visible the moment it applies (documented in DESIGN.md §3.8).  A
shared :class:`_SchemaResource` still runs the claim protocol, so two
sessions racing on DDL get a clean 40001 instead of corrupt catalogs.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlengine.errors import (
    ExecutionError,
    ReadOnlyError,
    SerializationError,
)
from repro.sqlengine.storage import Table


class _SchemaResource:
    """The catalog, as a single claimable resource (no version chain)."""

    name = "<schema>"
    temporary = False

    __slots__ = ("writer", "last_committed_csn", "version_chain", "_snapshot_views")

    def __init__(self) -> None:
        self.writer = None
        self.last_committed_csn = 0
        self.version_chain: list = []
        self._snapshot_views: dict = {}


class MvccManager:
    """Pins, claims, commit ordering, and version-chain GC."""

    def __init__(self, db) -> None:
        self.db = db
        self.csn = 0
        # the root session always exists; `multi` is the one flag every
        # hot path consults — False means MVCC is fully dormant
        self.session_count = 1
        self.multi = False
        # pinned snapshot csn -> number of transactions pinned at it
        self.pins: dict[int, int] = {}
        # standby mode: only the root session (the replication applier)
        # may claim tables for writing; reader sessions get a typed
        # 25006.  Schema claims stay allowed — serving a sequenced query
        # may lazily install its transform routine.
        self.read_only = False
        self.schema = _SchemaResource()
        # tables (and the schema resource) holding live version chains
        self._chained: set = set()
        # transactions with unreleased write claims
        self._inflight: set = set()

    # -- sessions --------------------------------------------------------

    def register_session(self) -> None:
        """Admit one more session.

        The dormant → multi transition requires the active transaction
        to be between autocommitted statements: while dormant no claims
        are taken and no pre-images captured, so an open explicit
        transaction (or an in-flight statement) holds writes whose
        pre-image cannot be captured retroactively.  Once ``multi``
        (capture active), further sessions join freely."""
        if not self.multi:
            txn = self.db.txn
            if txn.explicit or txn.marks or not self.quiescent():
                raise ExecutionError(
                    "cannot register a session while writes are in flight"
                )
        self.session_count += 1
        self.multi = True

    def unregister_session(self) -> None:
        self.session_count -= 1
        self._maybe_collapse()

    def quiescent(self) -> bool:
        """True when no transaction holds an unreleased write claim."""
        return not self._inflight

    def _maybe_collapse(self) -> None:
        """Drop back to the dormant single-session state when possible."""
        if self.session_count == 1 and not self.pins and not self._inflight:
            self.multi = False
            for resource in self._chained:
                resource.version_chain.clear()
                resource._snapshot_views.clear()
            self._chained.clear()

    # -- snapshot pins ---------------------------------------------------

    def pin(self, txn) -> int:
        """Fix ``txn``'s snapshot at the current csn."""
        snapshot = self.csn
        txn.snapshot = snapshot
        self.pins[snapshot] = self.pins.get(snapshot, 0) + 1
        return snapshot

    def unpin(self, txn) -> None:
        snapshot = txn.snapshot
        if snapshot is None:
            return
        txn.snapshot = None
        remaining = self.pins.get(snapshot, 0) - 1
        if remaining > 0:
            self.pins[snapshot] = remaining
            return
        self.pins.pop(snapshot, None)
        if self._chained:
            self._gc()
        self._maybe_collapse()

    # -- write claims ----------------------------------------------------

    def claim(self, txn, resource, capture: bool = True) -> None:
        """Claim ``resource`` (a table or the schema) for writing.

        No-op while single-session, for temporaries, and for resources
        the transaction already claimed.  Otherwise: first-writer-wins
        against a foreign in-flight claim, first-committer-wins against
        a commit newer than the claimant's snapshot, then pre-image
        capture and registration in the transaction's write set.
        """
        if not self.multi or resource.temporary:
            return
        if (
            self.read_only
            and resource is not self.schema
            and txn is not self.db.root_txn
        ):
            raise ReadOnlyError(
                f"cannot write to {resource.name}: this node is a read-only"
                " standby (25006)"
            )
        write_set = txn.write_set
        if resource in write_set:
            return
        writer = resource.writer
        if writer is not None and writer is not txn:
            raise SerializationError(
                f"could not serialize access to {resource.name}: it is"
                f" write-claimed by concurrent session {writer.name!r} (40001)"
            )
        snapshot = txn.snapshot
        if snapshot is not None and resource.last_committed_csn > snapshot:
            raise SerializationError(
                f"could not serialize access to {resource.name}: a concurrent"
                f" session committed csn {resource.last_committed_csn} after"
                f" this snapshot ({snapshot}) was pinned (40001)"
            )
        if capture:
            chain = resource.version_chain
            base = resource.last_committed_csn
            if not chain or chain[-1][0] != base:
                # row *copies*: set_cell / write_row / update_where
                # mutate the live row lists in place
                chain.append(
                    (base, [list(row) for row in resource.rows],
                     list(resource.columns))
                )
                self._chained.add(resource)
        resource.writer = txn
        write_set.add(resource)
        self._inflight.add(txn)

    def claim_schema(self, txn) -> None:
        self.claim(txn, self.schema, capture=False)

    def release_writes(self, txn, committed: bool) -> None:
        """Release every claim ``txn`` holds; a commit installs the new
        versions atomically under the next csn."""
        write_set = txn.write_set
        self._inflight.discard(txn)
        if not write_set:
            return
        if committed:
            self.csn += 1
            csn = self.csn
        for resource in write_set:
            if committed:
                resource.last_committed_csn = csn
            if resource.writer is txn:
                resource.writer = None
        write_set.clear()
        if self._chained:
            self._gc()

    # -- snapshot reads --------------------------------------------------

    def read_view(self, table: Table, txn) -> Table:
        """The version of ``table`` visible to ``txn``'s snapshot.

        Only consulted while ``multi``; the executor's read paths check
        the flag inline and skip the call entirely when dormant.
        """
        if table.temporary or table.txn is None:
            return table  # scratch / routine-local: session-private
        writer = table.writer
        if writer is txn:
            return table  # a transaction reads its own writes
        snapshot = txn.snapshot
        if snapshot is None:
            snapshot = self.csn  # unpinned read (direct API access)
        if writer is None and table.last_committed_csn <= snapshot:
            return table  # fast path: live state is the visible version
        chain = table.version_chain
        for i in range(len(chain) - 1, -1, -1):
            if chain[i][0] <= snapshot:
                return self._view_for(table, chain[i])
        raise SerializationError(
            f"snapshot {snapshot} of table {table.name} is no longer"
            f" available (40001)"
        )

    def _view_for(self, table: Table, entry) -> Table:
        csn, image, columns = entry
        view = table._snapshot_views.get(csn)
        if view is None:
            view = Table(table.name, columns, temporary=True)
            view.interval_pairs = list(table.interval_pairs)
            view.rows = image
            table._snapshot_views[csn] = view
        return view

    # -- chain garbage collection ---------------------------------------

    def _gc(self) -> None:
        """Drop chain entries no pinned snapshot can reach.

        Entry *i* serves snapshots in ``[csn_i, boundary_i)`` where the
        boundary is the next entry's csn — or the table's last committed
        csn for the final entry, unless a writer is in flight (then the
        final pre-image must stay for every pinned reader).
        """
        if not self.pins:
            for resource in self._chained:
                resource.version_chain.clear()
                resource._snapshot_views.clear()
            self._chained.clear()
            self._maybe_collapse()
            return
        min_pin = min(self.pins)
        emptied = []
        for resource in self._chained:
            chain = resource.version_chain
            drop = 0
            for i in range(len(chain)):
                if i + 1 < len(chain):
                    boundary: Optional[int] = chain[i + 1][0]
                elif resource.writer is not None:
                    boundary = None  # pre-image of the in-flight writer
                else:
                    boundary = resource.last_committed_csn
                if boundary is not None and boundary <= min_pin:
                    drop = i + 1
                else:
                    break
            if drop:
                for entry in chain[:drop]:
                    resource._snapshot_views.pop(entry[0], None)
                del chain[:drop]
            if not chain:
                emptied.append(resource)
        for resource in emptied:
            self._chained.discard(resource)

    # -- introspection ---------------------------------------------------

    def state(self) -> dict:
        """JSON-able MVCC state for trace summaries and tests."""
        return {
            "csn": self.csn,
            "sessions": self.session_count,
            "multi": self.multi,
            "pins": dict(self.pins),
            "chained_tables": sorted(
                r.name for r in self._chained if r is not self.schema
            ),
            "inflight_writers": sorted(t.name for t in self._inflight),
        }
