"""The write-ahead log: record framing, encoding, and the durability manager.

Durability is **opt-in** (``Database.attach_durability`` /
``Database.open`` / ``TemporalStratum.open``) and mirrors the tracing
design: while detached, every storage primitive pays one attribute load
(``txn.wal is None``) and nothing else.

When attached, the same primitives that feed the undo log also append a
*redo* record describing the mutation to an in-memory buffer on this
manager.  The buffer follows the transaction manager's mark discipline:

* rolling back to a mark truncates the buffer to the mark's position,
  so an aborted statement (or savepoint window) never reaches disk;
* releasing the last mark outside an explicit transaction — the
  autocommit commit point — frames the buffered records between
  ``begin``/``commit`` markers and appends them to the WAL file in one
  write, followed by one ``fsync`` (group commit);
* explicit ``COMMIT`` does the same for the whole transaction;
  ``ROLLBACK`` discards the buffer and writes nothing.

On-disk format (``wal.log`` inside the database directory): a sequence
of length-prefixed, CRC-checksummed frames::

    <u32 payload length> <u32 crc32(payload)> <payload bytes>

The payload is a JSON array ``[tag, ...args]``; values are encoded with
:func:`encode_value` (NULL ↔ ``null``, DATE ↔ ``{"d": ordinal}``).
The first frame of every WAL file is a ``["walhdr", generation]``
header; a checkpoint bumps the generation so a crash between snapshot
rename and WAL reset can never double-apply a stale log (see
:mod:`repro.sqlengine.checkpoint`).  Recovery semantics live in
:mod:`repro.sqlengine.recovery`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Optional, Union

from repro.sqlengine.errors import DurabilityError  # noqa: F401  (re-export)
from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.resilience import retry_durable
from repro.sqlengine.values import Date, Null

WAL_FILE = "wal.log"
SNAPSHOT_FILE = "snapshot.json"

_FRAME_HEADER = struct.Struct("<II")
# anything larger than this is treated as a corrupt length prefix
MAX_RECORD_BYTES = 64 * 1024 * 1024

# default auto-checkpoint threshold: once the WAL grows past this many
# bytes, the next commit triggers a checkpoint (None disables)
DEFAULT_AUTO_CHECKPOINT_BYTES = 8 * 1024 * 1024


class WalError(ExecutionError):
    """A durability-layer failure (bad directory, closed manager, ...)."""


# ---------------------------------------------------------------------------
# value / record encoding
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """One SQL cell value → a JSON-representable form."""
    if value is Null:
        return None
    if isinstance(value, Date):
        return {"d": value.ordinal}
    if isinstance(value, (bool, int, float, str)):
        return value
    raise WalError(f"cannot encode value of type {type(value).__name__} for WAL")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if value is None:
        return Null
    if isinstance(value, dict):
        return Date(value["d"])
    return value


def encode_row(row: list) -> list:
    return [encode_value(v) for v in row]


def decode_row(row: list) -> list:
    return [decode_value(v) for v in row]


def encode_rows_columnar(rows: list) -> dict:
    """A whole row set → transposed (columnar) JSON.

    ``{"n": row_count, "cols": [{"k": kind, "v": values}, ...]}`` with
    one entry per column and NULL encoded as ``null`` throughout:

    * ``"d"`` — day ordinals (plain ints): every non-NULL cell is a Date,
    * ``"v"`` — raw JSON scalars (bool/int/float/str),
    * ``"m"`` — mixed: cells via :func:`encode_value` (Date-dict form).

    Against the row-list encoding this drops the per-cell ``{"d": ...}``
    wrapper for date columns — the bulk of temporal checkpoint volume —
    and lets homogeneous columns serialize as flat scalar arrays.
    """
    if not rows:
        return {"n": 0, "cols": []}
    cols = []
    for index in range(len(rows[0])):
        values = [row[index] for row in rows]
        dates = 0
        scalars = 0
        for value in values:
            if value is Null:
                continue
            if isinstance(value, Date):
                dates += 1
            elif isinstance(value, (bool, int, float, str)):
                scalars += 1
            else:
                raise WalError(
                    f"cannot encode value of type {type(value).__name__} for WAL"
                )
        if dates and not scalars:
            kind = "d"
            encoded = [None if v is Null else v.ordinal for v in values]
        elif not dates:
            kind = "v"
            encoded = [None if v is Null else v for v in values]
        else:
            kind = "m"
            encoded = [encode_value(v) for v in values]
        cols.append({"k": kind, "v": encoded})
    return {"n": len(rows), "cols": cols}


def decode_rows_columnar(data: dict) -> list:
    """Inverse of :func:`encode_rows_columnar`."""
    columns = []
    for col in data["cols"]:
        kind = col["k"]
        values = col["v"]
        if kind == "d":
            columns.append([Null if v is None else Date(v) for v in values])
        elif kind == "v":
            columns.append([Null if v is None else v for v in values])
        else:
            columns.append([decode_value(v) for v in values])
    if not columns:
        return []
    return [list(cells) for cells in zip(*columns)]


def decode_rows_any(data) -> list:
    """Decode either row-set encoding: the legacy row list or the
    columnar dict — recovery stays compatible with both generations of
    WAL records and snapshots."""
    if isinstance(data, dict):
        return decode_rows_columnar(data)
    return [decode_row(r) for r in data]


def frame(payload: bytes) -> bytes:
    """One length-prefixed, CRC-checksummed WAL frame."""
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def encode_record(record: list) -> bytes:
    return json.dumps(record, separators=(",", ":")).encode("utf-8")


def read_frames(data: bytes) -> tuple[list[list], int]:
    """Decode frames from raw WAL bytes.

    Returns ``(records, good_end)`` where ``good_end`` is the offset
    just past the last intact frame.  Scanning stops at the first torn
    (short) frame, checksum mismatch, implausible length prefix, or
    undecodable payload — truncate-at-first-bad-record semantics.
    """
    records: list[list] = []
    offset = 0
    size = len(data)
    while offset + _FRAME_HEADER.size <= size:
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            break
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > size:
            break  # torn final record
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt record
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        if not isinstance(record, list) or not record:
            break
        records.append(record)
        offset = end
    return records, offset


# ---------------------------------------------------------------------------
# the durability manager
# ---------------------------------------------------------------------------


class DurabilityManager:
    """Owns one database directory: ``wal.log`` plus ``snapshot.json``.

    Created by :meth:`repro.sqlengine.engine.Database.attach_durability`;
    holds the redo buffer the storage/catalog/registry primitives append
    to, and the open WAL file handle commits are flushed to.
    """

    def __init__(
        self,
        db,
        path: Union[str, Path],
        sync: bool = True,
        auto_checkpoint_bytes: Optional[int] = DEFAULT_AUTO_CHECKPOINT_BYTES,
    ) -> None:
        self.db = db
        self.dir = Path(path)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self.auto_checkpoint_bytes = auto_checkpoint_bytes
        self.buffer = []  # encoded records awaiting commit (per-txn)
        self.generation = 0
        self.txn_counter = 0
        self.replaying = False
        self.closed = False
        # post-commit callbacks: fired (no args) after a transaction's
        # frames are durably on disk.  The replication source registers
        # here to wake long-polling standbys without polling.
        self.on_commit: list = []
        self._file = None  # append handle, opened after recovery
        # temporal-stratum integration (None for engine-only databases)
        self.stratum = None
        self.registries: dict[str, Any] = {}
        self.obs = db.obs

    # -- redo buffer ----------------------------------------------------

    # The buffer lives on the *active transaction*, not the manager:
    # each session accumulates its own uncommitted redo records, so one
    # session's commit never flushes another's in-flight writes.  With a
    # single session this is exactly the old manager-owned list.
    @property
    def buffer(self) -> list:
        return self.db.txn.redo

    @buffer.setter
    def buffer(self, records: list) -> None:
        self.db.txn.redo = records

    # -- paths ----------------------------------------------------------

    @property
    def wal_path(self) -> Path:
        return self.dir / WAL_FILE

    @property
    def snapshot_path(self) -> Path:
        return self.dir / SNAPSHOT_FILE

    # -- stratum binding ------------------------------------------------

    def bind_stratum(self, stratum) -> None:
        """Attach a temporal stratum: its registries get WAL dimensions
        so registrations are logged and replayable."""
        self.stratum = stratum
        self.registries = {"vt": stratum.registry, "tt": stratum.tt_registry}
        stratum.registry.wal_dim = "vt"
        stratum.tt_registry.wal_dim = "tt"

    # -- buffer management (driven by TransactionManager) ---------------

    def position(self) -> int:
        return len(self.buffer)

    def truncate_buffer(self, position: int) -> None:
        """Discard records buffered after ``position`` (rollback)."""
        del self.buffer[position:]

    def commit_buffered(self) -> None:
        """Flush the buffer as one committed transaction (group commit)."""
        if not self.buffer or self.closed:
            return
        self.txn_counter += 1
        records = (
            [["begin", self.txn_counter]]
            + self.buffer
            + [["commit", self.txn_counter, self.db.now.ordinal]]
        )
        self.buffer = []
        data = b"".join(frame(encode_record(r)) for r in records)
        fault_plan = self.db.txn.fault_plan

        # both steps run under bounded-backoff retry: transient OSErrors
        # (EINTR/ENOSPC-style, injectable via FaultPlan exc_factory) are
        # absorbed and counted under wal.retries; exhaustion or a
        # non-transient error raises a typed DurabilityError.  Injected
        # FaultInjected crashes pass through untouched.
        start = self._file.tell()

        def _write() -> None:
            if fault_plan is not None:
                fault_plan.hit("wal.write", "wal")
            if self._file.tell() != start:
                # a failed earlier attempt left partial bytes behind;
                # cut back so the retry cannot duplicate frames (the
                # handle is O_APPEND, so writes land at the new end)
                self._file.truncate(start)
            self._file.write(data)
            self._file.flush()

        def _sync() -> None:
            if fault_plan is not None:
                # fires between write and fsync — the "crash before the
                # log reached disk" point the crash-matrix tests kill at
                fault_plan.hit("wal.fsync", "wal")
            if self.sync:
                os.fsync(self._file.fileno())

        retry_durable("wal.write", self.wal_path, _write, obs=self.obs)
        retry_durable("wal.fsync", self.wal_path, _sync, obs=self.obs)
        self.obs.inc("wal.records_written", len(records))
        self.obs.inc("wal.bytes", len(data))
        self.obs.inc("wal.fsyncs", 1)
        self.obs.inc("wal.commits", 1)
        if (
            self.auto_checkpoint_bytes is not None
            and self._file.tell() >= self.auto_checkpoint_bytes
        ):
            self.checkpoint()
        for hook in self.on_commit:
            hook()

    def log_now(self, ordinal: int) -> None:
        """Record a CURRENT_DATE change; its own commit when idle."""
        if self.replaying or self.closed:
            return
        self.buffer.append(["now", ordinal])
        txn = self.db.txn
        if not txn.marks and not txn.explicit:
            self.commit_buffered()

    # -- record constructors (called from the mutation primitives) ------

    def record_insert(self, table: str, row: list) -> None:
        self.buffer.append(["ins", table, encode_row(row)])

    def record_update(self, table: str, position: int, pairs: list) -> None:
        self.buffer.append(
            ["upd", table, position, [[i, encode_value(v)] for i, v in pairs]]
        )

    def record_cell(self, table: str, position: int, index: int, value: Any) -> None:
        self.buffer.append(["cell", table, position, index, encode_value(value)])

    def record_write_row(self, table: str, position: int, values: list) -> None:
        self.buffer.append(["wrow", table, position, encode_row(values)])

    def record_delete(self, table: str, positions: list[int]) -> None:
        self.buffer.append(["delpos", table, positions])

    def record_set_rows(self, table: str, rows: list) -> None:
        self.buffer.append(["setrows", table, encode_rows_columnar(rows)])

    def record_add_column(self, table: str, column, default: Any) -> None:
        self.buffer.append(
            ["addcol", table, _encode_column(column), encode_value(default)]
        )

    def record_create_table(self, table) -> None:
        self.buffer.append(
            [
                "mktable",
                table.name,
                [_encode_column(c) for c in table.columns],
                encode_rows_columnar(table.rows),
            ]
        )

    def record_drop_table(self, name: str) -> None:
        self.buffer.append(["rmtable", name])

    def record_view(self, name: str, sql: str) -> None:
        self.buffer.append(["mkview", name, sql])

    def record_drop_view(self, name: str) -> None:
        self.buffer.append(["rmview", name])

    def record_routine(self, sql: str) -> None:
        self.buffer.append(["mkroutine", sql])

    def record_drop_routine(self, name: str) -> None:
        self.buffer.append(["rmroutine", name])

    def record_stratum_routine(self, sql: str) -> None:
        """A routine registered through the stratum, stored in original
        (pre-rewrite) form so recovery can rebuild the stratum's
        nonsequenced-only bookkeeping."""
        self.buffer.append(["troutine", sql])

    def record_registry(self, dim: str, info) -> None:
        self.buffer.append(
            ["reg", dim, info.name, info.begin_column, info.end_column]
        )

    def record_unregistry(self, dim: str, name: str) -> None:
        self.buffer.append(["unreg", dim, name])

    # -- file lifecycle -------------------------------------------------

    def open_for_append(self) -> None:
        """(Re)open the WAL for appending; write a header when empty."""
        if self._file is not None:
            self._file.close()
        fresh = not self.wal_path.exists() or self.wal_path.stat().st_size == 0
        self._file = open(self.wal_path, "ab")
        if fresh:
            self._file.write(frame(encode_record(["walhdr", self.generation])))
            self._file.flush()
            if self.sync:
                os.fsync(self._file.fileno())

    def reset_wal(self, generation: int) -> None:
        """Truncate the WAL and stamp a new generation header."""
        if self._file is not None:
            self._file.close()
        self.generation = generation
        self._file = open(self.wal_path, "wb")
        self._file.write(frame(encode_record(["walhdr", generation])))
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def truncate_wal_to(self, offset: int) -> None:
        """Cut the WAL back to ``offset`` (drop a corrupt/uncommitted tail)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        with open(self.wal_path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())

    def wal_size(self) -> int:
        if self._file is not None:
            return self._file.tell()
        return self.wal_path.stat().st_size if self.wal_path.exists() else 0

    # -- replication support --------------------------------------------

    def read_wal_range(self, offset: int, limit: int) -> bytes:
        """Committed WAL bytes starting at ``offset`` (at most ``limit``).

        Everything on disk is committed — ``commit_buffered`` writes whole
        transactions in one append — so any prefix of the file is a valid
        redo stream for a standby to apply.
        """
        end = self.wal_size()
        if offset >= end or limit <= 0:
            return b""
        with open(self.wal_path, "rb") as handle:
            handle.seek(offset)
            return handle.read(min(limit, end - offset))

    def append_replicated(self, data: bytes) -> None:
        """Standby-side raw append: shipped primary bytes land verbatim,
        keeping the local WAL a byte prefix of the primary's (resume
        offset is simply our file size)."""
        if self.closed:
            raise WalError("durability manager is closed")

        def _write() -> None:
            self._file.write(data)
            self._file.flush()

        def _sync() -> None:
            if self.sync:
                os.fsync(self._file.fileno())

        retry_durable("wal.replicate", self.wal_path, _write, obs=self.obs)
        retry_durable("wal.fsync", self.wal_path, _sync, obs=self.obs)
        self.obs.inc("wal.bytes", len(data))

    def reset_wal_raw(self, generation: int) -> None:
        """Truncate the WAL to empty **without** writing a header — the
        standby's first shipped batch carries the primary's own
        ``walhdr`` frame, which must land at offset 0 verbatim."""
        if self._file is not None:
            self._file.close()
        self.generation = generation
        self._file = open(self.wal_path, "wb")
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def checkpoint(self) -> int:
        """Snapshot everything and truncate the WAL; returns the new
        generation.  Not allowed mid-transaction."""
        from repro.sqlengine.checkpoint import write_checkpoint

        txn = self.db.txn
        if txn.explicit or txn.marks:
            raise WalError("cannot checkpoint inside an open transaction")
        self.commit_buffered()
        return write_checkpoint(self)

    def close(self, checkpoint: bool = True) -> None:
        """Flush (and by default checkpoint) before detaching."""
        if self.closed:
            return
        self.commit_buffered()
        if checkpoint:
            self.checkpoint()
        if self._file is not None:
            self._file.close()
            self._file = None
        self.closed = True

    # -- introspection --------------------------------------------------

    def state(self) -> dict[str, Any]:
        """JSON-able WAL state for trace summaries and EXPLAIN ANALYZE."""
        return {
            "dir": str(self.dir),
            "generation": self.generation,
            "sync": self.sync,
            "wal_bytes_on_disk": self.wal_size(),
            "buffered_records": len(self.buffer),
            "records_written": self.obs.value("wal.records_written"),
            "bytes_written": self.obs.value("wal.bytes"),
            "fsyncs": self.obs.value("wal.fsyncs"),
            "commits": self.obs.value("wal.commits"),
            "retries": self.obs.value("wal.retries"),
            "checkpoints": self.obs.value("checkpoint.writes"),
            "records_replayed": self.obs.value("recovery.records_replayed"),
        }


def _encode_column(column) -> list:
    type_ = column.type
    return [
        column.name,
        [type_.name, type_.length, type_.precision, type_.scale],
        column.not_null,
        column.primary_key,
    ]


def decode_column(data: list):
    from repro.sqlengine.storage import Column
    from repro.sqlengine.types import SqlType

    name, (type_name, length, precision, scale), not_null, primary_key = data
    return Column(
        name,
        SqlType(type_name, length=length, precision=precision, scale=scale),
        not_null=not_null,
        primary_key=primary_key,
    )
