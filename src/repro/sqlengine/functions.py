"""Built-in scalar and aggregate functions.

Includes ``FIRST_INSTANCE`` / ``LAST_INSTANCE`` — the earlier/later of two
time arguments — which the paper's Figure 4 uses to intersect validity
periods in transformed sequenced joins.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.sqlengine.errors import DivisionByZeroError, ExecutionError, TypeError_
from repro.sqlengine.values import Date, Null, compare, is_null, sort_key

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def is_aggregate(name: str) -> bool:
    return name.upper() in AGGREGATE_NAMES


# ---------------------------------------------------------------------------
# scalar builtins
# ---------------------------------------------------------------------------


def _null_in(args: Sequence[Any]) -> bool:
    return any(a is Null for a in args)


def _upper(args: Sequence[Any]) -> Any:
    return Null if _null_in(args) else str(args[0]).upper()


def _lower(args: Sequence[Any]) -> Any:
    return Null if _null_in(args) else str(args[0]).lower()


def _length(args: Sequence[Any]) -> Any:
    return Null if _null_in(args) else len(str(args[0]).rstrip())


def _trim(args: Sequence[Any]) -> Any:
    return Null if _null_in(args) else str(args[0]).strip()


def _substring(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    text = str(args[0])
    start = int(args[1]) - 1
    if start < 0:
        start = 0
    if len(args) >= 3:
        return text[start : start + int(args[2])]
    return text[start:]


def _abs(args: Sequence[Any]) -> Any:
    return Null if _null_in(args) else abs(args[0])


def _mod(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    if args[1] == 0:
        raise DivisionByZeroError("MOD by zero")
    return args[0] % args[1]


def _coalesce(args: Sequence[Any]) -> Any:
    for arg in args:
        if arg is not Null:
            return arg
    return Null


def _nullif(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return args[0]
    return Null if compare(args[0], args[1]) == 0 else args[0]


def _first_instance(args: Sequence[Any]) -> Any:
    """The *earlier* of two time arguments (paper, Fig. 4)."""
    if _null_in(args):
        return Null
    return args[0] if compare(args[0], args[1]) <= 0 else args[1]


def _last_instance(args: Sequence[Any]) -> Any:
    """The *later* of two time arguments (paper, Fig. 4)."""
    if _null_in(args):
        return Null
    return args[0] if compare(args[0], args[1]) >= 0 else args[1]


def _year(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    date = args[0]
    if not isinstance(date, Date):
        raise TypeError_("YEAR expects a DATE")
    import datetime

    return datetime.date.fromordinal(date.ordinal).year


def _days(args: Sequence[Any]) -> Any:
    """DAYS(date) — the day ordinal (DB2-style)."""
    if _null_in(args):
        return Null
    date = args[0]
    if not isinstance(date, Date):
        raise TypeError_("DAYS expects a DATE")
    return date.ordinal


def _date_fn(args: Sequence[Any]) -> Any:
    """DATE(n) / DATE('iso') — construct a date from an ordinal or text."""
    if _null_in(args):
        return Null
    value = args[0]
    if isinstance(value, Date):
        return value
    if isinstance(value, int):
        return Date(value)
    if isinstance(value, str):
        return Date.from_iso(value)
    raise TypeError_(f"cannot convert {value!r} to DATE")


def _month(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    import datetime

    if not isinstance(args[0], Date):
        raise TypeError_("MONTH expects a DATE")
    return datetime.date.fromordinal(args[0].ordinal).month


def _day(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    import datetime

    if not isinstance(args[0], Date):
        raise TypeError_("DAY expects a DATE")
    return datetime.date.fromordinal(args[0].ordinal).day


def _round(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    digits = int(args[1]) if len(args) > 1 else 0
    value = round(float(args[0]) + 0.0, digits)
    return int(value) if digits <= 0 else value


def _floor(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    import math

    return math.floor(args[0])


def _ceiling(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    import math

    return math.ceil(args[0])


def _sign(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    value = args[0]
    return (value > 0) - (value < 0)


def _power(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    return args[0] ** args[1]


def _sqrt(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    import math

    if args[0] < 0:
        raise ExecutionError("SQRT of a negative number")
    return math.sqrt(args[0])


def _position(args: Sequence[Any]) -> Any:
    """POSITION(needle, haystack) — 1-based, 0 when absent (SQL style)."""
    if _null_in(args):
        return Null
    return str(args[1]).find(str(args[0])) + 1


def _replace(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    return str(args[0]).replace(str(args[1]), str(args[2]))


def _left(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    return str(args[0])[: max(0, int(args[1]))]


def _right(args: Sequence[Any]) -> Any:
    if _null_in(args):
        return Null
    count = max(0, int(args[1]))
    return str(args[0])[-count:] if count else ""


SCALAR_BUILTINS: dict[str, Callable[[Sequence[Any]], Any]] = {
    "UPPER": _upper,
    "LOWER": _lower,
    "LENGTH": _length,
    "CHAR_LENGTH": _length,
    "TRIM": _trim,
    "SUBSTRING": _substring,
    "SUBSTR": _substring,
    "ABS": _abs,
    "MOD": _mod,
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "FIRST_INSTANCE": _first_instance,
    "LAST_INSTANCE": _last_instance,
    "LEAST": _first_instance,
    "GREATEST": _last_instance,
    "YEAR": _year,
    "MONTH": _month,
    "DAY": _day,
    "DAYS": _days,
    "DATE": _date_fn,
    "ROUND": _round,
    "FLOOR": _floor,
    "CEILING": _ceiling,
    "CEIL": _ceiling,
    "SIGN": _sign,
    "POWER": _power,
    "SQRT": _sqrt,
    "POSITION": _position,
    "REPLACE": _replace,
    "LEFT": _left,
    "RIGHT": _right,
}


def is_scalar_builtin(name: str) -> bool:
    return name.upper() in SCALAR_BUILTINS


def call_scalar_builtin(name: str, args: Sequence[Any]) -> Any:
    """Invoke a builtin; ill-typed arguments surface as engine errors."""
    try:
        return SCALAR_BUILTINS[name.upper()](args)
    except (TypeError, ValueError, IndexError) as exc:
        raise TypeError_(f"{name.upper()}: {exc}") from exc


# ---------------------------------------------------------------------------
# aggregates
# ---------------------------------------------------------------------------


def evaluate_aggregate(
    name: str,
    values: Sequence[Any],
    distinct: bool = False,
    star: bool = False,
) -> Any:
    """Fold ``values`` (one per input row) with the named aggregate.

    NULLs are ignored per SQL; COUNT(*) counts rows regardless.
    """
    upper = name.upper()
    if upper == "COUNT" and star:
        return len(values)
    non_null = [v for v in values if v is not Null]
    if distinct:
        seen: dict = {}
        for value in non_null:
            seen.setdefault(sort_key(value), value)
        non_null = list(seen.values())
    if upper == "COUNT":
        return len(non_null)
    if not non_null:
        return Null
    if upper == "SUM":
        return sum(non_null)
    if upper == "AVG":
        return sum(non_null) / len(non_null)
    if upper == "MIN":
        best = non_null[0]
        for value in non_null[1:]:
            if compare(value, best) < 0:
                best = value
        return best
    if upper == "MAX":
        best = non_null[0]
        for value in non_null[1:]:
            if compare(value, best) > 0:
                best = value
        return best
    raise ExecutionError(f"unknown aggregate {name}")
