"""Statement execution: queries, DML, DDL, and expression evaluation.

The executor is *conventional*: it refuses to run any statement carrying
a temporal modifier (those belong to the stratum).  PSM control flow
lives in :mod:`repro.sqlengine.routines`; this module provides the
relational core they both call into.
"""

from __future__ import annotations

import re
from typing import Any, Iterator, Optional, Sequence

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine import functions as fn
from repro.sqlengine.errors import (
    CardinalityError,
    CatalogError,
    DivisionByZeroError,
    ExecutionError,
    PlanInvalidated,
    SignalError,
    SqlError,
    TypeError_,
)
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import SqlType, coerce, infer_type
from repro.sqlengine.values import (
    Date,
    Null,
    Row,
    Unknown,
    compare,
    logic_and,
    logic_not,
    logic_or,
    sort_key,
    truth,
)

# interval-probe bound extraction: sentinel for "no conjunct bounds this
# column" (None is taken: it means a NULL bound) and the comparison flip
# used when the column sits on the right-hand side
_NO_BOUND = object()
_FLIPPED_COMPARISON = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class ResultSet:
    """Columns plus a list of row value-lists."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[str], rows: list[list[Any]]) -> None:
        self.columns = list(columns)
        self.rows = rows

    def as_rows(self) -> list[Row]:
        return [Row(self.columns, row) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a 1x1 result (Null when empty)."""
        if not self.rows:
            return Null
        if len(self.rows) > 1:
            raise CardinalityError("query returned more than one row")
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"


class Binding:
    """One FROM-clause binding: a column→index map plus the current row."""

    __slots__ = ("columns", "row")

    def __init__(self, columns: dict[str, int], row: Sequence[Any]) -> None:
        self.columns = columns
        self.row = row


class Env:
    """Lexical environment for name resolution during evaluation.

    Resolution order for an unqualified name: the bindings of this env,
    then enclosing envs (correlated subqueries), then the routine frame's
    variables.  Qualified names resolve against binding aliases first and
    record variables (FOR-loop rows) second.
    """

    __slots__ = ("bindings", "parent", "frame")

    def __init__(self, parent: Optional["Env"] = None, frame: Any = None) -> None:
        self.bindings: dict[str, Binding] = {}
        self.parent = parent
        self.frame = frame if frame is not None else (parent.frame if parent else None)

    def child(self) -> "Env":
        return Env(parent=self)

    def lookup(self, qualifier: Optional[str], name: str) -> Any:
        return self.lookup_keyed(
            qualifier.lower() if qualifier is not None else None,
            name.lower(),
            qualifier,
            name,
        )

    def lookup_keyed(
        self,
        qual: Optional[str],
        key: str,
        qualifier: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Any:
        """Resolution with pre-lowered qualifier/name.

        Compiled expressions lower names once at bind time and call this
        directly; ``qualifier``/``name`` keep the original spellings for
        error messages.
        """
        if qualifier is None and name is None:
            qualifier, name = qual, key
        if qual is not None:
            env: Optional[Env] = self
            while env is not None:
                binding = env.bindings.get(qual)
                if binding is not None:
                    index = binding.columns.get(key)
                    if index is None:
                        raise CatalogError(
                            f"no column {name!r} in {qualifier!r}"
                        )
                    return binding.row[index]
                env = env.parent
            if self.frame is not None:
                found, value = self.frame.lookup_record_field(qual, key)
                if found:
                    return value
            raise CatalogError(f"unknown table alias {qualifier!r}")
        env = self
        while env is not None:
            hits = []
            for binding in env.bindings.values():
                index = binding.columns.get(key)
                if index is not None:
                    hits.append(binding.row[index])
            if len(hits) == 1:
                return hits[0]
            if len(hits) > 1:
                raise ExecutionError(f"ambiguous column name {name!r}")
            env = env.parent
        if self.frame is not None:
            found, value = self.frame.lookup_variable(key)
            if found:
                return value
        raise CatalogError(f"unknown column or variable {name!r}")


class Executor:
    """Executes conventional SQL statements against a Database."""

    def __init__(self, database: "Database") -> None:  # noqa: F821
        self.db = database

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(self, stmt: ast.Statement, env: Optional[Env] = None) -> Any:
        if getattr(stmt, "modifier", None) is not None:
            raise ExecutionError(
                "temporal statement modifiers require the temporal stratum"
            )
        resilience = self.db.resilience
        if resilience.armed:
            # watchdog/governor checkpoint: every engine statement
            resilience.check()
        self.db.stats.statements += 1
        if isinstance(stmt, ast.Select):
            return self.execute_select(stmt, env)
        if isinstance(stmt, ast.Insert):
            return self.execute_insert(stmt, env)
        if isinstance(stmt, ast.Update):
            return self.execute_update(stmt, env)
        if isinstance(stmt, ast.Delete):
            return self.execute_delete(stmt, env)
        if isinstance(stmt, ast.CreateTable):
            return self.execute_create_table(stmt, env)
        if isinstance(stmt, ast.DropTable):
            self.db.catalog.drop_table(stmt.name)
            return None
        if isinstance(stmt, ast.CreateView):
            self.db.catalog.add_view(stmt.name, stmt.select)
            return None
        if isinstance(stmt, ast.DropView):
            self.db.catalog.drop_view(stmt.name)
            return None
        if isinstance(stmt, (ast.CreateFunction, ast.CreateProcedure)):
            from repro.sqlengine.catalog import Routine

            kind = "FUNCTION" if isinstance(stmt, ast.CreateFunction) else "PROCEDURE"
            self.db.catalog.add_routine(Routine(kind=kind, definition=stmt))
            return None
        if isinstance(stmt, ast.DropRoutine):
            self.db.catalog.drop_routine(stmt.name)
            return None
        if isinstance(stmt, ast.CallStatement):
            from repro.sqlengine.routines import RoutineInterpreter

            return RoutineInterpreter(self).call_procedure(stmt, env)
        if isinstance(stmt, ast.AlterTable):
            raise ExecutionError(
                "ALTER TABLE ... ADD VALIDTIME requires the temporal stratum"
            )
        if isinstance(stmt, ast.TransactionStatement):
            return self.db.txn.execute_statement(stmt)
        if isinstance(stmt, ast.SignalStatement):
            raise SignalError(stmt.sqlstate, stmt.message)
        if isinstance(stmt, ast.PsmStatement):
            raise ExecutionError(
                f"{type(stmt).__name__} is only valid inside a routine body"
            )
        raise ExecutionError(f"cannot execute {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def execute_select(self, select: ast.Select, env: Optional[Env] = None) -> ResultSet:
        if select.set_op:
            result = self._run_arm(select, env, None)
            result = self._apply_set_ops(select, result, env)
            if select.order_by:
                result = self._apply_order_on_output(select, result, env)
        else:
            result = self._run_arm(select, env, select.order_by)
        if select.limit is not None:
            result.rows = result.rows[: select.limit]
        return result

    def _run_arm(
        self,
        select: ast.Select,
        env: Optional[Env],
        order_by: Optional[list[ast.OrderItem]],
    ) -> ResultSet:
        """Run one SELECT arm through its cached plan, or interpreted.

        The bind/plan phase happens at most once per (statement, schema
        version); unsupported statements are remembered as uncacheable so
        the planner is not retried per execution.
        """
        db = self.db
        if not db.plan_caching_enabled:
            return self._select_no_order(select, env, order_by=order_by)
        hit, plan = db.plan_cache.fetch(select, db.catalog.schema_version)
        if not hit:
            from repro.sqlengine.planner import build_select_plan

            plan = build_select_plan(self, select, env)
            db.stats.plans_compiled += 1
            db.plan_cache.store(select, db.catalog.schema_version, plan)
        else:
            db.stats.plan_cache_hits += 1
        if plan is None:
            return self._select_no_order(select, env, order_by=order_by)
        try:
            return plan.run(self, env, bool(order_by))
        except PlanInvalidated:
            db.plan_cache.drop(select)
            return self._select_no_order(select, env, order_by=order_by)

    def _apply_set_ops(
        self, select: ast.Select, left: ResultSet, env: Optional[Env]
    ) -> ResultSet:
        node = select
        result = left
        while node.set_op:
            rhs_node = node.set_rhs
            right = self._run_arm(rhs_node, env, None)
            if len(right.columns) != len(result.columns):
                raise ExecutionError("set operands differ in column count")
            op = node.set_op
            if op == "UNION ALL":
                result = ResultSet(result.columns, result.rows + right.rows)
            elif op == "UNION":
                result = ResultSet(
                    result.columns, _distinct_rows(result.rows + right.rows)
                )
            elif op in ("EXCEPT", "EXCEPT ALL"):
                right_keys = {tuple(sort_key(v) for v in row) for row in right.rows}
                kept = [
                    row
                    for row in result.rows
                    if tuple(sort_key(v) for v in row) not in right_keys
                ]
                result = ResultSet(result.columns, _distinct_rows(kept))
            elif op in ("INTERSECT", "INTERSECT ALL"):
                right_keys = {tuple(sort_key(v) for v in row) for row in right.rows}
                kept = [
                    row
                    for row in result.rows
                    if tuple(sort_key(v) for v in row) in right_keys
                ]
                result = ResultSet(result.columns, _distinct_rows(kept))
            else:  # pragma: no cover - parser restricts ops
                raise ExecutionError(f"unknown set operation {op}")
            node = rhs_node
        return result

    def _select_no_order(
        self,
        select: ast.Select,
        env: Optional[Env],
        order_by: Optional[list[ast.OrderItem]] = None,
    ) -> ResultSet:
        base_env = env if env is not None else Env()
        grouped = bool(select.group_by) or any(
            item.expr is not None and _contains_aggregate(item.expr)
            for item in select.items
        ) or (select.having is not None)
        if grouped:
            return self._grouped_select(select, base_env, order_by)
        columns = self._output_columns(select, base_env)
        colmap = {name.lower(): i for i, name in enumerate(columns)}
        rows: list[list[Any]] = []
        keys: list[tuple] = []
        for row_env in self._from_rows(select.from_items, base_env, select.where):
            if select.where is not None and not truth(
                self.evaluate(select.where, row_env)
            ):
                continue
            row = self._project(select.items, row_env)
            rows.append(row)
            if order_by:
                keys.append(self._order_key(order_by, row, colmap, row_env))
        if order_by:
            paired = sorted(zip(keys, range(len(rows)), rows), key=lambda p: p[:2])
            rows = [row for _, _, row in paired]
        if select.distinct:
            rows = _distinct_rows(rows)
        return ResultSet(columns, rows)

    def _order_key(
        self,
        order_by: list[ast.OrderItem],
        row: list[Any],
        colmap: dict[str, int],
        row_env: Env,
    ) -> tuple:
        parts = []
        for item in order_by:
            value = None
            resolved = False
            expr = item.expr
            if isinstance(expr, ast.Name) and expr.qualifier is None:
                index = colmap.get(expr.name.lower())
                if index is not None:
                    value = row[index]
                    resolved = True
            if not resolved and isinstance(expr, ast.Literal) and isinstance(
                expr.value, int
            ):
                position = expr.value - 1
                if 0 <= position < len(row):
                    value = row[position]
                    resolved = True
            if not resolved:
                value = self.evaluate(expr, row_env)
            key = sort_key(value)
            parts.append(_Reversed(key) if item.descending else key)
        return tuple(parts)

    def _grouped_select(
        self,
        select: ast.Select,
        base_env: Env,
        order_by: Optional[list[ast.OrderItem]] = None,
    ) -> ResultSet:
        source_envs: list[Env] = []
        for row_env in self._from_rows(select.from_items, base_env, select.where):
            if select.where is not None and not truth(
                self.evaluate(select.where, row_env)
            ):
                continue
            source_envs.append(_freeze_env(row_env))
        groups: dict[tuple, list[Env]] = {}
        if select.group_by:
            for row_env in source_envs:
                key = tuple(
                    sort_key(self.evaluate(g, row_env)) for g in select.group_by
                )
                groups.setdefault(key, []).append(row_env)
        else:
            groups[()] = source_envs
        columns = self._output_columns(select, base_env)
        colmap = {name.lower(): i for i, name in enumerate(columns)}
        rows: list[list[Any]] = []
        keys: list[tuple] = []
        for group in groups.values():
            if select.having is not None and not truth(
                self._evaluate_grouped(select.having, group, base_env)
            ):
                continue
            row = [
                self._evaluate_grouped(item.expr, group, base_env)
                for item in select.items
            ]
            rows.append(row)
            if order_by:
                keys.append(
                    self._grouped_order_key(order_by, row, colmap, group, base_env)
                )
        if order_by:
            paired = sorted(zip(keys, range(len(rows)), rows), key=lambda p: p[:2])
            rows = [row for _, _, row in paired]
        if select.distinct:
            rows = _distinct_rows(rows)
        return ResultSet(columns, rows)

    def _grouped_order_key(
        self,
        order_by: list[ast.OrderItem],
        row: list[Any],
        colmap: dict[str, int],
        group: list[Env],
        base_env: Env,
    ) -> tuple:
        parts = []
        for item in order_by:
            expr = item.expr
            value = None
            resolved = False
            if isinstance(expr, ast.Name) and expr.qualifier is None:
                index = colmap.get(expr.name.lower())
                if index is not None:
                    value = row[index]
                    resolved = True
            if not resolved and isinstance(expr, ast.Literal) and isinstance(
                expr.value, int
            ):
                position = expr.value - 1
                if 0 <= position < len(row):
                    value = row[position]
                    resolved = True
            if not resolved:
                value = self._evaluate_grouped(expr, group, base_env)
            key = sort_key(value)
            parts.append(_Reversed(key) if item.descending else key)
        return tuple(parts)

    def _evaluate_grouped(
        self, expr: ast.Expression, group: list[Env], base_env: Env
    ) -> Any:
        """Evaluate an expression that may contain aggregate calls."""
        if isinstance(expr, ast.FunctionCall) and fn.is_aggregate(expr.name) and not self.db.catalog.has_routine(expr.name):
            if expr.star:
                return fn.evaluate_aggregate(expr.name, [None] * len(group), star=True)
            values = [self.evaluate(expr.args[0], row_env) for row_env in group]
            return fn.evaluate_aggregate(expr.name, values, distinct=expr.distinct)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("AND", "OR"):
                left = self._evaluate_grouped(expr.left, group, base_env)
                right = self._evaluate_grouped(expr.right, group, base_env)
                return logic_and(left, right) if expr.op == "AND" else logic_or(left, right)
            left = self._evaluate_grouped(expr.left, group, base_env)
            right = self._evaluate_grouped(expr.right, group, base_env)
            return _apply_binary(expr.op, left, right)
        if isinstance(expr, ast.Parenthesized):
            return self._evaluate_grouped(expr.expr, group, base_env)
        if isinstance(expr, ast.UnaryOp):
            value = self._evaluate_grouped(expr.operand, group, base_env)
            return logic_not(value) if expr.op == "NOT" else _negate(value)
        if isinstance(expr, ast.Cast):
            return coerce(self._evaluate_grouped(expr.expr, group, base_env), expr.target)
        # non-aggregate parts evaluate on a representative group row
        representative = group[0] if group else base_env
        return self.evaluate(expr, representative)

    def _output_columns(self, select: ast.Select, env: Env) -> list[str]:
        columns: list[str] = []
        for item in select.items:
            if item.is_star:
                columns.extend(self._star_columns(select.from_items, item, env))
            elif item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ast.Name):
                columns.append(item.expr.name)
            else:
                columns.append(f"c{len(columns) + 1}")
        return columns

    def _star_columns(
        self, from_items: list[ast.FromItem], item: ast.SelectItem, env: Env
    ) -> list[str]:
        names: list[str] = []
        for source in _flatten_from(from_items):
            alias, columns = self._source_shape(source, env)
            if item.star_qualifier and alias.lower() != item.star_qualifier.lower():
                continue
            names.extend(columns)
        if not names:
            raise CatalogError("SELECT * with no resolvable source")
        return names

    def _source_shape(self, source: ast.FromItem, env: Env) -> tuple[str, list[str]]:
        """(alias, column names) for a FROM source, without scanning rows."""
        if isinstance(source, ast.TableRef):
            view = self.db.catalog.get_view(source.name)
            if view is not None:
                return source.binding, self._output_columns(view, env)
            table = self._resolve_table(source.name, env)
            return source.binding, table.column_names
        if isinstance(source, ast.SubqueryRef):
            return source.alias, self._output_columns(source.select, env)
        if isinstance(source, ast.TableFunctionRef):
            routine = self.db.catalog.get_routine(source.call.name)
            returns = routine.returns
            if not isinstance(returns, ast.RowArrayType):
                raise ExecutionError(
                    f"{source.call.name} is not a table function"
                )
            return source.alias, list(returns.column_names)
        raise ExecutionError(f"unsupported FROM source {type(source).__name__}")

    def _resolve_table(self, name: str, env: Optional[Env]) -> Table:
        """Resolve a table name: routine-frame table variables shadow catalog."""
        frame = env.frame if env is not None else None
        while frame is not None:
            table = frame.lookup_table_var(name)
            if table is not None:
                return table
            frame = getattr(frame, "parent", None)
        return self.db.catalog.get_table(name)

    def _read_table(self, name: str, env: Optional[Env]) -> Table:
        """Resolve a table for *reading*: the version visible to the
        current transaction's snapshot.  DML resolution stays on
        :meth:`_resolve_table` — writes always target the live table and
        surface conflicts through the MVCC claim in the primitives."""
        table = self._resolve_table(name, env)
        mvcc = self.db.mvcc
        if mvcc.multi:
            return mvcc.read_view(table, self.db.txn)
        return table

    # -- FROM evaluation ----------------------------------------------------

    def _from_rows(
        self,
        from_items: list[ast.FromItem],
        base_env: Env,
        where: Optional[ast.Expression] = None,
    ) -> Iterator[Env]:
        if not from_items:
            yield base_env.child()
            return
        env = base_env.child()
        conjuncts = _split_conjuncts(where)
        yield from self._expand_from(from_items, 0, env, conjuncts)

    def _expand_from(
        self,
        from_items: list[ast.FromItem],
        index: int,
        env: Env,
        conjuncts: list[ast.Expression],
    ) -> Iterator[Env]:
        if index >= len(from_items):
            yield env
            return
        for env2 in self._bind_source(from_items[index], env, conjuncts, from_items):
            yield from self._expand_from(from_items, index + 1, env2, conjuncts)

    def _bind_source(
        self,
        source: ast.FromItem,
        env: Env,
        conjuncts: list[ast.Expression] = (),
        from_items: Optional[list[ast.FromItem]] = None,
    ) -> Iterator[Env]:
        if isinstance(source, ast.Join):
            yield from self._bind_join(source, env)
            return
        if (
            isinstance(source, ast.TableRef)
            and conjuncts
            and not self.db.catalog.has_view(source.name)
        ):
            yield from self._bind_table_indexed(source, env, conjuncts, from_items)
            return
        alias, columns, rows = self._materialize_source(source, env)
        colmap = {name.lower(): i for i, name in enumerate(columns)}
        key = alias.lower()
        for row in rows:
            env.bindings[key] = Binding(colmap, row)
            yield env
        env.bindings.pop(key, None)

    def _bind_table_indexed(
        self,
        source: ast.TableRef,
        env: Env,
        conjuncts: list[ast.Expression],
        from_items: Optional[list[ast.FromItem]],
    ) -> Iterator[Env]:
        """Bind a base table, narrowing the scan with an equality conjunct.

        A conjunct ``alias.col = rhs`` (or reversed) where ``rhs`` is a
        literal or an expression over *already-bound* sources lets us use
        the table's hash index instead of a full scan.  This only prunes
        candidates — the full WHERE clause is still evaluated later — so
        it can never change results, only skip rows that cannot match.
        """
        table = self._read_table(source.name, env)
        resilience = self.db.resilience
        if resilience.armed:
            # watchdog/governor checkpoint: every interpreted table bind
            resilience.check()
        alias = source.binding
        colmap = {name.lower(): i for i, name in enumerate(table.column_names)}
        rows = table.rows
        probe = self._find_index_probe(table, alias, conjuncts, env, from_items)
        if probe is not None:
            column_index, value = probe
            if value is Null:
                rows = []
            else:
                rows = table.hash_index(column_index).get(sort_key(value), [])
        else:
            # no equality probe: try an interval probe over a declared
            # (begin, end) period pair (the shape the temporal
            # transforms emit — overlap/stab conjuncts)
            interval = self._find_interval_probe(table, alias, conjuncts, env, from_items)
            if interval is not None:
                rows = self._interval_candidates(table, interval)
        key = alias.lower()
        self.db.obs.inc("engine.rows_scanned", len(rows))
        for row in rows:
            env.bindings[key] = Binding(colmap, row)
            yield env
        env.bindings.pop(key, None)

    def _find_index_probe(
        self,
        table: Table,
        alias: str,
        conjuncts: list[ast.Expression],
        env: Env,
        from_items: Optional[list[ast.FromItem]],
    ) -> Optional[tuple[int, Any]]:
        for conjunct in conjuncts:
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            for lhs, rhs in ((conjunct.left, conjunct.right),
                             (conjunct.right, conjunct.left)):
                column = self._column_of(lhs, table, alias, from_items)
                if column is None:
                    continue
                if not self._rhs_is_bindable(rhs, env, from_items):
                    continue
                try:
                    value = self.evaluate(rhs, env)
                except SqlError:
                    continue
                return column, value
        return None

    def _find_interval_probe(
        self,
        table: Table,
        alias: str,
        conjuncts: list[ast.Expression],
        env: Env,
        from_items: Optional[list[ast.FromItem]],
    ) -> Optional[tuple[int, int, Optional[int], Optional[int]]]:
        """An interval-index probe over a declared (begin, end) pair.

        Recognizes the predicate shapes the temporal transforms emit: an
        upper bound on the begin column (``begin <= P`` / ``begin < P``)
        together with a lower bound on the end column (``P < end`` /
        ``P <= end``), each evaluable from already-bound sources.  Both
        ``stab(P)`` and ``overlaps(B, E)`` conjunctions normalize to
        this form over day ordinals.  Returns ``(begin_index, end_index,
        begin_max, end_min)``; a NULL bound is reported as ``(..., None,
        None)`` meaning the candidate set is empty (comparison with NULL
        is never true).  Pruning only — the full WHERE still runs.
        """
        if not self.db.interval_indexing_enabled:
            return None
        for begin_column, end_column in table.interval_pairs:
            begin_max = self._interval_bound(
                table, alias, begin_column, conjuncts, env, from_items, upper=True
            )
            if begin_max is _NO_BOUND:
                continue
            end_min = self._interval_bound(
                table, alias, end_column, conjuncts, env, from_items, upper=False
            )
            if end_min is _NO_BOUND:
                continue
            begin_index = table.column_index(begin_column)
            end_index = table.column_index(end_column)
            if begin_max is None or end_min is None:
                return begin_index, end_index, None, None
            return begin_index, end_index, begin_max, end_min
        return None

    def _interval_bound(
        self,
        table: Table,
        alias: str,
        column: str,
        conjuncts: list[ast.Expression],
        env: Env,
        from_items: Optional[list[ast.FromItem]],
        upper: bool,
    ) -> Any:
        """The tightest bound the conjuncts place on ``column``.

        ``upper=True`` looks for ``column </<= X`` and returns the
        largest admissible day ordinal; ``upper=False`` looks for
        ``column >/>= Y`` and returns the smallest.  Returns ``_NO_BOUND``
        when no conjunct bounds the column, ``None`` when a bound
        evaluates to NULL (no row can satisfy it).
        """
        target = table.column_index(column)
        best: Any = _NO_BOUND
        for conjunct in conjuncts:
            if not isinstance(conjunct, ast.BinaryOp):
                continue
            op = conjunct.op
            if op not in ("<", "<=", ">", ">="):
                continue
            for lhs, rhs, normalized in (
                (conjunct.left, conjunct.right, op),
                (conjunct.right, conjunct.left, _FLIPPED_COMPARISON[op]),
            ):
                if upper and normalized not in ("<", "<="):
                    continue
                if not upper and normalized not in (">", ">="):
                    continue
                if self._column_of(lhs, table, alias, from_items) != target:
                    continue
                if not self._rhs_is_bindable(rhs, env, from_items):
                    continue
                try:
                    value = self.evaluate(rhs, env)
                except SqlError:
                    continue
                if value is Null:
                    return None
                if not isinstance(value, Date):
                    continue
                if upper:
                    bound = value.ordinal if normalized == "<=" else value.ordinal - 1
                    best = bound if best is _NO_BOUND else min(best, bound)
                else:
                    bound = value.ordinal if normalized == ">=" else value.ordinal + 1
                    best = bound if best is _NO_BOUND else max(best, bound)
        return best

    def _interval_candidates(
        self, table: Table, probe: tuple[int, int, Optional[int], Optional[int]]
    ) -> list[list[Any]]:
        """Candidate rows for an interval probe, in table position order."""
        begin_index, end_index, begin_max, end_min = probe
        if begin_max is None:
            rows: list[list[Any]] = []
        else:
            rows = table.interval_index(begin_index, end_index).search(begin_max, end_min)
        obs = self.db.obs
        obs.inc("engine.interval_index_hits")
        pruned = len(table.rows) - len(rows)
        if pruned:
            obs.inc("engine.interval_rows_pruned", pruned)
        return rows

    def _interval_candidate_positions(
        self, table: Table, probe: tuple[int, int, Optional[int], Optional[int]]
    ) -> list[int]:
        """Candidate *positions* for an interval probe (ascending) — the
        selection-vector twin of :meth:`_interval_candidates`, with the
        same metrics."""
        begin_index, end_index, begin_max, end_min = probe
        if begin_max is None:
            positions: list[int] = []
        else:
            positions = table.interval_index(begin_index, end_index).search_positions(
                begin_max, end_min
            )
        obs = self.db.obs
        obs.inc("engine.interval_index_hits")
        pruned = len(table.rows) - len(positions)
        if pruned:
            obs.inc("engine.interval_rows_pruned", pruned)
        return positions

    def _column_of(
        self,
        expr: ast.Expression,
        table: Table,
        alias: str,
        from_items: Optional[list[ast.FromItem]],
    ) -> Optional[int]:
        """The column index if ``expr`` names a column of this binding."""
        if not isinstance(expr, ast.Name) or not table.has_column(expr.name):
            return None
        if expr.qualifier is not None:
            if expr.qualifier.lower() != alias.lower():
                return None
            return table.column_index(expr.name)
        # bare name: only safe if no *other* source could supply it
        if from_items is None:
            return None
        for item in _flatten_from(from_items):
            if isinstance(item, ast.TableRef) and item.binding.lower() != alias.lower():
                if self.db.catalog.has_view(item.name):
                    return None
                try:
                    other = self._resolve_table(item.name, None)
                except SqlError:
                    return None
                if other.has_column(expr.name):
                    return None
            elif not isinstance(item, ast.TableRef):
                return None
        return table.column_index(expr.name)

    def _rhs_is_bindable(
        self,
        expr: ast.Expression,
        env: Env,
        from_items: Optional[list[ast.FromItem]],
    ) -> bool:
        """Can ``expr`` be evaluated now without touching unbound sources?

        Literals always; qualified names only if the qualifier is bound;
        bare names only if no source of this FROM could supply them (so
        they must be routine variables / parameters).
        """
        if isinstance(expr, ast.Literal):
            return True
        if not isinstance(expr, ast.Name):
            return False
        if expr.qualifier is not None:
            qualifier = expr.qualifier.lower()
            probe: Optional[Env] = env
            while probe is not None:
                if qualifier in probe.bindings:
                    return True
                probe = probe.parent
            return False
        if from_items is None:
            return False
        for item in _flatten_from(from_items):
            if not isinstance(item, ast.TableRef):
                return False
            if self.db.catalog.has_view(item.name):
                return False
            try:
                candidate = self._resolve_table(item.name, None)
            except SqlError:
                return False
            if candidate.has_column(expr.name):
                return False
        return True

    def _bind_join(self, join: ast.Join, env: Env) -> Iterator[Env]:
        if join.kind in ("INNER", "CROSS"):
            for env2 in self._bind_source(join.left, env):
                for env3 in self._bind_source(join.right, env2):
                    if join.condition is None or truth(
                        self.evaluate(join.condition, env3)
                    ):
                        yield env3
            return
        if join.kind == "RIGHT":
            # a RIGHT join is a LEFT join with the operands swapped
            swapped = ast.Join(
                left=join.right, right=join.left, kind="LEFT",
                condition=join.condition,
            )
            yield from self._bind_join(swapped, env)
            return
        if join.kind == "LEFT":
            alias, columns, rows = self._materialize_source_static(join.right, env)
            colmap = {name.lower(): i for i, name in enumerate(columns)}
            key = alias.lower()
            null_row = [Null] * len(columns)
            for env2 in self._bind_source(join.left, env):
                matched = False
                for row in rows:
                    env2.bindings[key] = Binding(colmap, row)
                    if join.condition is None or truth(
                        self.evaluate(join.condition, env2)
                    ):
                        matched = True
                        yield env2
                if not matched:
                    env2.bindings[key] = Binding(colmap, null_row)
                    yield env2
                env2.bindings.pop(key, None)
            return
        raise ExecutionError(f"unsupported join kind {join.kind}")

    def _materialize_source(
        self, source: ast.FromItem, env: Env
    ) -> tuple[str, list[str], list[list[Any]]]:
        """Alias, columns and rows for a FROM source (lateral-aware)."""
        if isinstance(source, ast.TableRef):
            view = self.db.catalog.get_view(source.name)
            if view is not None:
                result = self.execute_select(view, Env(frame=env.frame))
                return source.binding, result.columns, result.rows
            table = self._read_table(source.name, env)
            resilience = self.db.resilience
            if resilience.armed:
                resilience.check()
            self.db.obs.inc("engine.rows_scanned", len(table.rows))
            return source.binding, table.column_names, table.rows
        if isinstance(source, ast.SubqueryRef):
            result = self.execute_select(source.select, env)
            return source.alias, result.columns, result.rows
        if isinstance(source, ast.TableFunctionRef):
            from repro.sqlengine.routines import RoutineInterpreter

            args = [self.evaluate(a, env) for a in source.call.args]
            if not self.db.memoize_table_functions:
                return (source.alias,) + RoutineInterpreter(self).invoke_table_function(
                    source.call.name, args
                )
            cache_key = (source.call.name.lower(), tuple(sort_key(a) for a in args))
            cached = self.db.table_function_cache.get(cache_key)
            if cached is not None:
                return source.alias, cached[0], cached[1]
            columns, rows = RoutineInterpreter(self).invoke_table_function(
                source.call.name, args
            )
            self.db.table_function_cache[cache_key] = (columns, rows)
            return source.alias, columns, rows
        raise ExecutionError(f"unsupported FROM source {type(source).__name__}")

    def _materialize_source_static(
        self, source: ast.FromItem, env: Env
    ) -> tuple[str, list[str], list[list[Any]]]:
        """Like _materialize_source but copies rows (safe to re-iterate)."""
        alias, columns, rows = self._materialize_source(source, env)
        return alias, columns, list(rows)

    def _project(self, items: list[ast.SelectItem], env: Env) -> list[Any]:
        values: list[Any] = []
        for item in items:
            if item.is_star:
                for binding_alias, binding in env.bindings.items():
                    if (
                        item.star_qualifier
                        and binding_alias != item.star_qualifier.lower()
                    ):
                        continue
                    values.extend(binding.row)
            else:
                values.append(self.evaluate(item.expr, env))
        return values

    def _apply_order_on_output(
        self, select: ast.Select, result: ResultSet, env: Optional[Env]
    ) -> ResultSet:
        """ORDER BY over a set-operation result: output columns only."""
        colmap = {name.lower(): i for i, name in enumerate(result.columns)}

        def order_key(row: list[Any]) -> tuple:
            parts = []
            for item in select.order_by:
                expr = item.expr
                if isinstance(expr, ast.Name) and expr.qualifier is None:
                    index = colmap.get(expr.name.lower())
                    if index is None:
                        raise ExecutionError(
                            f"ORDER BY column {expr.name!r} not in output"
                        )
                    value = row[index]
                elif isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    value = row[expr.value - 1]
                else:
                    bound = Env(parent=env)
                    bound.bindings["__row__"] = Binding(colmap, row)
                    value = self.evaluate(expr, bound)
                key = sort_key(value)
                parts.append(_Reversed(key) if item.descending else key)
            return tuple(parts)

        result.rows.sort(key=order_key)
        return result

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _run_dml(self, stmt: ast.Statement, env: Optional[Env], interpreted) -> int:
        """Run a DML statement through its cached plan, or interpreted."""
        db = self.db
        if not db.plan_caching_enabled:
            return interpreted(stmt, env)
        hit, plan = db.plan_cache.fetch(stmt, db.catalog.schema_version)
        if not hit:
            from repro.sqlengine.planner import build_dml_plan

            plan = build_dml_plan(self, stmt, env)
            db.stats.plans_compiled += 1
            db.plan_cache.store(stmt, db.catalog.schema_version, plan)
        else:
            db.stats.plan_cache_hits += 1
        if plan is None:
            return interpreted(stmt, env)
        try:
            return plan.run(self, env)
        except PlanInvalidated:
            db.plan_cache.drop(stmt)
            return interpreted(stmt, env)

    def execute_insert(self, stmt: ast.Insert, env: Optional[Env]) -> int:
        return self._run_dml(stmt, env, self._insert_interpreted)

    def _insert_interpreted(self, stmt: ast.Insert, env: Optional[Env]) -> int:
        table = self._resolve_table(stmt.table, env)
        if stmt.select is not None:
            result = self.execute_select(stmt.select, env)
            source_rows = result.rows
        else:
            eval_env = env if env is not None else Env()
            source_rows = [
                [self.evaluate(e, eval_env) for e in value_row]
                for value_row in stmt.values or []
            ]
        # validate every row before appending any: a NOT NULL or
        # coercion failure on row N must not keep rows 1..N-1
        prepared = [table.prepare_row(values, stmt.columns) for values in source_rows]
        for row in prepared:
            table.append_row(row)
        self.db.stats.count_rows(len(prepared), "insert")
        return len(prepared)

    def execute_update(self, stmt: ast.Update, env: Optional[Env]) -> int:
        return self._run_dml(stmt, env, self._update_interpreted)

    def _update_interpreted(self, stmt: ast.Update, env: Optional[Env]) -> int:
        table = self._resolve_table(stmt.table, env)
        alias = stmt.alias or stmt.table
        colmap = {name.lower(): i for i, name in enumerate(table.column_names)}
        eval_env = Env(parent=env)
        key = alias.lower()
        assign_indexes = [table.column_index(c) for c, _ in stmt.assignments]

        def predicate(row: list[Any]) -> bool:
            eval_env.bindings[key] = Binding(colmap, row)
            return stmt.where is None or truth(self.evaluate(stmt.where, eval_env))

        def updater(row: list[Any]) -> dict[int, Any]:
            eval_env.bindings[key] = Binding(colmap, row)
            return {
                index: self.evaluate(expr, eval_env)
                for index, (_, expr) in zip(assign_indexes, stmt.assignments)
            }

        count = table.update_where(predicate, updater)
        self.db.stats.count_rows(count, "update")
        return count

    def execute_delete(self, stmt: ast.Delete, env: Optional[Env]) -> int:
        return self._run_dml(stmt, env, self._delete_interpreted)

    def _delete_interpreted(self, stmt: ast.Delete, env: Optional[Env]) -> int:
        table = self._resolve_table(stmt.table, env)
        alias = stmt.alias or stmt.table
        colmap = {name.lower(): i for i, name in enumerate(table.column_names)}
        eval_env = Env(parent=env)
        key = alias.lower()

        def predicate(row: list[Any]) -> bool:
            eval_env.bindings[key] = Binding(colmap, row)
            return stmt.where is None or truth(self.evaluate(stmt.where, eval_env))

        count = table.delete_where(predicate)
        self.db.stats.count_rows(count, "delete")
        return count

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def execute_create_table(self, stmt: ast.CreateTable, env: Optional[Env]) -> None:
        if stmt.as_select is not None:
            result = self.execute_select(stmt.as_select, env)
            declared = self._ctas_declared_schema(
                stmt.as_select, env, len(result.columns)
            )
            types, pairs = declared if declared is not None else ({}, [])
            columns = [
                Column(name, types.get(i) or _infer_column_type(result.rows, i))
                for i, name in enumerate(result.columns)
            ]
            table = Table(stmt.name, columns, temporary=stmt.temporary)
            for row in result.rows:
                table.rows.append(list(row))
            table.version += 1
            for begin_column, end_column in pairs:
                table.declare_interval(begin_column, end_column)
            self.db.stats.count_rows(len(result.rows), "insert")
            self.db.catalog.add_table(table, replace=stmt.temporary)
            return
        pk_columns = set(stmt.primary_key or [])
        columns = [
            Column(
                c.name,
                c.type,
                not_null=c.not_null,
                primary_key=c.primary_key or c.name in pk_columns,
            )
            for c in stmt.columns
        ]
        self.db.catalog.add_table(
            Table(stmt.name, columns, temporary=stmt.temporary),
            replace=stmt.temporary,
        )

    def _ctas_declared_schema(
        self, select: ast.Select, env: Optional[Env], expected_count: int
    ) -> Optional[tuple[dict[int, SqlType], list[tuple[str, str]]]]:
        """Statically propagated schema for ``CREATE TABLE ... AS select``.

        When the select is a projection over exactly one base table,
        every output that is a plain column reference (or part of a
        ``*``) keeps the *declared* source column type instead of a
        row-sampled inference, and any declared interval pair whose both
        columns survive the projection is re-declared under the output
        names.  Without this, temp tables built by the temporal
        transforms (cp tables, PERST auxiliaries) silently lose their
        DATE declarations on empty results and their period pairs
        always — degrading them to the unbatchable fallback path.

        Returns ``(output index → type, [(begin, end), ...])`` or None
        when the shape is not a single-table projection.
        """
        if (
            select.set_op is not None
            or len(select.from_items) != 1
            or not isinstance(select.from_items[0], ast.TableRef)
        ):
            return None
        ref = select.from_items[0]
        if self.db.catalog.has_view(ref.name):
            return None
        try:
            table = self._resolve_table(ref.name, env)
        except SqlError:
            return None
        binding = ref.binding.lower()
        types: dict[int, SqlType] = {}
        # source column (lowercased) → output name, for surviving pairs;
        # a source column projected twice keeps its first output name
        out_names: dict[str, str] = {}
        position = 0
        for item in select.items:
            if item.is_star:
                if (
                    item.star_qualifier is not None
                    and item.star_qualifier.lower() != binding
                ):
                    return None
                for column in table.columns:
                    types[position] = column.type
                    out_names.setdefault(column.name.lower(), column.name)
                    position += 1
                continue
            expr = item.expr
            while isinstance(expr, ast.Parenthesized):
                expr = expr.expr
            if (
                isinstance(expr, ast.Name)
                and (expr.qualifier is None or expr.qualifier.lower() == binding)
                and table.has_column(expr.name)
            ):
                index = table.column_index(expr.name)
                types[position] = table.columns[index].type
                out_name = item.alias or expr.name
                out_names.setdefault(expr.name.lower(), out_name)
            position += 1
        if position != expected_count:
            return None
        pairs = [
            (out_names[begin], out_names[end])
            for begin, end in table.interval_pairs
            if begin in out_names and end in out_names
        ]
        return types, pairs

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------

    def evaluate_cached(self, expr: ast.Expression, env: Env) -> Any:
        """Evaluate via a memoized compiled closure (PSM hot paths).

        Keyed by AST identity with a strong reference to the node, so a
        recycled ``id()`` can never alias a different expression.
        """
        db = self.db
        if not db.plan_caching_enabled:
            return self.evaluate(expr, env)
        cache = db.expr_cache
        entry = cache.get(id(expr))
        if entry is None or entry[0] is not expr:
            from repro.sqlengine.exprcompile import compile_expression

            if len(cache) > 4096:
                cache.clear()
            entry = (expr, compile_expression(self, expr, {}))
            cache[id(expr)] = entry
        closure = entry[1]
        if closure is None:
            return self.evaluate(expr, env)
        return closure(env)

    def evaluate(self, expr: ast.Expression, env: Env) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Name):
            return env.lookup(expr.qualifier, expr.name)
        if isinstance(expr, ast.Parenthesized):
            return self.evaluate(expr.expr, env)
        if isinstance(expr, ast.BinaryOp):
            return self._evaluate_binary(expr, env)
        if isinstance(expr, ast.UnaryOp):
            value = self.evaluate(expr.operand, env)
            if expr.op == "NOT":
                return logic_not(value)
            return _negate(value)
        if isinstance(expr, ast.FunctionCall):
            return self._evaluate_call(expr, env)
        if isinstance(expr, ast.Cast):
            return coerce(self.evaluate(expr.expr, env), expr.target)
        if isinstance(expr, ast.CaseExpr):
            return self._evaluate_case(expr, env)
        if isinstance(expr, ast.IsNullPredicate):
            value = self.evaluate(expr.expr, env)
            answer = value is Null
            return not answer if expr.negated else answer
        if isinstance(expr, ast.BetweenPredicate):
            return self._evaluate_between(expr, env)
        if isinstance(expr, ast.InPredicate):
            return self._evaluate_in(expr, env)
        if isinstance(expr, ast.ExistsPredicate):
            result = self.execute_select(expr.subquery, env)
            answer = len(result.rows) > 0
            return not answer if expr.negated else answer
        if isinstance(expr, ast.LikePredicate):
            return self._evaluate_like(expr, env)
        if isinstance(expr, ast.ScalarSubquery):
            result = self.execute_select(expr.select, env)
            if not result.rows:
                return Null
            if len(result.rows) > 1:
                raise CardinalityError("scalar subquery returned more than one row")
            return result.rows[0][0]
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _evaluate_binary(self, expr: ast.BinaryOp, env: Env) -> Any:
        if expr.op == "AND":
            left = self.evaluate(expr.left, env)
            if left is False:
                return False
            right = self.evaluate(expr.right, env)
            return logic_and(left, right)
        if expr.op == "OR":
            left = self.evaluate(expr.left, env)
            if left is True:
                return True
            right = self.evaluate(expr.right, env)
            return logic_or(left, right)
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        return _apply_binary(expr.op, left, right)

    def _evaluate_call(self, expr: ast.FunctionCall, env: Env) -> Any:
        name = expr.name
        if self.db.catalog.has_routine(name):
            from repro.sqlengine.routines import RoutineInterpreter

            args = [self.evaluate(a, env) for a in expr.args]
            return RoutineInterpreter(self).invoke_function(name, args)
        upper = name.upper()
        if upper == "CURRENT_DATE":
            return self.db.now
        if fn.is_aggregate(upper):
            raise ExecutionError(
                f"aggregate {name} used outside of a grouped query"
            )
        if fn.is_scalar_builtin(upper):
            args = [self.evaluate(a, env) for a in expr.args]
            return fn.call_scalar_builtin(upper, args)
        raise CatalogError(f"no such function: {name}")

    def _evaluate_case(self, expr: ast.CaseExpr, env: Env) -> Any:
        if expr.operand is not None:
            operand = self.evaluate(expr.operand, env)
            for when, then in expr.whens:
                candidate = self.evaluate(when, env)
                if compare(operand, candidate) == 0:
                    return self.evaluate(then, env)
        else:
            for when, then in expr.whens:
                if truth(self.evaluate(when, env)):
                    return self.evaluate(then, env)
        if expr.else_expr is not None:
            return self.evaluate(expr.else_expr, env)
        return Null

    def _evaluate_between(self, expr: ast.BetweenPredicate, env: Env) -> Any:
        value = self.evaluate(expr.expr, env)
        low = self.evaluate(expr.low, env)
        high = self.evaluate(expr.high, env)
        lower = compare(value, low)
        upper = compare(value, high)
        if lower is Unknown or upper is Unknown:
            return Unknown
        answer = lower >= 0 and upper <= 0
        return (not answer) if expr.negated else answer

    def _evaluate_in(self, expr: ast.InPredicate, env: Env) -> Any:
        value = self.evaluate(expr.expr, env)
        if expr.subquery is not None:
            result = self.execute_select(expr.subquery, env)
            candidates = [row[0] for row in result.rows]
        else:
            candidates = [self.evaluate(e, env) for e in expr.items or []]
        saw_unknown = False
        for candidate in candidates:
            verdict = compare(value, candidate)
            if verdict is Unknown:
                saw_unknown = True
            elif verdict == 0:
                return False if expr.negated else True
        if saw_unknown:
            return Unknown
        return True if expr.negated else False

    def _evaluate_like(self, expr: ast.LikePredicate, env: Env) -> Any:
        value = self.evaluate(expr.expr, env)
        pattern = self.evaluate(expr.pattern, env)
        if value is Null or pattern is Null:
            return Unknown
        regex = _like_regex(str(pattern))
        answer = regex.fullmatch(str(value)) is not None
        return (not answer) if expr.negated else answer


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class _Reversed:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.key == other.key


def _negate(value: Any) -> Any:
    if value is Null:
        return Null
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return -value
    raise TypeError_(f"cannot negate {value!r}")


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    if op in ("=", "<>", "<", "<=", ">", ">="):
        verdict = compare(left, right)
        if verdict is Unknown:
            return Unknown
        if op == "=":
            return verdict == 0
        if op == "<>":
            return verdict != 0
        if op == "<":
            return verdict < 0
        if op == "<=":
            return verdict <= 0
        if op == ">":
            return verdict > 0
        return verdict >= 0
    if op == "AND":
        return logic_and(left, right)
    if op == "OR":
        return logic_or(left, right)
    if left is Null or right is Null:
        return Null
    if op == "||":
        return _to_text(left) + _to_text(right)
    if op == "+":
        if isinstance(left, Date) and isinstance(right, int):
            return left.plus_days(right)
        if isinstance(right, Date) and isinstance(left, int):
            return right.plus_days(left)
        _require_numeric(op, left, right)
        return left + right
    if op == "-":
        if isinstance(left, Date) and isinstance(right, Date):
            return left.ordinal - right.ordinal
        if isinstance(left, Date) and isinstance(right, int):
            return left.plus_days(-right)
        _require_numeric(op, left, right)
        return left - right
    if op == "*":
        _require_numeric(op, left, right)
        return left * right
    if op == "/":
        _require_numeric(op, left, right)
        if right == 0:
            raise DivisionByZeroError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            quotient = left // right
            if quotient < 0 and left % right != 0:
                quotient += 1  # SQL integer division truncates toward zero
            return quotient
        return left / right
    raise ExecutionError(f"unknown operator {op}")


def _require_numeric(op: str, left: Any, right: Any) -> None:
    """Arithmetic needs numbers (bool counts, as elsewhere in SQL)."""
    for value in (left, right):
        if not isinstance(value, (int, float)):
            raise TypeError_(
                f"operator {op} requires numeric operands,"
                f" got {type(value).__name__}"
            )


def _to_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, Date):
        return value.to_iso()
    return str(value)


def _like_regex(pattern: str) -> "re.Pattern[str]":
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), re.DOTALL)


def _split_conjuncts(where: Optional[ast.Expression]) -> list[ast.Expression]:
    """Flatten the top-level AND tree of a predicate."""
    if where is None:
        return []
    if isinstance(where, ast.Parenthesized):
        return _split_conjuncts(where.expr)
    if isinstance(where, ast.BinaryOp) and where.op == "AND":
        return _split_conjuncts(where.left) + _split_conjuncts(where.right)
    return [where]


def _distinct_rows(rows: list[list[Any]]) -> list[list[Any]]:
    seen: set = set()
    unique: list[list[Any]] = []
    for row in rows:
        key = tuple(sort_key(v) for v in row)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def _contains_aggregate(expr: ast.Expression) -> bool:
    """True if the expression has an aggregate call not inside a subquery."""
    if isinstance(expr, ast.FunctionCall):
        if fn.is_aggregate(expr.name):
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, (ast.ScalarSubquery, ast.ExistsPredicate)):
        return False
    if isinstance(expr, ast.InPredicate):
        return _contains_aggregate(expr.expr) or any(
            _contains_aggregate(i) for i in expr.items or []
        )
    for child in ast.iter_children(expr):
        if isinstance(child, ast.Expression) and _contains_aggregate(child):
            return True
    return False


def _flatten_from(from_items: list[ast.FromItem]) -> list[ast.FromItem]:
    """Sources in *binding* order (a RIGHT join binds its right side first)."""
    flat: list[ast.FromItem] = []
    for item in from_items:
        if isinstance(item, ast.Join):
            if item.kind == "RIGHT":
                flat.extend(_flatten_from([item.right, item.left]))
            else:
                flat.extend(_flatten_from([item.left, item.right]))
        else:
            flat.append(item)
    return flat


def _freeze_env(env: Env) -> Env:
    """Snapshot the current bindings of ``env`` into a standalone Env.

    The FROM iterator mutates bindings in place, so grouping must copy.
    """
    frozen = Env(parent=env.parent, frame=env.frame)
    for alias, binding in env.bindings.items():
        frozen.bindings[alias] = Binding(binding.columns, list(binding.row))
    return frozen


def _infer_column_type(rows: list[list[Any]], index: int) -> SqlType:
    """Unify a declared type over *all* of the column's non-NULL values.

    Inferring from the first value alone would declare too narrow a type
    when later rows widen (int → float, longer strings) — and a wrong
    declaration degrades the table's derived column vector to ``obj``,
    silently losing the vectorized path.  Numeric kinds unify upward
    (bool → int → float); anything heterogeneous beyond that keeps the
    legacy first-value inference.
    """
    saw: Any = None
    length = 1
    first: Any = None
    for row in rows:
        value = row[index]
        if value is Null:
            continue
        if first is None:
            first = value
        if isinstance(value, bool):
            kind = "bool"
        elif isinstance(value, int):
            kind = "int"
        elif isinstance(value, float):
            kind = "float"
        elif isinstance(value, str):
            kind = "str"
            length = max(length, len(value))
        elif isinstance(value, Date):
            kind = "date"
        else:
            return infer_type(first)
        if saw is None or saw == kind:
            saw = kind
        elif {saw, kind} <= {"bool", "int", "float"}:
            saw = "float" if "float" in (saw, kind) else "int"
        else:
            return infer_type(first)
    if saw is None:
        return SqlType("VARCHAR", length=255)
    if saw == "str":
        return SqlType("VARCHAR", length=length)
    return SqlType(
        {"bool": "BOOLEAN", "int": "INTEGER", "float": "FLOAT", "date": "DATE"}[saw]
    )
