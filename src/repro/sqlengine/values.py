"""Runtime value model: NULL, dates, rows, and three-valued logic.

The engine represents SQL values with plain Python objects:

* ``int`` / ``float`` for numbers,
* ``str`` for character data,
* ``bool`` for booleans,
* :data:`Null` (a singleton) for SQL NULL,
* :class:`Date` for DATE values (an integer day ordinal underneath —
  this is also the granule the temporal layer slices on).

Comparisons between values go through :func:`compare`, which implements
SQL semantics (NULL-propagating); boolean connectives go through
:func:`logic_and` / :func:`logic_or` / :func:`logic_not`, which implement
three-valued logic with :data:`Unknown`.
"""

from __future__ import annotations

import datetime
from functools import total_ordering
from typing import Any, Iterable, Optional, Sequence

from repro.sqlengine.errors import TypeError_


class _NullType:
    """Singleton SQL NULL.  Falsy, equal only to itself."""

    _instance: Optional["_NullType"] = None

    def __new__(cls) -> "_NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):  # keep singleton across pickling
        return (_NullType, ())


Null = _NullType()


class _UnknownType:
    """Singleton UNKNOWN truth value of three-valued logic."""

    _instance: Optional["_UnknownType"] = None

    def __new__(cls) -> "_UnknownType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNKNOWN"

    def __bool__(self) -> bool:
        return False


Unknown = _UnknownType()


@total_ordering
class Date:
    """A DATE value backed by a proleptic-Gregorian day ordinal.

    The temporal layer treats day ordinals as its time granules, so this
    class doubles as the granule type.  ``Date.MAX`` plays the role of
    SQL's end-of-time (9999-12-31), used as the "forever" period bound.
    """

    __slots__ = ("ordinal",)

    MIN_ORDINAL = datetime.date(1, 1, 1).toordinal()
    MAX_ORDINAL = datetime.date(9999, 12, 31).toordinal()

    def __init__(self, ordinal: int) -> None:
        if not isinstance(ordinal, int):
            raise TypeError_(f"Date ordinal must be int, got {type(ordinal).__name__}")
        self.ordinal = ordinal

    @classmethod
    def from_iso(cls, text: str) -> "Date":
        """Parse 'YYYY-MM-DD'."""
        try:
            return cls(datetime.date.fromisoformat(text.strip()).toordinal())
        except ValueError as exc:
            raise TypeError_(f"invalid DATE literal {text!r}") from exc

    @classmethod
    def from_ymd(cls, year: int, month: int, day: int) -> "Date":
        return cls(datetime.date(year, month, day).toordinal())

    def to_iso(self) -> str:
        return datetime.date.fromordinal(self.ordinal).isoformat()

    def plus_days(self, days: int) -> "Date":
        return Date(self.ordinal + days)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Date) and self.ordinal == other.ordinal

    def __lt__(self, other: "Date") -> bool:
        if not isinstance(other, Date):
            return NotImplemented
        return self.ordinal < other.ordinal

    def __hash__(self) -> int:
        return hash(("Date", self.ordinal))

    def __repr__(self) -> str:
        return f"DATE '{self.to_iso()}'"


Date.MIN = Date(Date.MIN_ORDINAL)  # type: ignore[attr-defined]
Date.MAX = Date(Date.MAX_ORDINAL)  # type: ignore[attr-defined]


class Row:
    """An immutable result row: column names plus values.

    Supports access by index and by (case-insensitive) column name.
    """

    __slots__ = ("columns", "values")

    def __init__(self, columns: Sequence[str], values: Sequence[Any]) -> None:
        if len(columns) != len(values):
            raise TypeError_(
                f"row has {len(columns)} columns but {len(values)} values"
            )
        self.columns = tuple(columns)
        self.values = tuple(values)

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, int):
            return self.values[key]
        lowered = key.lower()
        for name, value in zip(self.columns, self.values):
            if name.lower() == lowered:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterable[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{c}={v!r}" for c, v in zip(self.columns, self.values))
        return f"Row({pairs})"

    def as_dict(self) -> dict:
        return dict(zip(self.columns, self.values))


def is_null(value: Any) -> bool:
    """True if ``value`` is SQL NULL."""
    return value is Null


def compare(left: Any, right: Any) -> Any:
    """SQL comparison: -1/0/1, or Unknown if either side is NULL.

    Numeric types compare numerically across int/float/bool; strings
    compare after stripping trailing blanks (CHAR padding semantics);
    dates compare by ordinal.  Cross-type comparisons raise.
    """
    if left is Null or right is Null:
        return Unknown
    left = _normalize(left)
    right = _normalize(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        lhs, rhs = left.rstrip(), right.rstrip()
        return (lhs > rhs) - (lhs < rhs)
    if isinstance(left, Date) and isinstance(right, Date):
        return (left.ordinal > right.ordinal) - (left.ordinal < right.ordinal)
    raise TypeError_(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )


def _normalize(value: Any) -> Any:
    """Map bool to int for comparison purposes."""
    if isinstance(value, bool):
        return int(value)
    return value


def equals(left: Any, right: Any) -> Any:
    """SQL equality: True/False, or Unknown when NULL is involved."""
    result = compare(left, right)
    if result is Unknown:
        return Unknown
    return result == 0


def logic_and(left: Any, right: Any) -> Any:
    """Three-valued AND."""
    if left is False or right is False:
        return False
    if left is Unknown or right is Unknown or left is Null or right is Null:
        return Unknown
    return True


def logic_or(left: Any, right: Any) -> Any:
    """Three-valued OR."""
    if left is True or right is True:
        return True
    if left is Unknown or right is Unknown or left is Null or right is Null:
        return Unknown
    return False


def logic_not(value: Any) -> Any:
    """Three-valued NOT."""
    if value is Unknown or value is Null:
        return Unknown
    return not value


def truth(value: Any) -> bool:
    """Collapse a three-valued truth value for WHERE filtering.

    SQL keeps a row only when the predicate is *True*; both False and
    Unknown reject it.
    """
    return value is True


def sort_key(value: Any) -> tuple:
    """A total-order key for ORDER BY / DISTINCT: NULLs sort first."""
    if value is Null:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, Date):
        return (2, value.ordinal)
    if isinstance(value, str):
        return (3, value.rstrip())
    return (4, repr(value))
