"""The PSM interpreter: stored functions and procedures.

Executes routine bodies (compound statements, variables, control flow,
cursors) against the relational core in
:mod:`repro.sqlengine.executor`.  Every routine invocation increments the
engine's per-routine call counter — the machine-independent cost metric
the paper's MAX-vs-PERST comparison turns on.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Routine
from repro.sqlengine.errors import (
    CardinalityError,
    CursorError,
    ExecutionError,
    RoutineError,
    SignalError,
    SqlError,
)
from repro.sqlengine.executor import Binding, Env, Executor, ResultSet
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import SqlType, coerce
from repro.sqlengine.values import Null, compare, truth


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Leave(Exception):
    def __init__(self, label: str) -> None:
        self.label = label


class _Iterate(Exception):
    def __init__(self, label: str) -> None:
        self.label = label


class _HandlerExit(Exception):
    """Unwinds to the compound whose scope declared an EXIT handler."""

    def __init__(self, depth: int) -> None:
        self.depth = depth


class _CursorState:
    __slots__ = ("select", "rows", "columns", "position", "is_open")

    def __init__(self, select: ast.Select) -> None:
        self.select = select
        self.rows: list[list[Any]] = []
        self.columns: list[str] = []
        self.position = 0
        self.is_open = False


class _Handler:
    __slots__ = ("kind", "condition", "action", "depth", "active")

    def __init__(self, kind: str, condition: str, action: ast.Statement, depth: int) -> None:
        self.kind = kind
        self.condition = condition
        self.action = action
        self.depth = depth
        self.active = False  # True while the handler's action runs


class Frame:
    """One routine invocation: scoped variables, cursors, handlers."""

    def __init__(self, routine_name: str) -> None:
        self.routine_name = routine_name
        self.scopes: list[dict[str, dict]] = [{}]
        self.cursors: dict[str, _CursorState] = {}
        self.handlers: list[_Handler] = []
        self.result_sets: list[ResultSet] = []
        self.parent = None  # no closure chain; queries see only this frame

    # -- scope management -----------------------------------------------

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        depth = len(self.scopes)
        self.scopes.pop()
        self.handlers = [h for h in self.handlers if h.depth < depth]

    def declare_scalar(self, name: str, type_: SqlType, value: Any = Null) -> None:
        self.scopes[-1][name.lower()] = {
            "kind": "scalar",
            "type": type_,
            "value": coerce(value, type_) if value is not Null else Null,
        }

    def declare_table_var(self, name: str, array_type: ast.RowArrayType) -> Table:
        columns = [Column(f.name, f.type) for f in array_type.fields]
        table = Table(name, columns, temporary=True)
        self.scopes[-1][name.lower()] = {"kind": "table", "table": table}
        return table

    def declare_record(self, name: str, columns: dict[str, int], row: list[Any]) -> None:
        self.scopes[-1][name.lower()] = {
            "kind": "record",
            "columns": columns,
            "row": row,
        }

    def _find_slot(self, key: str) -> Optional[dict]:
        for scope in reversed(self.scopes):
            slot = scope.get(key)
            if slot is not None:
                return slot
        return None

    # -- lookups used by the executor's Env -------------------------------

    def lookup_variable(self, key: str) -> tuple[bool, Any]:
        slot = self._find_slot(key)
        if slot is not None:
            if slot["kind"] == "scalar":
                return True, slot["value"]
            if slot["kind"] == "table":
                return True, slot["table"]
        # unqualified access to a FOR-loop record field
        for scope in reversed(self.scopes):
            for slot in scope.values():
                if slot["kind"] == "record":
                    index = slot["columns"].get(key)
                    if index is not None:
                        return True, slot["row"][index]
        return False, None

    def lookup_record_field(self, qualifier: str, key: str) -> tuple[bool, Any]:
        slot = self._find_slot(qualifier)
        if slot is not None and slot["kind"] == "record":
            index = slot["columns"].get(key)
            if index is not None:
                return True, slot["row"][index]
        return False, None

    def lookup_table_var(self, name: str) -> Optional[Table]:
        slot = self._find_slot(name.lower())
        if slot is not None and slot["kind"] == "table":
            return slot["table"]
        return None

    def set_variable(self, name: str, value: Any) -> None:
        key = name.lower()
        slot = self._find_slot(key)
        if slot is None:
            raise RoutineError(
                f"unknown variable {name!r} in {self.routine_name}"
            )
        if slot["kind"] != "scalar":
            raise RoutineError(f"cannot SET non-scalar variable {name!r}")
        slot["value"] = coerce(value, slot["type"])

    # -- handlers ----------------------------------------------------------

    def add_handler(self, handler: ast.DeclareHandler) -> None:
        self.handlers.append(
            _Handler(handler.kind, handler.condition, handler.action, len(self.scopes))
        )

    def find_handler(self, condition: str) -> Optional[_Handler]:
        # skip handlers whose action is currently running, so an error
        # raised inside a handler cannot re-enter the same handler
        for handler in reversed(self.handlers):
            if handler.condition == condition and not handler.active:
                return handler
        return None


class RoutineInterpreter:
    """Executes routine bodies; one instance per engine, stateless."""

    MAX_DEPTH = 64

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        self.db = executor.db

    # ------------------------------------------------------------------
    # invocation entry points
    # ------------------------------------------------------------------

    def invoke_function(self, name: str, args: list[Any]) -> Any:
        routine = self.db.catalog.get_routine(name)
        if routine.kind != "FUNCTION":
            raise RoutineError(f"{name} is a procedure; use CALL")
        value = self._invoke(routine, args)
        returns = routine.definition.returns
        if isinstance(returns, ast.RowArrayType):
            return value
        if value is Null:
            return Null
        return coerce(value, returns)

    def invoke_table_function(
        self, name: str, args: list[Any]
    ) -> tuple[list[str], list[list[Any]]]:
        routine = self.db.catalog.get_routine(name)
        returns = routine.definition.returns
        if not isinstance(returns, ast.RowArrayType):
            raise RoutineError(f"{name} does not return a row array")
        value = self._invoke(routine, args)
        columns = list(returns.column_names)
        if value is Null or value is None:
            return columns, []
        if isinstance(value, Table):
            return columns, [list(row) for row in value.rows]
        raise RoutineError(
            f"table function {name} returned {type(value).__name__},"
            " expected a row-array variable"
        )

    def call_procedure(
        self, stmt: ast.CallStatement, caller_env: Optional[Env]
    ) -> list[ResultSet]:
        routine = self.db.catalog.get_routine(stmt.name)
        if routine.kind != "PROCEDURE":
            raise RoutineError(f"{stmt.name} is a function; invoke it in a query")
        params = routine.params
        if len(stmt.args) != len(params):
            raise RoutineError(
                f"{stmt.name} expects {len(params)} arguments, got {len(stmt.args)}"
            )
        caller_frame = caller_env.frame if caller_env is not None else None
        eval_env = caller_env if caller_env is not None else Env()
        arg_values: list[Any] = []
        out_targets: list[tuple[int, str]] = []
        for index, (param, arg) in enumerate(zip(params, stmt.args)):
            if param.mode in ("OUT", "INOUT"):
                if not isinstance(arg, ast.Name) or arg.qualifier is not None:
                    raise RoutineError(
                        f"argument {index + 1} of {stmt.name} must be a variable"
                        f" ({param.mode} parameter)"
                    )
                out_targets.append((index, arg.name))
                if param.mode == "INOUT":
                    arg_values.append(self.executor.evaluate_cached(arg, eval_env))
                else:
                    arg_values.append(Null)
            else:
                arg_values.append(self.executor.evaluate_cached(arg, eval_env))
        frame = self._new_frame(routine, arg_values)
        self._count_call(routine.name)
        with self.db.tracer.span("routine", name=routine.name):
            try:
                self.execute_statement(routine.definition.body, frame)
            except _Return:
                pass
        # copy OUT / INOUT parameters back to the caller
        for index, var_name in out_targets:
            found, value = frame.lookup_variable(params[index].name.lower())
            if not found:  # pragma: no cover - parameters always exist
                value = Null
            if caller_frame is not None:
                caller_frame.set_variable(var_name, value)
        return frame.result_sets

    def _invoke(self, routine: Routine, args: list[Any]) -> Any:
        params = routine.params
        if len(args) != len(params):
            raise RoutineError(
                f"{routine.name} expects {len(params)} arguments, got {len(args)}"
            )
        frame = self._new_frame(routine, args)
        self._count_call(routine.name)
        with self.db.tracer.span("routine", name=routine.name):
            try:
                self.execute_statement(routine.definition.body, frame)
            except _Return as ret:
                return ret.value
            return Null

    def _new_frame(self, routine: Routine, args: list[Any]) -> Frame:
        if self.db.stats.call_depth >= self.MAX_DEPTH:
            raise RoutineError("routine call depth exceeded")
        frame = Frame(routine.name)
        for param, value in zip(routine.params, args):
            frame.declare_scalar(param.name, param.type, value)
        return frame

    def _count_call(self, name: str) -> None:
        stats = self.db.stats
        stats.total_routine_calls += 1
        stats.routine_calls[name.lower()] = stats.routine_calls.get(name.lower(), 0) + 1

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    def execute_statement(self, stmt: ast.Statement, frame: Frame) -> None:
        if getattr(stmt, "modifier", None) is not None:
            raise ExecutionError(
                "temporal statement modifiers require the temporal stratum"
            )
        self.db.stats.statements += 1
        self.db.stats.call_depth += 1
        txn = self.db.txn
        token = txn.mark()
        try:
            # watchdog checkpoint at every PSM statement boundary —
            # inside this statement's guard, so a cancellation takes the
            # same rollback + handler-dispatch path as a SIGNAL raised
            # by the statement itself (SQLSTATE '57014' handlers fire;
            # unhandled, it cascades to full routine atomicity)
            resilience = self.db.resilience
            if resilience.armed:
                resilience.check()
            self._dispatch(stmt, frame)
        except SqlError as exc:
            # revert this statement's partial effects, then look for a
            # declared handler; an unhandled condition cascades up one
            # statement guard at a time, so the whole routine unwinds
            txn.rollback_to(token)
            self._handle_exception(exc, frame)
        except BaseException:
            # control-flow signals (_Return, _Leave, _HandlerExit, ...)
            # are not failures: keep the statement's effects
            txn.release(token)
            raise
        else:
            txn.release(token)
        finally:
            self.db.stats.call_depth -= 1

    def _handle_exception(self, exc: SqlError, frame: Frame) -> None:
        handler = None
        if isinstance(exc, SignalError):
            handler = frame.find_handler(f"SQLSTATE {exc.sqlstate}")
        if handler is None:
            handler = frame.find_handler("SQLEXCEPTION")
        if handler is None:
            raise exc
        handler.active = True
        try:
            self.execute_statement(handler.action, frame)
        finally:
            handler.active = False
        if handler.kind == "EXIT":
            raise _HandlerExit(handler.depth)

    def _dispatch(self, stmt: ast.Statement, frame: Frame) -> None:
        env = Env(frame=frame)
        if isinstance(stmt, ast.Compound):
            self._execute_compound(stmt, frame)
        elif isinstance(stmt, ast.DeclareVariable):
            self._declare_variable(stmt, frame)
        elif isinstance(stmt, ast.DeclareCursor):
            frame.cursors[stmt.name.lower()] = _CursorState(stmt.select)
        elif isinstance(stmt, ast.DeclareHandler):
            frame.add_handler(stmt)
        elif isinstance(stmt, ast.SetStatement):
            self._execute_set(stmt, frame, env)
        elif isinstance(stmt, ast.SelectInto):
            self._execute_select_into(stmt, frame, env)
        elif isinstance(stmt, ast.IfStatement):
            self._execute_if(stmt, frame, env)
        elif isinstance(stmt, ast.CaseStatement):
            self._execute_case(stmt, frame, env)
        elif isinstance(stmt, ast.WhileStatement):
            self._execute_while(stmt, frame, env)
        elif isinstance(stmt, ast.RepeatStatement):
            self._execute_repeat(stmt, frame, env)
        elif isinstance(stmt, ast.ForStatement):
            self._execute_for(stmt, frame, env)
        elif isinstance(stmt, ast.LoopStatement):
            self._execute_loop(stmt, frame)
        elif isinstance(stmt, ast.LeaveStatement):
            raise _Leave(stmt.label.lower())
        elif isinstance(stmt, ast.IterateStatement):
            raise _Iterate(stmt.label.lower())
        elif isinstance(stmt, ast.ReturnStatement):
            value = (
                self.executor.evaluate_cached(stmt.value, env)
                if stmt.value is not None
                else Null
            )
            raise _Return(value)
        elif isinstance(stmt, ast.CallStatement):
            results = self.call_procedure(stmt, env)
            frame.result_sets.extend(results)
        elif isinstance(stmt, ast.OpenCursor):
            self._execute_open(stmt, frame, env)
        elif isinstance(stmt, ast.FetchCursor):
            self._execute_fetch(stmt, frame)
        elif isinstance(stmt, ast.CloseCursor):
            self._execute_close(stmt, frame)
        elif isinstance(stmt, ast.Select):
            result = self.executor.execute_select(stmt, env)
            frame.result_sets.append(result)
        elif isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            self.executor.execute(stmt, env)
        elif isinstance(stmt, (ast.CreateTable, ast.DropTable)):
            self.executor.execute(stmt, env)
        elif isinstance(stmt, ast.SignalStatement):
            raise SignalError(stmt.sqlstate, stmt.message)
        elif isinstance(stmt, ast.TransactionStatement):
            raise RoutineError(
                "transaction control statements are not allowed inside routines"
            )
        else:
            raise RoutineError(
                f"unsupported statement in routine body: {type(stmt).__name__}"
            )

    # -- compound ---------------------------------------------------------

    def _execute_compound(self, stmt: ast.Compound, frame: Frame) -> None:
        frame.push_scope()
        depth = len(frame.scopes)  # handlers declared here record this depth
        try:
            for declaration in stmt.declarations:
                self.execute_statement(declaration, frame)
            for inner in stmt.statements:
                self.execute_statement(inner, frame)
        except _HandlerExit as exit_:
            if exit_.depth != depth:
                raise
        finally:
            frame.pop_scope()

    def _declare_variable(self, stmt: ast.DeclareVariable, frame: Frame) -> None:
        if stmt.array_type is not None:
            for name in stmt.names:
                frame.declare_table_var(name, stmt.array_type)
            return
        env = Env(frame=frame)
        default = (
            self.executor.evaluate_cached(stmt.default, env)
            if stmt.default is not None
            else Null
        )
        for name in stmt.names:
            frame.declare_scalar(name, stmt.type, default)

    # -- assignment ---------------------------------------------------------

    def _execute_set(self, stmt: ast.SetStatement, frame: Frame, env: Env) -> None:
        if len(stmt.targets) == 1:
            value = self.executor.evaluate_cached(stmt.value, env)
            frame.set_variable(stmt.targets[0], value)
            return
        # row form: SET (a, b) = (SELECT x, y ...)
        value_expr = stmt.value
        if isinstance(value_expr, ast.Parenthesized):
            value_expr = value_expr.expr
        if isinstance(value_expr, ast.ScalarSubquery):
            result = self.executor.execute_select(value_expr.select, env)
            if len(result.rows) > 1:
                raise CardinalityError("row SET: query returned more than one row")
            if not result.rows:
                self._signal_not_found(frame)
                return
            row = result.rows[0]
            if len(row) != len(stmt.targets):
                raise RoutineError(
                    f"row SET: {len(stmt.targets)} targets but {len(row)} columns"
                )
            for target, value in zip(stmt.targets, row):
                frame.set_variable(target, value)
            return
        raise RoutineError("row SET requires a row subquery")

    def _execute_select_into(
        self, stmt: ast.SelectInto, frame: Frame, env: Env
    ) -> None:
        result = self.executor.execute_select(stmt.select, env)
        if len(result.rows) > 1:
            raise CardinalityError("SELECT INTO returned more than one row")
        if not result.rows:
            self._signal_not_found(frame)
            return
        row = result.rows[0]
        if len(row) != len(stmt.targets):
            raise RoutineError(
                f"SELECT INTO: {len(stmt.targets)} targets but {len(row)} columns"
            )
        for target, value in zip(stmt.targets, row):
            frame.set_variable(target, value)

    # -- control flow ---------------------------------------------------

    def _execute_if(self, stmt: ast.IfStatement, frame: Frame, env: Env) -> None:
        for condition, body in stmt.branches:
            if truth(self.executor.evaluate_cached(condition, env)):
                for inner in body:
                    self.execute_statement(inner, frame)
                return
        if stmt.else_branch is not None:
            for inner in stmt.else_branch:
                self.execute_statement(inner, frame)

    def _execute_case(self, stmt: ast.CaseStatement, frame: Frame, env: Env) -> None:
        if stmt.operand is not None:
            operand = self.executor.evaluate_cached(stmt.operand, env)
            for when, body in stmt.whens:
                if compare(operand, self.executor.evaluate_cached(when, env)) == 0:
                    for inner in body:
                        self.execute_statement(inner, frame)
                    return
        else:
            for when, body in stmt.whens:
                if truth(self.executor.evaluate_cached(when, env)):
                    for inner in body:
                        self.execute_statement(inner, frame)
                    return
        if stmt.else_branch is not None:
            for inner in stmt.else_branch:
                self.execute_statement(inner, frame)

    def _execute_while(self, stmt: ast.WhileStatement, frame: Frame, env: Env) -> None:
        label = (stmt.label or "").lower()
        while truth(self.executor.evaluate_cached(stmt.condition, env)):
            try:
                for inner in stmt.body:
                    self.execute_statement(inner, frame)
            except _Leave as leave:
                if leave.label == label:
                    return
                raise
            except _Iterate as iterate:
                if iterate.label != label:
                    raise

    def _execute_repeat(self, stmt: ast.RepeatStatement, frame: Frame, env: Env) -> None:
        label = (stmt.label or "").lower()
        while True:
            try:
                for inner in stmt.body:
                    self.execute_statement(inner, frame)
            except _Leave as leave:
                if leave.label == label:
                    return
                raise
            except _Iterate as iterate:
                if iterate.label != label:
                    raise
            if truth(self.executor.evaluate_cached(stmt.until, env)):
                return

    def _execute_for(self, stmt: ast.ForStatement, frame: Frame, env: Env) -> None:
        label = (stmt.label or "").lower()
        result = self.executor.execute_select(stmt.select, env)
        colmap = {name.lower(): i for i, name in enumerate(result.columns)}
        for row in result.rows:
            frame.push_scope()
            frame.declare_record(stmt.loop_var, colmap, list(row))
            try:
                for inner in stmt.body:
                    self.execute_statement(inner, frame)
            except _Leave as leave:
                frame.pop_scope()
                if leave.label == label:
                    return
                raise
            except _Iterate as iterate:
                frame.pop_scope()
                if iterate.label != label:
                    raise
                continue
            frame.pop_scope()

    def _execute_loop(self, stmt: ast.LoopStatement, frame: Frame) -> None:
        label = (stmt.label or "").lower()
        iterations = 0
        while True:
            iterations += 1
            if iterations > 10_000_000:  # pragma: no cover - runaway guard
                raise RoutineError("LOOP exceeded iteration guard")
            try:
                for inner in stmt.body:
                    self.execute_statement(inner, frame)
            except _Leave as leave:
                if leave.label == label:
                    return
                raise
            except _Iterate as iterate:
                if iterate.label != label:
                    raise

    # -- cursors ------------------------------------------------------------

    def _cursor(self, frame: Frame, name: str) -> _CursorState:
        cursor = frame.cursors.get(name.lower())
        if cursor is None:
            raise CursorError(f"no such cursor: {name}")
        return cursor

    def _execute_open(self, stmt: ast.OpenCursor, frame: Frame, env: Env) -> None:
        cursor = self._cursor(frame, stmt.name)
        if cursor.is_open:
            raise CursorError(f"cursor {stmt.name} is already open")
        result = self.executor.execute_select(cursor.select, env)
        cursor.rows = result.rows
        cursor.columns = result.columns
        cursor.position = 0
        cursor.is_open = True

    def _execute_fetch(self, stmt: ast.FetchCursor, frame: Frame) -> None:
        cursor = self._cursor(frame, stmt.name)
        if not cursor.is_open:
            raise CursorError(f"cursor {stmt.name} is not open")
        if cursor.position >= len(cursor.rows):
            self._signal_not_found(frame)
            return
        row = cursor.rows[cursor.position]
        cursor.position += 1
        if len(row) != len(stmt.targets):
            raise CursorError(
                f"FETCH {stmt.name}: {len(stmt.targets)} targets but"
                f" {len(row)} columns"
            )
        for target, value in zip(stmt.targets, row):
            frame.set_variable(target, value)

    def _execute_close(self, stmt: ast.CloseCursor, frame: Frame) -> None:
        cursor = self._cursor(frame, stmt.name)
        if not cursor.is_open:
            raise CursorError(f"cursor {stmt.name} is not open")
        cursor.is_open = False
        cursor.rows = []
        cursor.position = 0

    # -- conditions -----------------------------------------------------

    def _signal_not_found(self, frame: Frame) -> None:
        handler = frame.find_handler("NOT FOUND")
        if handler is None:
            return  # SQLSTATE 02000 is a completion condition, not an error
        self.execute_statement(handler.action, frame)
