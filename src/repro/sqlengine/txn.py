"""Undo-log transaction manager.

The engine gains atomicity from a single physical undo log shared by
every layer: each mutating primitive in :class:`~repro.sqlengine.storage.Table`,
:class:`~repro.sqlengine.catalog.Catalog` and the stratum's temporal
registries appends an inverse operation while logging is active.  A
*mark* is an index into that log; rolling back to a mark applies the
entries above it in reverse and restores the version counters the
bind/plan caches key on.

Marks nest freely on one stack:

* :class:`~repro.sqlengine.engine.Database` wraps every top-level
  statement in an anonymous mark (implicit statement atomicity);
* the temporal stratum wraps each temporal statement, covering the MAX
  per-period CALL loop and PERST delete+insert pairs;
* the PSM interpreter wraps every routine statement so handlers can
  revert exactly the failing statement;
* ``SAVEPOINT name`` pushes a named mark inside an explicit transaction.

Outside an explicit transaction the log is discarded as soon as the last
mark is released, so bulk loads and committed statements cost one list
append per mutation and nothing is retained.

Undo application manipulates the raw storage structures directly —
never the logging primitives — so rollback cannot re-log or re-trigger
an injected fault.  Version counters are *restored* (not bumped) so
plan/transform/hash-index caches built before the rolled-back window
keep hitting; cache entries created during the window are evicted
explicitly (see :meth:`TransactionManager._after_rollback`) because a
restored counter could otherwise climb back to the same value over a
different schema and alias them.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sqlengine.errors import ExecutionError, FaultInjected


class FaultPlan:
    """Deterministic fault injection: fail scheduled mutations at a site.

    ``site`` is a primitive tag such as ``"table.insert"`` or
    ``"catalog.add_table"``; ``target`` optionally restricts to one
    object name.  By default the fault fires once (on the ``at``-th
    match) and then stays spent, so re-running the statement after a
    crash succeeds without clearing the plan.  Two extensions support
    crash-matrix sweeps without re-arming:

    * ``every=N`` re-fires on every Nth match after ``at``
      (``at``, ``at+N``, ``at+2N``, ...);
    * ``times=K`` caps the number of firings (``None`` = unlimited,
      meaningful only with ``every``).

    Primitives consult the plan *before* mutating, so a fired fault
    leaves that primitive un-applied.

    ``exc_factory`` swaps the raised exception: a callable
    ``(site, target, hits) -> BaseException`` lets the resilience
    chaos harness inject ``OSError``-style *transient* faults at the
    durability sites (absorbed by bounded retry) instead of the
    default :class:`FaultInjected` crash simulation.
    """

    __slots__ = (
        "site", "target", "at", "every", "times", "hits", "fires", "fired",
        "exc_factory",
    )

    def __init__(
        self,
        site: str,
        target: Optional[str] = None,
        at: int = 1,
        every: Optional[int] = None,
        times: Optional[int] = 1,
        exc_factory: Optional[Callable[[str, str, int], BaseException]] = None,
    ) -> None:
        self.site = site
        self.target = target.lower() if target is not None else None
        self.at = at
        self.every = every
        self.times = times
        self.exc_factory = exc_factory
        self.hits = 0
        self.fires = 0
        self.fired = False

    @property
    def spent(self) -> bool:
        return self.times is not None and self.fires >= self.times

    def hit(self, site: str, target: str) -> None:
        """Count a mutation; raise :class:`FaultInjected` on scheduled matches."""
        if site != self.site or self.spent:
            return
        if self.target is not None and target.lower() != self.target:
            return
        self.hits += 1
        if self.hits == self.at:
            due = True
        elif self.every is not None and self.hits > self.at:
            due = (self.hits - self.at) % self.every == 0
        else:
            due = False
        if due:
            self.fires += 1
            self.fired = True
            if self.exc_factory is not None:
                raise self.exc_factory(site, target, self.hits)
            raise FaultInjected(
                f"injected fault at {site} on {target!r} (match #{self.hits})"
            )


class FaultSet:
    """Several armed :class:`FaultPlan` sites behind one ``hit`` surface.

    Duck-types the single-plan interface the primitives consult, so a
    crash-matrix test can arm, say, every-Nth-fsync *and* a catalog
    fault in the same run: ``txn.fault_plan = FaultSet(p1, p2)``.
    """

    __slots__ = ("plans",)

    def __init__(self, *plans: FaultPlan) -> None:
        self.plans = list(plans)

    @property
    def fired(self) -> bool:
        return any(plan.fired for plan in self.plans)

    def hit(self, site: str, target: str) -> None:
        for plan in self.plans:
            plan.hit(site, target)


class _Mark:
    """A savepoint: an index into the undo log, optionally named.

    ``redo_index`` is the matching position in the durability manager's
    redo buffer (0 while durability is detached), so rolling back to a
    mark also discards the redo records the window buffered.
    """

    __slots__ = ("name", "index", "redo_index")

    def __init__(self, name: Optional[str], index: int, redo_index: int = 0) -> None:
        self.name = name
        self.index = index
        self.redo_index = redo_index


def _restore_table_version(table, version: int) -> None:
    """Reset a table's version, evicting derived structures built later.

    A restored counter can climb back to the same value over different
    rows, so any hash index, interval index or change-point set built
    during the rolled-back window must go.
    """
    table.version = version
    for cache in (table._hash_indexes, table._interval_indexes, table._change_points):
        stale = [key for key, (built, _) in cache.items() if built > version]
        for key in stale:
            del cache[key]
    store = table._column_store
    if store is not None and store[0] > version:
        table._column_store = None


def _apply_undo(entry: tuple) -> None:
    """Apply one inverse operation (raw structures, never primitives)."""
    tag = entry[0]
    if tag == "ins":
        _, table, version = entry
        table.rows.pop()
        _restore_table_version(table, version)
    elif tag == "upd":
        _, table, version, row, old_cells = entry
        for index, value in old_cells:
            row[index] = value
        _restore_table_version(table, version)
    elif tag == "cell":
        _, table, version, row, index, value = entry
        row[index] = value
        _restore_table_version(table, version)
    elif tag == "rows":
        # delete_where / replace_rows / truncate reassign the row list,
        # so the inverse is simply the displaced list object
        _, table, version, old_rows = entry
        table.rows = old_rows
        _restore_table_version(table, version)
    elif tag == "addcol":
        _, table, version, ncols = entry
        for column in table.columns[ncols:]:
            table._index.pop(column.name.lower(), None)
        del table.columns[ncols:]
        for row in table.rows:
            del row[ncols:]
        _restore_table_version(table, version)
    elif tag == "cat_table":
        _, catalog, key, old_value, old_version = entry
        if old_value is None:
            catalog._tables.pop(key, None)
        else:
            catalog._tables[key] = old_value
        catalog.schema_version = old_version
    elif tag == "cat_view":
        _, catalog, key, old_value, old_version = entry
        if old_value is None:
            catalog._views.pop(key, None)
        else:
            catalog._views[key] = old_value
        catalog.schema_version = old_version
    elif tag == "cat_routine":
        _, catalog, key, old_value, old_version = entry
        if old_value is None:
            catalog._routines.pop(key, None)
        else:
            catalog._routines[key] = old_value
        catalog.schema_version = old_version
    elif tag == "cat_schema":
        _, catalog, old_version = entry
        catalog.schema_version = old_version
    elif tag == "reg":
        # temporal registry add/remove.  The registry version is bumped,
        # not restored: its transform-cache keys have no per-entry
        # version gate, so a restored counter could alias an entry built
        # over a different registration set.
        _, registry, key, old_info = entry
        if old_info is None:
            registry._tables.pop(key, None)
        else:
            registry._tables[key] = old_info
        registry.version += 1
    else:  # pragma: no cover - exhaustive over logged tags
        raise AssertionError(f"unknown undo entry {tag!r}")


class TransactionManager:
    """The database's undo log, mark stack, and explicit-transaction state.

    ``logging`` is maintained as a plain attribute (true while a mark is
    open or an explicit transaction is in progress) so the storage
    primitives pay two attribute loads, not a property call, per
    mutation.
    """

    def __init__(self, db, name: str = "main") -> None:
        self.db = db
        self.name = name
        self.log: list[tuple] = []
        self.marks: list[_Mark] = []
        self.explicit = False
        self.logging = False
        self.fault_plan: Optional[FaultPlan] = None
        # MVCC (repro.sqlengine.mvcc): the shared manager, this
        # transaction's pinned snapshot csn (None between autocommit
        # statements), and the set of tables it holds write claims on.
        # The storage primitives consult `mvcc.multi` per mutation; both
        # fields stay empty while a single session is registered.
        self.mvcc = db.mvcc
        self.snapshot: Optional[int] = None
        self.write_set: set = set()
        # redo side: the DurabilityManager, attached by
        # Database.attach_durability (None = durability disabled; the
        # storage primitives' only added cost is this attribute load).
        # `redo` is this transaction's own buffer of encoded records —
        # the manager's `buffer` property delegates to the *active*
        # session's list, so concurrent sessions never interleave
        # uncommitted redo (their claimed table sets are disjoint).
        self.wal = None
        self.redo: list = []
        # callbacks run after any rollback that applied undo entries;
        # the stratum registers one to purge transform-cache entries
        # stored during the rolled-back window
        self.rollback_hooks: list[Callable[[], None]] = []
        # high-water mark of undo-log depth, mirrored into the metrics
        # registry only when it moves (the int compare keeps mark() hot)
        self._undo_high_water = 0

    # -- marks (internal savepoints) ------------------------------------

    def mark(self, name: Optional[str] = None) -> _Mark:
        depth = len(self.log)
        if depth > self._undo_high_water:
            self._undo_high_water = depth
            self.db.obs.set_gauge("txn.undo_depth_high_water", depth)
        mark = _Mark(name, depth, len(self.redo) if self.wal is not None else 0)
        self.marks.append(mark)
        self.logging = True
        return mark

    def release(self, mark: _Mark) -> None:
        """Discard ``mark`` (and anything nested inside it), keeping effects."""
        while self.marks:
            top = self.marks.pop()
            if top is mark:
                break
        if not self.marks:
            self.logging = self.explicit
            if not self.explicit:
                self.log.clear()
                # autocommit commit point: the statement's buffered redo
                # records become one durable transaction
                if self.wal is not None:
                    self.wal.commit_buffered()
                if self.write_set:
                    self.mvcc.release_writes(self, committed=True)

    def rollback_to(self, mark: _Mark, keep: bool = False) -> None:
        """Undo every entry logged since ``mark``.

        Marks nested inside it are destroyed; ``keep`` leaves the mark
        itself on the stack (``ROLLBACK TO SAVEPOINT`` semantics).
        """
        while self.marks and self.marks[-1] is not mark:
            self.marks.pop()
        self._undo_to(mark.index)
        if self.wal is not None:
            self.wal.truncate_buffer(mark.redo_index)
        if not keep and self.marks and self.marks[-1] is mark:
            self.marks.pop()
        if not self.marks:
            self.logging = self.explicit
            if not self.explicit:
                self.log.clear()
                # autocommit abort point: the undo log has restored the
                # claimed tables, so the claims can be released without
                # installing a new version
                if self.write_set:
                    self.mvcc.release_writes(self, committed=False)

    def _undo_to(self, index: int) -> None:
        if len(self.log) <= index:
            return
        log = self.log
        while len(log) > index:
            _apply_undo(log.pop())
        self._after_rollback()

    def _after_rollback(self) -> None:
        """Evict cache entries created during the rolled-back window.

        The plan cache keys on the catalog schema version, which rollback
        just restored — entries bound at a higher version would falsely
        revalidate once DDL pushes the counter back up.
        """
        db = self.db
        db.stats.rollbacks += 1
        db.plan_cache.evict_newer(db.catalog.schema_version)
        # the constant-period materialization cache keys on table version
        # counters that rollback just restored; entries recorded during
        # the rolled-back window would falsely revalidate once the
        # counters climb back up over different rows
        db.cp_cache.clear()
        for hook in self.rollback_hooks:
            hook()

    # -- explicit transactions ------------------------------------------

    def begin(self) -> None:
        if self.explicit:
            raise ExecutionError("a transaction is already in progress")
        self.explicit = True
        self.logging = True
        # pin the snapshot every read in this transaction resolves
        # through (repeatable reads); a server session may have pinned
        # already, at the moment the BEGIN statement arrived
        if self.snapshot is None:
            self.mvcc.pin(self)

    def commit(self) -> None:
        if not self.explicit:
            raise ExecutionError("COMMIT: no transaction in progress")
        if self.wal is not None:
            # the whole transaction becomes one durable WAL transaction:
            # one write, one fsync (group commit)
            self.wal.commit_buffered()
        self.explicit = False
        self.marks.clear()
        self.log.clear()
        self.logging = False
        if self.write_set:
            self.mvcc.release_writes(self, committed=True)
        self.mvcc.unpin(self)

    def rollback(self) -> None:
        if not self.explicit:
            raise ExecutionError("ROLLBACK: no transaction in progress")
        if self.wal is not None:
            # nothing from an aborted transaction ever reaches the WAL
            self.wal.truncate_buffer(0)
        self.marks.clear()
        self._undo_to(0)
        self.explicit = False
        self.log.clear()
        self.logging = False
        if self.write_set:
            self.mvcc.release_writes(self, committed=False)
        self.mvcc.unpin(self)

    def savepoint(self, name: str) -> None:
        if not self.explicit:
            raise ExecutionError("SAVEPOINT requires an active transaction")
        self.mark(name.lower())

    def rollback_to_savepoint(self, name: str) -> None:
        self.rollback_to(self._find_savepoint(name), keep=True)

    def release_savepoint(self, name: str) -> None:
        self.release(self._find_savepoint(name))

    def _find_savepoint(self, name: str) -> _Mark:
        key = name.lower()
        for mark in reversed(self.marks):
            if mark.name == key:
                return mark
        raise ExecutionError(f"no such savepoint: {name}")

    # -- statement dispatch ---------------------------------------------

    def execute_statement(self, stmt) -> None:
        """Execute a parsed :class:`~repro.sqlengine.ast_nodes.TransactionStatement`."""
        action = stmt.action
        if action == "BEGIN":
            self.begin()
        elif action == "COMMIT":
            self.commit()
        elif action == "ROLLBACK":
            self.rollback()
        elif action == "SAVEPOINT":
            self.savepoint(stmt.name)
        elif action == "ROLLBACK TO SAVEPOINT":
            self.rollback_to_savepoint(stmt.name)
        elif action == "RELEASE SAVEPOINT":
            self.release_savepoint(stmt.name)
        else:  # pragma: no cover - parser emits only the above
            raise ExecutionError(f"unknown transaction action {action!r}")
        return None

    # -- MVCC claims -----------------------------------------------------

    def claim_write(self, table) -> None:
        """Claim ``table`` before a read-then-mutate flow scans it.

        The storage primitives claim on first mutation, but paths that
        scan the target rows *before* mutating (temporal currency
        rewrites, transaction-time maintenance, sequenced modifications)
        claim up front so the scan itself runs against a state this
        transaction is entitled to modify."""
        self.mvcc.claim(self, table)

    # -- statement guard -------------------------------------------------

    def run_atomic(self, thunk: Callable[[], Any]) -> Any:
        """Run ``thunk`` under a fresh mark: release on success, roll
        back on any exception (including non-SQL errors)."""
        token = self.mark()
        try:
            result = thunk()
        except BaseException:
            self.rollback_to(token)
            raise
        self.release(token)
        return result
