"""Logical plans: the bind phase for whole statements.

``build_select_plan`` turns an ``ast.Select`` into a tree of source
nodes (scan → join → filter → group → project → order) whose predicates
and projections are pre-compiled closures from
:mod:`repro.sqlengine.exprcompile`.  ``SelectPlan.run`` then mirrors the
interpreted ``Executor._select_no_order`` / ``_grouped_select`` step for
step — same rows, same ordering, same errors — while skipping all
per-row AST dispatch and name resolution.

Plans are validated, not trusted: every source node checks at run time
that the catalog object it was bound against is still current (same
table schema, same view object, same routine definition) and raises
:class:`PlanInvalidated` otherwise; the executor then falls back to the
interpreted path.  ``build_select_plan`` returns ``None`` for any
statement shape it cannot reproduce exactly, which the plan cache
remembers so the statement is not re-analyzed per execution.

Equality-predicate pushdown reuses the executor's existing probe
analysis (``_find_index_probe``) against the lazy hash indexes in
:mod:`repro.sqlengine.storage` — pruning only, never filtering, so the
full WHERE clause still runs over every candidate row.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import CatalogError, PlanInvalidated, SqlError
from repro.sqlengine.executor import (
    Binding,
    Env,
    Executor,
    ResultSet,
    _contains_aggregate,
    _distinct_rows,
    _flatten_from,
    _freeze_env,
    _FLIPPED_COMPARISON,
    _Reversed,
    _split_conjuncts,
)
from repro.sqlengine.exprcompile import (
    compile_batch_filter,
    compile_expression,
    compile_grouped,
)
from repro.sqlengine.values import Null, sort_key, truth


class _CannotPlan(Exception):
    """Internal: statement shape the planner does not handle."""


def build_select_plan(
    executor: Executor, select: ast.Select, env: Optional[Env] = None
) -> Optional["SelectPlan"]:
    """Bind ``select`` into a plan, or None if it must stay interpreted."""
    try:
        return _build_select(executor, select, env)
    except (_CannotPlan, SqlError):
        return None


def build_dml_plan(
    executor: Executor, stmt: ast.Statement, env: Optional[Env] = None
) -> Optional[Any]:
    try:
        if isinstance(stmt, ast.Insert):
            return _build_insert(executor, stmt, env)
        if isinstance(stmt, ast.Update):
            return _build_update(executor, stmt, env)
        if isinstance(stmt, ast.Delete):
            return _build_delete(executor, stmt, env)
    except (_CannotPlan, SqlError):
        return None
    return None


def _compile_or_bail(executor: Executor, expr: ast.Expression, layout: dict):
    closure = compile_expression(executor, expr, layout)
    if closure is None:
        raise _CannotPlan(type(expr).__name__)
    return closure


def _compile_grouped_or_bail(executor: Executor, expr: ast.Expression, layout: dict):
    closure = compile_grouped(executor, expr, layout)
    if closure is None:
        raise _CannotPlan(type(expr).__name__)
    return closure


# ---------------------------------------------------------------------------
# source nodes
# ---------------------------------------------------------------------------


class _Scan:
    """Base-table scan, optionally narrowed through a hash-index probe,
    an interval-index probe, and/or the vectorized batch kernels."""

    __slots__ = ("name", "alias", "key", "colmap", "expected", "conjuncts",
                 "from_items", "batch")

    def __init__(
        self,
        name: str,
        alias: str,
        colmap: dict,
        expected: dict,
        conjuncts: list,
        from_items: Optional[list],
        batch: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.alias = alias
        self.key = alias.lower()
        self.colmap = colmap
        self.expected = expected
        self.conjuncts = conjuncts
        self.from_items = from_items
        self.batch = batch

    def _table(self, executor: Executor, env: Env):
        if executor.db.catalog.has_view(self.name):
            raise PlanInvalidated(self.name)
        table = executor._read_table(self.name, env)
        if table._index != self.expected:
            raise PlanInvalidated(self.name)
        return table

    def validate(self, executor: Executor, env: Env) -> None:
        self._table(executor, env)

    def _candidates(
        self, executor: Executor, table, env: Env
    ) -> tuple[list, bool]:
        """Candidate rows plus a *fully filtered* flag.

        The flag is True only when the batch kernels ran and cover every
        WHERE conjunct, so the caller may skip the per-row predicate.
        Candidate counts feed ``engine.rows_scanned`` identically on the
        vectorized and row-at-a-time paths (pre-kernel counts).
        """
        db = executor.db
        obs = db.obs
        resilience = db.resilience
        if resilience.armed:
            # watchdog/governor checkpoint: every scan batch
            resilience.check()
        if self.conjuncts:
            probe = executor._find_index_probe(
                table, self.alias, self.conjuncts, env, self.from_items
            )
            if probe is not None:
                column_index, value = probe
                if value is Null:
                    rows = []
                else:
                    rows = table.hash_index(column_index).get(sort_key(value), [])
                obs.inc("engine.rows_scanned", len(rows))
                return rows, False
            # batch kernels only run when they cover *every* conjunct:
            # a partial batch could drop a row before another conjunct
            # gets the chance to raise the error the interpreted path
            # would have raised on it
            batch = self.batch
            if batch is not None and not (
                batch.consumes_all and db.vectorized_filtering_enabled
            ):
                batch = None
            if batch is not None and not resilience.allow_columnar(table):
                # governor degradation: under resident-bytes pressure,
                # stream row-at-a-time instead of building a columnar
                # image (counted; visible in EXPLAIN ANALYZE)
                batch = None
            interval = executor._find_interval_probe(
                table, self.alias, self.conjuncts, env, self.from_items
            )
            if interval is not None:
                positions = executor._interval_candidate_positions(table, interval)
                obs.inc("engine.rows_scanned", len(positions))
                table_rows = table.rows
                if batch is not None:
                    selected = batch.apply(table, positions, env)
                    if selected is not None:
                        obs.inc("engine.vectorized_batches")
                        pruned = len(positions) - len(selected)
                        if pruned:
                            obs.inc("engine.vectorized_rows_pruned", pruned)
                        return [table_rows[p] for p in selected], True
                return [table_rows[p] for p in positions], False
            obs.inc("engine.rows_scanned", len(table.rows))
            if batch is not None:
                selected = batch.apply(table, range(len(table.rows)), env)
                if selected is not None:
                    obs.inc("engine.vectorized_batches")
                    pruned = len(table.rows) - len(selected)
                    if pruned:
                        obs.inc("engine.vectorized_rows_pruned", pruned)
                    table_rows = table.rows
                    return [table_rows[p] for p in selected], True
            return table.rows, False
        obs.inc("engine.rows_scanned", len(table.rows))
        return table.rows, False

    def bind(self, executor: Executor, env: Env) -> Iterator[Env]:
        table = self._table(executor, env)
        rows, _ = self._candidates(executor, table, env)
        key = self.key
        colmap = self.colmap
        bindings = env.bindings
        for row in rows:
            bindings[key] = Binding(colmap, row)
            yield env
        bindings.pop(key, None)

    def materialize(self, executor: Executor, env: Env) -> list:
        return list(self._table(executor, env).rows)


class _IntervalScan(_Scan):
    """A scan whose conjuncts statically bound a declared (begin, end)
    interval pair at build time.

    Execution is identical to :class:`_Scan` — probing happens at bind
    time either way, so a plan stays correct when pairs are declared (or
    the ablation switch flips) after it was compiled.  The subclass
    exists so EXPLAIN can render the access path as ``IntervalIndexScan``.
    """

    __slots__ = ("pair",)

    def __init__(self, *args, pair: tuple) -> None:
        super().__init__(*args)
        self.pair = pair


class TemporalAlign:
    """SEQ-SET plan node: one FROM table's rows aligned onto the
    constant-period grid in a single pass (interval-index overlap probe
    against the temporal context, vectorized single-table filters, then
    a bisect of each row's period onto the sorted period begins).

    Execution lives in :mod:`repro.temporal.seqset`; the node exists at
    the planner layer so EXPLAIN renders the access path alongside the
    engine's scan nodes.
    """

    __slots__ = ("name", "alias", "pair", "kernel_count", "temporal")

    def __init__(
        self,
        name: str,
        alias: str,
        pair: "tuple | None",
        kernel_count: int,
        temporal: bool,
    ) -> None:
        self.name = name
        self.alias = alias
        self.pair = pair
        self.kernel_count = kernel_count
        self.temporal = temporal


class IntervalJoin:
    """SEQ-SET plan node: period-major nested-loop join of aligned
    inputs (FROM order, candidate positions ascending — MAX's emission
    order), with one compiled residual predicate per combination."""

    __slots__ = ("inputs", "residual_conjuncts", "distinct")

    def __init__(
        self,
        inputs: list,
        residual_conjuncts: int,
        distinct: bool,
    ) -> None:
        self.inputs = inputs
        self.residual_conjuncts = residual_conjuncts
        self.distinct = distinct


def _static_interval_pair(
    executor: Executor,
    table,
    alias: str,
    conjuncts: list,
    from_items: Optional[list],
) -> Optional[tuple]:
    """The declared pair the conjuncts bound on both sides, if any.

    Shape-only analysis (no evaluation): the begin column needs an upper
    bound and the end column a lower bound, each against a literal or a
    name — mirroring what `_find_interval_probe` will accept at bind
    time with values in hand.
    """
    for begin_column, end_column in table.interval_pairs:
        if _static_bound_exists(
            executor, table, alias, begin_column, conjuncts, from_items, upper=True
        ) and _static_bound_exists(
            executor, table, alias, end_column, conjuncts, from_items, upper=False
        ):
            return begin_column, end_column
    return None


def _static_bound_exists(
    executor: Executor,
    table,
    alias: str,
    column: str,
    conjuncts: list,
    from_items: Optional[list],
    upper: bool,
) -> bool:
    target = table.column_index(column)
    wanted = ("<", "<=") if upper else (">", ">=")
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        op = conjunct.op
        if op not in ("<", "<=", ">", ">="):
            continue
        for lhs, rhs, normalized in (
            (conjunct.left, conjunct.right, op),
            (conjunct.right, conjunct.left, _FLIPPED_COMPARISON[op]),
        ):
            if normalized not in wanted:
                continue
            if not isinstance(rhs, (ast.Literal, ast.Name)):
                continue
            if executor._column_of(lhs, table, alias, from_items) == target:
                return True
    return False


class _View:
    __slots__ = ("name", "key", "colmap", "expected", "view_ast")

    def __init__(
        self, name: str, alias: str, columns: list, view_ast: ast.Select
    ) -> None:
        self.name = name
        self.key = alias.lower()
        self.colmap = {name.lower(): i for i, name in enumerate(columns)}
        self.expected = [name.lower() for name in columns]
        self.view_ast = view_ast

    def validate(self, executor: Executor, env: Env) -> None:
        if executor.db.catalog.get_view(self.name) is not self.view_ast:
            raise PlanInvalidated(self.name)

    def _rows(self, executor: Executor, env: Env) -> list:
        self.validate(executor, env)
        result = executor.execute_select(self.view_ast, Env(frame=env.frame))
        if [c.lower() for c in result.columns] != self.expected:
            raise PlanInvalidated(self.name)
        return result.rows

    def bind(self, executor: Executor, env: Env) -> Iterator[Env]:
        rows = self._rows(executor, env)
        key = self.key
        colmap = self.colmap
        bindings = env.bindings
        for row in rows:
            bindings[key] = Binding(colmap, row)
            yield env
        bindings.pop(key, None)

    def materialize(self, executor: Executor, env: Env) -> list:
        return list(self._rows(executor, env))


class _Subquery:
    __slots__ = ("key", "colmap", "expected", "select_ast")

    def __init__(self, alias: str, columns: list, select_ast: ast.Select) -> None:
        self.key = alias.lower()
        self.colmap = {name.lower(): i for i, name in enumerate(columns)}
        self.expected = [name.lower() for name in columns]
        self.select_ast = select_ast

    def validate(self, executor: Executor, env: Env) -> None:
        pass

    def _rows(self, executor: Executor, env: Env) -> list:
        result = executor.execute_select(self.select_ast, env)
        if [c.lower() for c in result.columns] != self.expected:
            raise PlanInvalidated(self.key)
        return result.rows

    def bind(self, executor: Executor, env: Env) -> Iterator[Env]:
        rows = self._rows(executor, env)
        key = self.key
        colmap = self.colmap
        bindings = env.bindings
        for row in rows:
            bindings[key] = Binding(colmap, row)
            yield env
        bindings.pop(key, None)

    def materialize(self, executor: Executor, env: Env) -> list:
        return list(self._rows(executor, env))


class _TableFunc:
    __slots__ = ("name", "key", "colmap", "expected", "definition", "arg_cs")

    def __init__(
        self,
        name: str,
        alias: str,
        columns: list,
        definition: Any,
        arg_cs: list,
    ) -> None:
        self.name = name
        self.key = alias.lower()
        self.colmap = {name.lower(): i for i, name in enumerate(columns)}
        self.expected = [name.lower() for name in columns]
        self.definition = definition
        self.arg_cs = arg_cs

    def validate(self, executor: Executor, env: Env) -> None:
        try:
            routine = executor.db.catalog.get_routine(self.name)
        except CatalogError:
            raise PlanInvalidated(self.name) from None
        if routine.definition is not self.definition:
            raise PlanInvalidated(self.name)

    def _rows_cols(self, executor: Executor, env: Env) -> tuple[list, list]:
        from repro.sqlengine.routines import RoutineInterpreter

        self.validate(executor, env)
        db = executor.db
        args = [c(env) for c in self.arg_cs]
        if not db.memoize_table_functions:
            columns, rows = RoutineInterpreter(executor).invoke_table_function(
                self.name, args
            )
        else:
            cache_key = (self.name.lower(), tuple(sort_key(a) for a in args))
            cached = db.table_function_cache.get(cache_key)
            if cached is not None:
                columns, rows = cached
            else:
                columns, rows = RoutineInterpreter(executor).invoke_table_function(
                    self.name, args
                )
                db.table_function_cache[cache_key] = (columns, rows)
        if [c.lower() for c in columns] != self.expected:
            raise PlanInvalidated(self.name)
        return columns, rows

    def bind(self, executor: Executor, env: Env) -> Iterator[Env]:
        _, rows = self._rows_cols(executor, env)
        key = self.key
        colmap = self.colmap
        bindings = env.bindings
        for row in rows:
            bindings[key] = Binding(colmap, row)
            yield env
        bindings.pop(key, None)

    def materialize(self, executor: Executor, env: Env) -> list:
        return list(self._rows_cols(executor, env)[1])


class _JoinNode:
    """INNER/CROSS nested-loop join (a RIGHT join is built pre-swapped)."""

    __slots__ = ("left", "right", "condition_c")

    def __init__(self, left: Any, right: Any, condition_c: Optional[Callable]) -> None:
        self.left = left
        self.right = right
        self.condition_c = condition_c

    def validate(self, executor: Executor, env: Env) -> None:
        self.left.validate(executor, env)
        self.right.validate(executor, env)

    def bind(self, executor: Executor, env: Env) -> Iterator[Env]:
        condition_c = self.condition_c
        for env2 in self.left.bind(executor, env):
            for env3 in self.right.bind(executor, env2):
                if condition_c is None or truth(condition_c(env3)):
                    yield env3


class _LeftJoinNode:
    """LEFT OUTER join: the right side materializes once per execution."""

    __slots__ = ("left", "right", "condition_c", "null_row")

    def __init__(self, left: Any, right: Any, condition_c: Optional[Callable]) -> None:
        self.left = left
        self.right = right
        self.condition_c = condition_c
        self.null_row = [Null] * len(right.colmap)

    def validate(self, executor: Executor, env: Env) -> None:
        self.left.validate(executor, env)
        self.right.validate(executor, env)

    def bind(self, executor: Executor, env: Env) -> Iterator[Env]:
        right = self.right
        rows = right.materialize(executor, env)
        key = right.key
        colmap = right.colmap
        condition_c = self.condition_c
        null_row = self.null_row
        for env2 in self.left.bind(executor, env):
            matched = False
            for row in rows:
                env2.bindings[key] = Binding(colmap, row)
                if condition_c is None or truth(condition_c(env2)):
                    matched = True
                    yield env2
            if not matched:
                env2.bindings[key] = Binding(colmap, null_row)
                yield env2
            env2.bindings.pop(key, None)


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------


def _leaf_layout_entries(node: Any, entries: list) -> None:
    if isinstance(node, (_JoinNode, _LeftJoinNode)):
        _leaf_layout_entries(node.left, entries)
        _leaf_layout_entries(node.right, entries)
    else:
        entries.append((node.key, node.colmap))


def _build_leaf(
    executor: Executor,
    source: ast.FromItem,
    env: Optional[Env],
    conjuncts: list,
    from_items: Optional[list],
) -> Any:
    catalog = executor.db.catalog
    if isinstance(source, ast.TableRef):
        view = catalog.get_view(source.name)
        if view is not None:
            columns = executor._output_columns(view, env if env is not None else Env())
            return _View(source.name, source.binding, columns, view)
        table = executor._read_table(source.name, env)
        colmap = {name.lower(): i for i, name in enumerate(table.column_names)}
        batch = (
            compile_batch_filter(
                executor, table, source.binding, conjuncts, from_items
            )
            if conjuncts
            else None
        )
        scan_args = (
            source.name,
            source.binding,
            colmap,
            dict(table._index),
            conjuncts,
            from_items,
            batch,
        )
        if conjuncts and table.interval_pairs:
            pair = _static_interval_pair(
                executor, table, source.binding, conjuncts, from_items
            )
            if pair is not None:
                return _IntervalScan(*scan_args, pair=pair)
        return _Scan(*scan_args)
    if isinstance(source, ast.SubqueryRef):
        columns = executor._output_columns(
            source.select, env if env is not None else Env()
        )
        return _Subquery(source.alias, columns, source.select)
    if isinstance(source, ast.TableFunctionRef):
        routine = catalog.get_routine(source.call.name)
        if not isinstance(routine.returns, ast.RowArrayType):
            raise _CannotPlan(source.call.name)
        columns = list(routine.returns.column_names)
        # argument closures are compiled later (they may see the layout:
        # lateral references to earlier FROM sources)
        return _TableFunc(
            source.call.name, source.alias, columns, routine.definition, []
        )
    raise _CannotPlan(type(source).__name__)


def _build_source(
    executor: Executor,
    source: ast.FromItem,
    env: Optional[Env],
    conjuncts: list,
    from_items: Optional[list],
    join_specs: list,
) -> Any:
    if isinstance(source, ast.Join):
        if source.kind == "RIGHT":
            swapped = ast.Join(
                left=source.right, right=source.left, kind="LEFT",
                condition=source.condition,
            )
            return _build_source(executor, swapped, env, [], None, join_specs)
        left = _build_source(executor, source.left, env, [], None, join_specs)
        if source.kind in ("INNER", "CROSS"):
            right = _build_source(executor, source.right, env, [], None, join_specs)
            node = _JoinNode(left, right, None)
        elif source.kind == "LEFT":
            if isinstance(source.right, ast.Join):
                raise _CannotPlan("join right operand is a join")
            right = _build_leaf(executor, source.right, env, [], None)
            node = _LeftJoinNode(left, right, None)
        else:
            raise _CannotPlan(f"join kind {source.kind}")
        if source.condition is not None:
            join_specs.append((node, source.condition))
        return node
    return _build_leaf(executor, source, env, conjuncts, from_items)


def _build_sources(
    executor: Executor, select: ast.Select, env: Optional[Env]
) -> tuple[list, dict, list]:
    conjuncts = _split_conjuncts(select.where)
    join_specs: list = []
    sources = [
        _build_source(
            executor, item, env, conjuncts, select.from_items, join_specs
        )
        for item in select.from_items
    ]
    entries: list = []
    for node in sources:
        _leaf_layout_entries(node, entries)
    layout: dict = {}
    for key, colmap in entries:
        if key in layout:
            raise _CannotPlan(f"duplicate alias {key}")
        layout[key] = colmap
    # second pass now that the full layout is known: join conditions and
    # lateral table-function arguments
    for node, condition in join_specs:
        node.condition_c = _compile_or_bail(executor, condition, layout)
    _compile_table_func_args(executor, select.from_items, sources, layout)
    return sources, layout, conjuncts


def _compile_table_func_args(
    executor: Executor, from_items: list, sources: list, layout: dict
) -> None:
    table_func_nodes: list = []

    def collect(node: Any) -> None:
        if isinstance(node, (_JoinNode, _LeftJoinNode)):
            collect(node.left)
            collect(node.right)
        elif isinstance(node, _TableFunc):
            table_func_nodes.append(node)

    for node in sources:
        collect(node)
    refs = [
        item
        for item in _flatten_from(from_items)
        if isinstance(item, ast.TableFunctionRef)
    ]
    by_key = {ref.alias.lower(): ref for ref in refs}
    for node in table_func_nodes:
        ref = by_key.get(node.key)
        if ref is None:
            raise _CannotPlan(node.key)
        node.arg_cs = [
            _compile_or_bail(executor, a, layout) for a in ref.call.args
        ]


def _build_order(
    executor: Executor,
    order_by: list,
    colmap: dict,
    layout: dict,
    grouped: bool,
) -> list:
    entries = []
    for item in order_by:
        expr = item.expr
        desc = item.descending
        if isinstance(expr, ast.Name) and expr.qualifier is None:
            index = colmap.get(expr.name.lower())
            if index is not None:
                entries.append(("slot", index, desc))
                continue
        if isinstance(expr, ast.Literal):
            # position literals are re-read per run (Literal.value is
            # mutable); the fallback closure covers non-int values
            fallback = (
                _compile_grouped_or_bail(executor, expr, layout)
                if grouped
                else _compile_or_bail(executor, expr, layout)
            )
            entries.append(("lit", expr, fallback, desc))
            continue
        closure = (
            _compile_grouped_or_bail(executor, expr, layout)
            if grouped
            else _compile_or_bail(executor, expr, layout)
        )
        entries.append(("expr", closure, desc))
    return entries


def _build_select(
    executor: Executor, select: ast.Select, env: Optional[Env]
) -> "SelectPlan":
    grouped = bool(select.group_by) or any(
        item.expr is not None and _contains_aggregate(item.expr)
        for item in select.items
    ) or (select.having is not None)
    sources, layout, _ = _build_sources(executor, select, env)
    where_c = (
        _compile_or_bail(executor, select.where, layout)
        if select.where is not None
        else None
    )
    columns = executor._output_columns(select, env if env is not None else Env())
    colmap = {name.lower(): i for i, name in enumerate(columns)}
    order_entries = _build_order(
        executor, select.order_by, colmap, layout, grouped
    )
    if grouped:
        for item in select.items:
            if item.is_star:
                raise _CannotPlan("star item in grouped select")
        group_cs = [
            _compile_or_bail(executor, g, layout) for g in select.group_by
        ]
        having_c = (
            _compile_grouped_or_bail(executor, select.having, layout)
            if select.having is not None
            else None
        )
        item_cs = [
            _compile_grouped_or_bail(executor, item.expr, layout)
            for item in select.items
        ]
        return SelectPlan(
            sources=sources,
            where_c=where_c,
            columns=columns,
            grouped=True,
            group_cs=group_cs,
            having_c=having_c,
            item_plans=item_cs,
            order_entries=order_entries,
            distinct=select.distinct,
        )
    item_plans: list = []
    for item in select.items:
        if item.is_star:
            qualifier = (
                item.star_qualifier.lower() if item.star_qualifier else None
            )
            item_plans.append(("star", qualifier))
        else:
            item_plans.append(
                ("expr", _compile_or_bail(executor, item.expr, layout))
            )
    return SelectPlan(
        sources=sources,
        where_c=where_c,
        columns=columns,
        grouped=False,
        group_cs=None,
        having_c=None,
        item_plans=item_plans,
        order_entries=order_entries,
        distinct=select.distinct,
    )


# ---------------------------------------------------------------------------
# SELECT plan
# ---------------------------------------------------------------------------


class SelectPlan:
    __slots__ = ("sources", "where_c", "columns", "grouped", "group_cs",
                 "having_c", "item_plans", "order_entries", "distinct",
                 "single_scan")

    def __init__(
        self,
        sources: list,
        where_c: Optional[Callable],
        columns: list,
        grouped: bool,
        group_cs: Optional[list],
        having_c: Optional[Callable],
        item_plans: list,
        order_entries: list,
        distinct: bool,
    ) -> None:
        self.sources = sources
        self.where_c = where_c
        self.columns = columns
        self.grouped = grouped
        self.group_cs = group_cs
        self.having_c = having_c
        self.item_plans = item_plans
        self.order_entries = order_entries
        self.distinct = distinct
        # the WHERE fast path: a lone base-table scan whose batch
        # kernels cover the whole predicate may skip `where_c` per row
        self.single_scan = (
            sources[0]
            if (
                len(sources) == 1
                and isinstance(sources[0], _Scan)
                and sources[0].batch is not None
                and sources[0].batch.consumes_all
            )
            else None
        )

    def run(self, executor: Executor, env: Optional[Env], apply_order: bool) -> ResultSet:
        base_env = env if env is not None else Env()
        # validate every source before producing (or consuming) any rows:
        # an invalidation discovered mid-run would re-execute side effects
        # on the interpreted fallback
        for node in self.sources:
            node.validate(executor, base_env)
        if self.grouped:
            return self._run_grouped(executor, base_env, apply_order)
        order = self.order_entries if (apply_order and self.order_entries) else None
        rows: list = []
        keys: list = []
        for row_env in self._filtered_envs(executor, base_env):
            row = self._project(row_env)
            rows.append(row)
            if order:
                keys.append(self._order_key(order, row, row_env))
        if order:
            paired = sorted(zip(keys, range(len(rows)), rows), key=lambda p: p[:2])
            rows = [row for _, _, row in paired]
        if self.distinct:
            rows = _distinct_rows(rows)
        return ResultSet(self.columns, rows)

    def _filtered_envs(self, executor: Executor, base_env: Env) -> Iterator[Env]:
        """Row environments with the WHERE clause already applied.

        On the vectorized fast path (one base-table scan, batch kernels
        covering every conjunct, kernels applicable at run time) the
        per-row compiled predicate is skipped entirely; every other
        shape evaluates ``where_c`` per row exactly as before.
        """
        where_c = self.where_c
        scan = self.single_scan
        if scan is not None:
            env = base_env.child()
            table = scan._table(executor, env)
            src_rows, fully = scan._candidates(executor, table, env)
            key = scan.key
            colmap = scan.colmap
            bindings = env.bindings
            if fully:
                for row in src_rows:
                    bindings[key] = Binding(colmap, row)
                    yield env
            else:
                for row in src_rows:
                    bindings[key] = Binding(colmap, row)
                    if truth(where_c(env)):
                        yield env
            bindings.pop(key, None)
            return
        for row_env in self._row_envs(executor, base_env):
            if where_c is not None and not truth(where_c(row_env)):
                continue
            yield row_env

    def _row_envs(self, executor: Executor, base_env: Env) -> Iterator[Env]:
        if not self.sources:
            yield base_env.child()
            return
        yield from self._expand(executor, 0, base_env.child())

    def _expand(self, executor: Executor, index: int, env: Env) -> Iterator[Env]:
        if index >= len(self.sources):
            yield env
            return
        for env2 in self.sources[index].bind(executor, env):
            yield from self._expand(executor, index + 1, env2)

    def _project(self, env: Env) -> list:
        values: list = []
        for plan in self.item_plans:
            if plan[0] == "star":
                qualifier = plan[1]
                for binding_alias, binding in env.bindings.items():
                    if qualifier and binding_alias != qualifier:
                        continue
                    values.extend(binding.row)
            else:
                values.append(plan[1](env))
        return values

    def _order_key(self, order: list, row: list, row_env: Env) -> tuple:
        parts = []
        for entry in order:
            kind = entry[0]
            if kind == "slot":
                value = row[entry[1]]
                desc = entry[2]
            elif kind == "lit":
                literal, fallback, desc = entry[1], entry[2], entry[3]
                position = literal.value - 1 if isinstance(literal.value, int) else -1
                if 0 <= position < len(row):
                    value = row[position]
                else:
                    value = fallback(row_env)
            else:
                value = entry[1](row_env)
                desc = entry[2]
            key = sort_key(value)
            parts.append(_Reversed(key) if desc else key)
        return tuple(parts)

    def _grouped_order_key(
        self, order: list, row: list, group: list, base_env: Env
    ) -> tuple:
        parts = []
        for entry in order:
            kind = entry[0]
            if kind == "slot":
                value = row[entry[1]]
                desc = entry[2]
            elif kind == "lit":
                literal, fallback, desc = entry[1], entry[2], entry[3]
                position = literal.value - 1 if isinstance(literal.value, int) else -1
                if 0 <= position < len(row):
                    value = row[position]
                else:
                    value = fallback(group, base_env)
            else:
                value = entry[1](group, base_env)
                desc = entry[2]
            key = sort_key(value)
            parts.append(_Reversed(key) if desc else key)
        return tuple(parts)

    def _run_grouped(
        self, executor: Executor, base_env: Env, apply_order: bool
    ) -> ResultSet:
        source_envs: list = []
        for row_env in self._filtered_envs(executor, base_env):
            source_envs.append(_freeze_env(row_env))
        groups: dict = {}
        if self.group_cs:
            for row_env in source_envs:
                key = tuple(sort_key(g(row_env)) for g in self.group_cs)
                groups.setdefault(key, []).append(row_env)
        else:
            groups[()] = source_envs
        order = self.order_entries if (apply_order and self.order_entries) else None
        having_c = self.having_c
        rows: list = []
        keys: list = []
        for group in groups.values():
            if having_c is not None and not truth(having_c(group, base_env)):
                continue
            row = [item_c(group, base_env) for item_c in self.item_plans]
            rows.append(row)
            if order:
                keys.append(self._grouped_order_key(order, row, group, base_env))
        if order:
            paired = sorted(zip(keys, range(len(rows)), rows), key=lambda p: p[:2])
            rows = [row for _, _, row in paired]
        if self.distinct:
            rows = _distinct_rows(rows)
        return ResultSet(self.columns, rows)


# ---------------------------------------------------------------------------
# DML plans
# ---------------------------------------------------------------------------


def _table_colmap(executor: Executor, name: str, env: Optional[Env]) -> tuple:
    table = executor._resolve_table(name, env)
    colmap = {n.lower(): i for i, n in enumerate(table.column_names)}
    return table, colmap


class InsertPlan:
    __slots__ = ("table", "expected", "columns", "value_rows", "select")

    def __init__(self, table, expected, columns, value_rows, select) -> None:
        self.table = table
        self.expected = expected
        self.columns = columns
        self.value_rows = value_rows
        self.select = select

    def run(self, executor: Executor, env: Optional[Env]) -> int:
        table = executor._resolve_table(self.table, env)
        if table._index != self.expected:
            raise PlanInvalidated(self.table)
        if self.select is not None:
            result = executor.execute_select(self.select, env)
            source_rows = result.rows
        else:
            eval_env = env if env is not None else Env()
            source_rows = [
                [c(eval_env) for c in row_cs] for row_cs in self.value_rows
            ]
        # validate every row before appending any, so a failure on row N
        # does not leave rows 1..N-1 behind
        prepared = [table.prepare_row(values, self.columns) for values in source_rows]
        for row in prepared:
            table.append_row(row)
        executor.db.stats.count_rows(len(prepared), "insert")
        return len(prepared)


def _build_insert(executor: Executor, stmt: ast.Insert, env: Optional[Env]) -> InsertPlan:
    table, _ = _table_colmap(executor, stmt.table, env)
    if stmt.select is not None:
        return InsertPlan(
            stmt.table, dict(table._index), stmt.columns, None, stmt.select
        )
    value_rows = [
        [_compile_or_bail(executor, e, {}) for e in row]
        for row in stmt.values or []
    ]
    return InsertPlan(stmt.table, dict(table._index), stmt.columns, value_rows, None)


class UpdatePlan:
    __slots__ = ("table", "expected", "key", "colmap", "where_c",
                 "assign_indexes", "assign_cs")

    def __init__(
        self, table, expected, key, colmap, where_c, assign_indexes, assign_cs
    ) -> None:
        self.table = table
        self.expected = expected
        self.key = key
        self.colmap = colmap
        self.where_c = where_c
        self.assign_indexes = assign_indexes
        self.assign_cs = assign_cs

    def run(self, executor: Executor, env: Optional[Env]) -> int:
        table = executor._resolve_table(self.table, env)
        if table._index != self.expected:
            raise PlanInvalidated(self.table)
        eval_env = Env(parent=env)
        key = self.key
        colmap = self.colmap
        where_c = self.where_c

        def predicate(row: list) -> bool:
            eval_env.bindings[key] = Binding(colmap, row)
            return where_c is None or truth(where_c(eval_env))

        def updater(row: list) -> dict:
            eval_env.bindings[key] = Binding(colmap, row)
            return {
                index: c(eval_env)
                for index, c in zip(self.assign_indexes, self.assign_cs)
            }

        count = table.update_where(predicate, updater)
        executor.db.stats.count_rows(count, "update")
        return count


def _build_update(executor: Executor, stmt: ast.Update, env: Optional[Env]) -> UpdatePlan:
    table, colmap = _table_colmap(executor, stmt.table, env)
    alias = stmt.alias or stmt.table
    layout = {alias.lower(): colmap}
    where_c = (
        _compile_or_bail(executor, stmt.where, layout)
        if stmt.where is not None
        else None
    )
    assign_indexes = [table.column_index(c) for c, _ in stmt.assignments]
    assign_cs = [
        _compile_or_bail(executor, e, layout) for _, e in stmt.assignments
    ]
    return UpdatePlan(
        stmt.table, dict(table._index), alias.lower(), colmap, where_c,
        assign_indexes, assign_cs,
    )


class DeletePlan:
    __slots__ = ("table", "expected", "key", "colmap", "where_c")

    def __init__(self, table, expected, key, colmap, where_c) -> None:
        self.table = table
        self.expected = expected
        self.key = key
        self.colmap = colmap
        self.where_c = where_c

    def run(self, executor: Executor, env: Optional[Env]) -> int:
        table = executor._resolve_table(self.table, env)
        if table._index != self.expected:
            raise PlanInvalidated(self.table)
        eval_env = Env(parent=env)
        key = self.key
        colmap = self.colmap
        where_c = self.where_c

        def predicate(row: list) -> bool:
            eval_env.bindings[key] = Binding(colmap, row)
            return where_c is None or truth(where_c(eval_env))

        count = table.delete_where(predicate)
        executor.db.stats.count_rows(count, "delete")
        return count


def _build_delete(executor: Executor, stmt: ast.Delete, env: Optional[Env]) -> DeletePlan:
    table, colmap = _table_colmap(executor, stmt.table, env)
    alias = stmt.alias or stmt.table
    layout = {alias.lower(): colmap}
    where_c = (
        _compile_or_bail(executor, stmt.where, layout)
        if stmt.where is not None
        else None
    )
    return DeletePlan(
        stmt.table, dict(table._index), alias.lower(), colmap, where_c
    )
