"""Token definitions for the SQL/PSM lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENT = auto()
    STRING = auto()
    NUMBER = auto()
    OPERATOR = auto()
    PUNCT = auto()
    EOF = auto()


# Reserved words recognised by the parser.  SQL identifiers matching one
# of these (case-insensitively) lex as KEYWORD; everything else is IDENT.
KEYWORDS = frozenset(
    {
        # query
        "SELECT", "DISTINCT", "ALL", "FROM", "WHERE", "GROUP", "BY",
        "HAVING", "ORDER", "ASC", "DESC", "UNION", "EXCEPT", "INTERSECT",
        "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER",
        "CROSS", "LIMIT", "OFFSET",
        # predicates / expressions
        "AND", "OR", "NOT", "NULL", "IS", "IN", "EXISTS", "BETWEEN",
        "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "TRUE",
        "FALSE", "UNKNOWN", "SOME", "ANY",
        # DML
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        # DDL
        "CREATE", "DROP", "TABLE", "VIEW", "TEMPORARY", "PRIMARY", "KEY",
        "INDEX", "ALTER", "ADD",
        # types
        "INTEGER", "INT", "SMALLINT", "BIGINT", "DECIMAL", "NUMERIC",
        "FLOAT", "REAL", "DOUBLE", "PRECISION", "CHAR", "CHARACTER",
        "VARCHAR", "VARYING", "DATE", "BOOLEAN", "ROW", "ARRAY",
        # PSM
        "FUNCTION", "PROCEDURE", "RETURNS", "RETURN", "BEGIN", "DECLARE",
        "IF", "ELSEIF", "WHILE", "DO", "REPEAT", "UNTIL", "FOR", "LOOP",
        "LEAVE", "ITERATE", "CALL", "CURSOR", "OPEN", "FETCH", "CLOSE",
        "LANGUAGE", "SQL", "READS", "MODIFIES", "CONTAINS", "DATA",
        "DETERMINISTIC", "HANDLER", "CONTINUE", "EXIT", "FOUND", "SQLSTATE",
        "CONDITION", "OUT", "INOUT", "ATOMIC", "ELSE", "SIGNAL",
        # transaction control ("TO" and "WORK" stay soft identifiers)
        "START", "TRANSACTION", "COMMIT", "ROLLBACK", "SAVEPOINT", "RELEASE",
        # observability
        "EXPLAIN", "ANALYZE",
        # misc
        "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP",
        # temporal (recognised by the stratum's parser extension; the
        # conventional parser treats these as ordinary identifiers unless
        # temporal parsing is enabled)
        "VALIDTIME", "NONSEQUENCED", "TRANSACTIONTIME",
    }
)

# Multi-character operators, longest first so the lexer can greedy-match.
OPERATORS = ("<>", "<=", ">=", "||", "!=", "=", "<", ">", "+", "-", "*", "/", ":")

PUNCTUATION = ("(", ")", ",", ";", ".", "[", "]")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the normalised text: upper-case for keywords, original
    spelling for identifiers and literals (string literals are stored
    without the surrounding quotes, with doubled quotes collapsed).
    """

    kind: TokenKind
    value: str
    position: int
    line: int

    def matches(self, kind: TokenKind, value: str | None = None) -> bool:
        """Return True if this token has ``kind`` (and ``value``, if given)."""
        if self.kind is not kind:
            return False
        return value is None or self.value == value

    def is_keyword(self, *words: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in words

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind.name}({self.value!r})"
