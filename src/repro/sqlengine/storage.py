"""In-memory table storage.

Rows are plain Python lists (one slot per column) so scans, inserts and
updates stay cheap; :class:`~repro.sqlengine.values.Row` objects are only
materialised at result boundaries.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.types import SqlType, coerce
from repro.sqlengine.values import Null, sort_key


class Column:
    """Column metadata."""

    __slots__ = ("name", "type", "not_null", "primary_key")

    def __init__(
        self,
        name: str,
        type_: SqlType,
        not_null: bool = False,
        primary_key: bool = False,
    ) -> None:
        self.name = name
        self.type = type_
        self.not_null = not_null or primary_key
        self.primary_key = primary_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Column({self.name}, {self.type})"


class Table:
    """A heap table: column metadata plus a list of row lists."""

    def __init__(self, name: str, columns: Sequence[Column], temporary: bool = False) -> None:
        self.name = name
        self.columns = list(columns)
        self.temporary = temporary
        self.rows: list[list[Any]] = []
        self._index: dict[str, int] = {
            column.name.lower(): i for i, column in enumerate(self.columns)
        }
        if len(self._index) != len(self.columns):
            raise CatalogError(f"duplicate column names in table {name}")
        # lazily-built hash indexes for equality lookups; invalidated by
        # bumping `version` on any mutation
        self.version = 0
        self._hash_indexes: dict[int, tuple[int, dict]] = {}

    # -- metadata -----------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column_index(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name} has no column {name!r}"
            ) from None

    def column_type(self, name: str) -> SqlType:
        return self.columns[self.column_index(name)].type

    # -- data ---------------------------------------------------------------

    def insert(self, values: Sequence[Any], columns: Optional[Sequence[str]] = None) -> None:
        """Insert one row; missing columns get NULL, values are coerced."""
        if columns is None:
            if len(values) != len(self.columns):
                raise ExecutionError(
                    f"INSERT into {self.name}: expected {len(self.columns)}"
                    f" values, got {len(values)}"
                )
            row = [
                coerce(value, column.type)
                for value, column in zip(values, self.columns)
            ]
        else:
            if len(values) != len(columns):
                raise ExecutionError(
                    f"INSERT into {self.name}: {len(columns)} columns but"
                    f" {len(values)} values"
                )
            row = [Null] * len(self.columns)
            for name, value in zip(columns, values):
                index = self.column_index(name)
                row[index] = coerce(value, self.columns[index].type)
        for column, value in zip(self.columns, row):
            if column.not_null and value is Null:
                raise ExecutionError(
                    f"NULL not allowed in {self.name}.{column.name}"
                )
        self.rows.append(row)
        self.version += 1

    def scan(self) -> Iterator[list[Any]]:
        """Iterate over rows.  Callers must not mutate yielded lists."""
        return iter(self.rows)

    def delete_where(self, predicate: Callable[[list[Any]], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count removed."""
        kept = [row for row in self.rows if not predicate(row)]
        removed = len(self.rows) - len(kept)
        self.rows = kept
        if removed:
            self.version += 1
        return removed

    def update_where(
        self,
        predicate: Callable[[list[Any]], bool],
        updater: Callable[[list[Any]], dict[int, Any]],
    ) -> int:
        """Update matching rows in place; returns the count updated.

        ``updater`` receives the *pre-update* row and returns a mapping of
        column index to new (already evaluated) value; coercion applies.
        """
        count = 0
        for row in self.rows:
            if predicate(row):
                changes = updater(row)
                for index, value in changes.items():
                    row[index] = coerce(value, self.columns[index].type)
                count += 1
        if count:
            self.version += 1
        return count

    def truncate(self) -> None:
        self.rows = []
        self.version += 1

    def hash_index(self, column_index: int) -> dict:
        """A hash index mapping sort-keyed column values to row lists.

        Built lazily and rebuilt whenever the table has been mutated
        since the last build.  NULLs are excluded (equality with NULL is
        never True).
        """
        cached = self._hash_indexes.get(column_index)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        index: dict = {}
        for row in self.rows:
            value = row[column_index]
            if value is Null:
                continue
            index.setdefault(sort_key(value), []).append(row)
        self._hash_indexes[column_index] = (self.version, index)
        return index

    def clone_empty(self, name: Optional[str] = None) -> "Table":
        """A new empty table with the same column layout."""
        return Table(
            name or self.name,
            [Column(c.name, c.type, c.not_null, c.primary_key) for c in self.columns],
            temporary=self.temporary,
        )

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name}, {len(self.rows)} rows)"
