"""In-memory table storage.

Rows are plain Python lists (one slot per column) so inserts, updates,
the undo log and WAL redo stay cheap and identity-based;
:class:`~repro.sqlengine.values.Row` objects are only materialised at
result boundaries.  For scans, a table additionally exposes a *derived*
columnar representation (:class:`ColumnStore`): typed column vectors
(stdlib ``array`` for integers, ordinals and date ordinals; lists for
strings and everything else) plus a per-column validity bitmap for
NULLs.  The store is version-cached exactly like the hash and interval
indexes — rows remain the single authoritative write surface, so txn
undo, WAL redo and recovery semantics are unchanged — and the batch
predicate kernels in :mod:`repro.sqlengine.exprcompile` evaluate WHERE
conjuncts over its column slices, returning selection vectors instead
of looping rows.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.interval_index import IntervalIndex
from repro.sqlengine.types import SqlType, coerce
from repro.sqlengine.values import Date, Null, sort_key


class Column:
    """Column metadata."""

    __slots__ = ("name", "type", "not_null", "primary_key")

    def __init__(
        self,
        name: str,
        type_: SqlType,
        not_null: bool = False,
        primary_key: bool = False,
    ) -> None:
        self.name = name
        self.type = type_
        self.not_null = not_null or primary_key
        self.primary_key = primary_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Column({self.name}, {self.type})"


def _column_kind(type_: SqlType) -> str:
    """The vector kind a declared column type maps to.

    * ``int``  — integers and booleans (booleans normalise to 0/1, the
      same normalisation :func:`repro.sqlengine.values.compare` applies);
    * ``date`` — day ordinals;
    * ``float`` — FLOAT/REAL/DOUBLE (and non-integer DECIMAL/NUMERIC,
      which the engine stores as Python floats);
    * ``str``  — character types, stored right-stripped because
      ``compare`` strips both sides;
    * ``obj``  — anything else: raw values, never batch-evaluated.
    """
    if type_.is_integer or type_.is_boolean:
        return "int"
    if type_.is_date:
        return "date"
    if type_.name in ("FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC"):
        return "float"
    if type_.is_character:
        return "str"
    return "obj"


class ColumnVector:
    """One column of a :class:`ColumnStore`.

    ``data`` is an ``array('q')`` of ints/ordinals, an ``array('d')`` of
    floats, or a list (strings / raw objects); ``valid`` is a bytearray
    validity bitmap (1 = non-NULL).  Slots holding NULL carry a dummy
    value in ``data`` and must never be read without consulting
    ``valid``.  A value that does not fit the declared kind degrades the
    whole vector to ``obj`` (batch kernels then fall back to rows).
    """

    __slots__ = ("kind", "data", "valid", "nulls")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        if kind == "int" or kind == "date":
            self.data: Any = array("q")
        elif kind == "float":
            self.data = array("d")
        else:
            self.data = []
        self.valid = bytearray()
        # NULL count: kernels skip the validity bitmap entirely when 0
        self.nulls = 0

    def append(self, value: Any) -> None:
        kind = self.kind
        if value is Null:
            self.valid.append(0)
            self.nulls += 1
            self.data.append(0 if kind in ("int", "date", "float") else None)
            return
        if kind == "int" and isinstance(value, int):
            try:
                # bool is an int subclass; int() normalises it like compare
                self.data.append(int(value))
            except OverflowError:  # beyond 64-bit: keep the raw object
                self._degrade()
                self.data.append(value)
        elif kind == "date" and isinstance(value, Date):
            self.data.append(value.ordinal)
        elif kind == "float" and isinstance(value, (int, float)):
            self.data.append(float(value))
        elif kind == "str" and isinstance(value, str):
            self.data.append(value.rstrip())
        elif kind == "obj":
            self.data.append(value)
        else:
            # a value outside the declared kind: demote to raw objects
            self._degrade()
            self.data.append(value)
        self.valid.append(1)

    def _degrade(self) -> None:
        """Demote to an ``obj`` vector, keeping positions aligned."""
        raw = list(self.data)
        self.kind = "obj"
        self.data = raw

    def bytes_resident(self) -> int:
        """Estimated resident bytes of this vector (data + validity)."""
        data = self.data
        if isinstance(data, array):
            payload = len(data) * data.itemsize
        else:
            payload = 0
            for value in data:
                if isinstance(value, str):
                    payload += 49 + len(value)  # CPython str header + chars
                else:
                    payload += 32  # pointer + small-object estimate
        return payload + len(self.valid)


class ColumnStore:
    """The derived columnar image of a table's rows.

    Built from the authoritative row list and cached against
    ``table.version`` (see :meth:`Table.column_store`); appends are
    mirrored incrementally, every other mutation invalidates.
    """

    __slots__ = ("vectors", "row_count")

    def __init__(self, columns: Sequence[Column], rows: list[list[Any]]) -> None:
        self.vectors = [ColumnVector(_column_kind(c.type)) for c in columns]
        self.row_count = 0
        for row in rows:
            self.append(row)

    def append(self, row: list[Any]) -> None:
        for vector, value in zip(self.vectors, row):
            vector.append(value)
        self.row_count += 1

    def bytes_resident(self) -> int:
        return sum(vector.bytes_resident() for vector in self.vectors)


class Table:
    """A heap table: column metadata plus a list of row lists.

    Every mutating primitive consults ``txn`` (the owning database's
    :class:`~repro.sqlengine.txn.TransactionManager`, attached when the
    table is registered in a catalog): while logging is active it
    records an inverse operation, and an armed fault plan may abort the
    primitive *before* it mutates anything.  Unregistered tables
    (routine variable tables, result scratch) carry ``txn = None`` and
    pay nothing.
    """

    # default for tables never registered in a catalog
    txn = None

    def __init__(self, name: str, columns: Sequence[Column], temporary: bool = False) -> None:
        self.name = name
        self.columns = list(columns)
        self.temporary = temporary
        self.rows: list[list[Any]] = []
        self._index: dict[str, int] = {
            column.name.lower(): i for i, column in enumerate(self.columns)
        }
        if len(self._index) != len(self.columns):
            raise CatalogError(f"duplicate column names in table {name}")
        # lazily-built hash indexes for equality lookups; invalidated by
        # bumping `version` on any mutation
        self.version = 0
        self._hash_indexes: dict[int, tuple[int, dict]] = {}
        # declared (begin, end) period column pairs plus the lazily-built
        # interval indexes and change-point sets over them, all version-
        # invalidated like the hash indexes
        self.interval_pairs: list[tuple[str, str]] = []
        self._interval_indexes: dict[tuple[int, int], tuple[int, IntervalIndex]] = {}
        self._change_points: dict[tuple[int, int], tuple[int, frozenset[int]]] = {}
        # derived columnar image: (built_version, store) — same version
        # discipline as the hash indexes, plus an incremental fast path
        # in append_row (the dominant mutation)
        self._column_store: Optional[tuple[int, ColumnStore]] = None
        # MVCC (see repro.sqlengine.mvcc): the in-flight transaction
        # holding this table's write claim, the csn of the last commit
        # that touched it, the committed pre-images serving pinned
        # snapshots, and the read-only Table views resolved from them.
        # All stay empty while a single session is registered.
        self.writer = None
        self.last_committed_csn = 0
        self.version_chain: list[tuple] = []
        self._snapshot_views: dict[int, "Table"] = {}

    # -- metadata -----------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column_index(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name} has no column {name!r}"
            ) from None

    def column_type(self, name: str) -> SqlType:
        return self.columns[self.column_index(name)].type

    # -- data ---------------------------------------------------------------

    def prepare_row(
        self, values: Sequence[Any], columns: Optional[Sequence[str]] = None
    ) -> list[Any]:
        """Coerce and validate one row without storing it.

        Multi-row INSERT prepares every row through this before
        appending any, so a NOT NULL or coercion failure on row N
        cannot leave rows 1..N-1 behind.
        """
        if columns is None:
            if len(values) != len(self.columns):
                raise ExecutionError(
                    f"INSERT into {self.name}: expected {len(self.columns)}"
                    f" values, got {len(values)}"
                )
            row = [
                coerce(value, column.type)
                for value, column in zip(values, self.columns)
            ]
        else:
            if len(values) != len(columns):
                raise ExecutionError(
                    f"INSERT into {self.name}: {len(columns)} columns but"
                    f" {len(values)} values"
                )
            row = [Null] * len(self.columns)
            for name, value in zip(columns, values):
                index = self.column_index(name)
                row[index] = coerce(value, self.columns[index].type)
        for column, value in zip(self.columns, row):
            if column.not_null and value is Null:
                raise ExecutionError(
                    f"NULL not allowed in {self.name}.{column.name}"
                )
        return row

    def append_row(self, row: list[Any]) -> None:
        """Append a prepared row (see :meth:`prepare_row`); logs undo."""
        txn = self.txn
        if txn is not None:
            if txn.mvcc.multi:
                txn.mvcc.claim(txn, self)
            if txn.fault_plan is not None:
                txn.fault_plan.hit("table.insert", self.name)
            if txn.logging:
                txn.log.append(("ins", self, self.version))
            if txn.wal is not None and not self.temporary:
                txn.wal.record_insert(self.name, row)
        self.rows.append(row)
        self.version += 1
        cached = self._column_store
        if cached is not None:
            built, store = cached
            if built == self.version - 1 and store.row_count == len(self.rows) - 1:
                # the only mutation between the two versions is this
                # append: mirror it instead of rebuilding the store
                store.append(row)
                self._column_store = (self.version, store)

    def insert(self, values: Sequence[Any], columns: Optional[Sequence[str]] = None) -> None:
        """Insert one row; missing columns get NULL, values are coerced."""
        self.append_row(self.prepare_row(values, columns))

    def scan(self) -> Iterator[list[Any]]:
        """Iterate over rows.  Callers must not mutate yielded lists."""
        return iter(self.rows)

    def delete_where(self, predicate: Callable[[list[Any]], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count removed."""
        txn = self.txn
        if txn is not None:
            if txn.mvcc.multi:
                txn.mvcc.claim(txn, self)
            if txn.fault_plan is not None:
                txn.fault_plan.hit("table.delete", self.name)
        old_rows = self.rows
        wal = txn.wal if txn is not None and not self.temporary else None
        if wal is not None:
            # one pass that also collects positions for the redo record
            kept, doomed = [], []
            for position, row in enumerate(old_rows):
                if predicate(row):
                    doomed.append(position)
                else:
                    kept.append(row)
        else:
            kept = [row for row in old_rows if not predicate(row)]
        removed = len(old_rows) - len(kept)
        if removed:
            if txn is not None and txn.logging:
                # the displaced list object is the inverse
                txn.log.append(("rows", self, self.version, old_rows))
            if wal is not None:
                wal.record_delete(self.name, doomed)
            self.rows = kept
            self.version += 1
        return removed

    def update_where(
        self,
        predicate: Callable[[list[Any]], bool],
        updater: Callable[[list[Any]], dict[int, Any]],
    ) -> int:
        """Update matching rows in place; returns the count updated.

        ``updater`` receives the *pre-update* row and returns a mapping
        of column index to new (already evaluated) value; coercion
        applies.  All of a row's new values are coerced before any is
        written, so a coercion failure leaves the row untouched.
        """
        txn = self.txn
        if txn is not None:
            if txn.mvcc.multi:
                txn.mvcc.claim(txn, self)
            if txn.fault_plan is not None:
                txn.fault_plan.hit("table.update", self.name)
        log = txn.log if txn is not None and txn.logging else None
        wal = txn.wal if txn is not None and not self.temporary else None
        count = 0
        for position, row in enumerate(self.rows):
            if predicate(row):
                staged = [
                    (index, coerce(value, self.columns[index].type))
                    for index, value in updater(row).items()
                ]
                if log is not None:
                    log.append((
                        "upd", self, self.version, row,
                        [(index, row[index]) for index, _ in staged],
                    ))
                if wal is not None:
                    wal.record_update(self.name, position, staged)
                for index, value in staged:
                    row[index] = value
                count += 1
        if count:
            self.version += 1
        return count

    def set_cell(self, row: list[Any], index: int, value: Any) -> None:
        """Overwrite one cell of a live row (temporal current semantics)."""
        txn = self.txn
        if txn is not None:
            if txn.mvcc.multi:
                txn.mvcc.claim(txn, self)
            if txn.fault_plan is not None:
                txn.fault_plan.hit("table.set_cell", self.name)
            if txn.logging:
                txn.log.append(("cell", self, self.version, row, index, row[index]))
            if txn.wal is not None and not self.temporary:
                txn.wal.record_cell(self.name, self._row_position(row), index, value)
        row[index] = value
        self.version += 1

    def write_row(self, row: list[Any], values: Sequence[Any]) -> None:
        """Overwrite a live row wholesale (already evaluated values)."""
        txn = self.txn
        if txn is not None:
            if txn.mvcc.multi:
                txn.mvcc.claim(txn, self)
            if txn.fault_plan is not None:
                txn.fault_plan.hit("table.update", self.name)
            if txn.logging:
                txn.log.append((
                    "upd", self, self.version, row, list(enumerate(row)),
                ))
            if txn.wal is not None and not self.temporary:
                txn.wal.record_write_row(
                    self.name, self._row_position(row), list(values)
                )
        row[:] = values
        self.version += 1

    def replace_rows(self, new_rows: list[list[Any]]) -> None:
        """Swap in a rebuilt row list (bulk delete / reorder)."""
        txn = self.txn
        if txn is not None:
            if txn.mvcc.multi:
                txn.mvcc.claim(txn, self)
            if txn.fault_plan is not None:
                txn.fault_plan.hit("table.replace_rows", self.name)
            if txn.logging:
                txn.log.append(("rows", self, self.version, self.rows))
            if txn.wal is not None and not self.temporary:
                txn.wal.record_set_rows(self.name, new_rows)
        self.rows = new_rows
        self.version += 1

    def truncate(self) -> None:
        txn = self.txn
        if txn is not None:
            if txn.mvcc.multi:
                txn.mvcc.claim(txn, self)
            if txn.fault_plan is not None:
                txn.fault_plan.hit("table.truncate", self.name)
            if txn.logging and self.rows:
                txn.log.append(("rows", self, self.version, self.rows))
            if txn.wal is not None and not self.temporary:
                txn.wal.record_set_rows(self.name, [])
        self.rows = []
        self.version += 1

    def add_column(self, column: Column, default: Any = Null) -> None:
        """Append a column, back-filling existing rows with ``default``.

        Keeps ``_index`` and the hash-index bookkeeping consistent — the
        supported way to widen a table (the temporal stratum uses it for
        ``ADD VALIDTIME`` / ``ADD TRANSACTIONTIME`` migrations).
        """
        key = column.name.lower()
        if key in self._index:
            raise CatalogError(
                f"table {self.name} already has column {column.name!r}"
            )
        txn = self.txn
        if txn is not None:
            if txn.mvcc.multi:
                txn.mvcc.claim(txn, self)
            if txn.fault_plan is not None:
                txn.fault_plan.hit("table.add_column", self.name)
            if txn.logging:
                txn.log.append(("addcol", self, self.version, len(self.columns)))
            if txn.wal is not None and not self.temporary:
                txn.wal.record_add_column(self.name, column, default)
        self.columns.append(column)
        self._index[key] = len(self.columns) - 1
        for row in self.rows:
            row.append(default)
        self.version += 1

    def _row_position(self, row: list[Any]) -> int:
        """The position of a live row (identity, not equality) — rows can
        be duplicates by value.  Only consulted when durability is
        attached, to address the row in a redo record."""
        for position, candidate in enumerate(self.rows):
            if candidate is row:
                return position
        raise ExecutionError(
            f"row is not resident in table {self.name} (cannot log redo)"
        )

    def hash_index(self, column_index: int) -> dict:
        """A hash index mapping sort-keyed column values to row lists.

        Built lazily and rebuilt whenever the table has been mutated
        since the last build.  NULLs are excluded (equality with NULL is
        never True).
        """
        cached = self._hash_indexes.get(column_index)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        index: dict = {}
        for row in self.rows:
            value = row[column_index]
            if value is Null:
                continue
            index.setdefault(sort_key(value), []).append(row)
        self._hash_indexes[column_index] = (self.version, index)
        return index

    def column_store(self) -> ColumnStore:
        """The derived columnar image of the table (see
        :class:`ColumnStore`).  Built lazily and rebuilt whenever the
        table has been mutated since the last build; ``append_row``
        extends a current store in place instead of rebuilding."""
        cached = self._column_store
        if cached is not None and cached[0] == self.version:
            return cached[1]
        store = ColumnStore(self.columns, self.rows)
        self._column_store = (self.version, store)
        return store

    def bytes_resident(self) -> int:
        """Estimated bytes held by the columnar image of this table."""
        return self.column_store().bytes_resident()

    def declare_interval(self, begin_column: str, end_column: str) -> None:
        """Declare a ``(begin, end)`` period column pair as eligible for
        interval-index scans (idempotent).  The temporal registry calls
        this when a table gains VALIDTIME or TRANSACTIONTIME columns."""
        pair = (begin_column.lower(), end_column.lower())
        # validate both columns exist up front
        self.column_index(begin_column)
        self.column_index(end_column)
        if pair not in self.interval_pairs:
            self.interval_pairs.append(pair)

    def interval_index(self, begin_index: int, end_index: int) -> IntervalIndex:
        """The interval index over a column-index pair (see
        :mod:`repro.sqlengine.interval_index`).  Built lazily and rebuilt
        whenever the table has been mutated since the last build."""
        key = (begin_index, end_index)
        cached = self._interval_indexes.get(key)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        index = IntervalIndex(self.rows, begin_index, end_index)
        self._interval_indexes[key] = (self.version, index)
        return index

    def change_points(self, begin_index: int, end_index: int) -> frozenset[int]:
        """Every begin/end day ordinal appearing in the column pair.

        Cached against ``version`` so sequenced statements merge
        per-table sets instead of rescanning unchanged tables.  A Date
        bound counts even when the opposite bound is NULL, matching
        :func:`repro.temporal.period.collect_change_points`.
        """
        key = (begin_index, end_index)
        cached = self._change_points.get(key)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        points: set[int] = set()
        for row in self.rows:
            begin = row[begin_index]
            end = row[end_index]
            if isinstance(begin, Date):
                points.add(begin.ordinal)
            if isinstance(end, Date):
                points.add(end.ordinal)
        frozen = frozenset(points)
        self._change_points[key] = (self.version, frozen)
        return frozen

    def clone_empty(self, name: Optional[str] = None) -> "Table":
        """A new empty table with the same column layout."""
        clone = Table(
            name or self.name,
            [Column(c.name, c.type, c.not_null, c.primary_key) for c in self.columns],
            temporary=self.temporary,
        )
        clone.interval_pairs = list(self.interval_pairs)
        return clone

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name}, {len(self.rows)} rows)"
