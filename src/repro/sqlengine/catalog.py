"""The schema catalog: tables, views, and stored routines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import CatalogError
from repro.sqlengine.storage import Table


@dataclass
class Routine:
    """A stored routine: the parsed CREATE FUNCTION / PROCEDURE."""

    kind: str  # "FUNCTION" or "PROCEDURE"
    definition: Union[ast.CreateFunction, ast.CreateProcedure]

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def params(self) -> list[ast.ParamDef]:
        return self.definition.params

    @property
    def returns(self):
        if self.kind == "FUNCTION":
            return self.definition.returns
        return None

    @property
    def is_table_function(self) -> bool:
        return self.kind == "FUNCTION" and isinstance(
            self.definition.returns, ast.RowArrayType
        )


class Catalog:
    """Name → object maps with case-insensitive lookup.

    Every mutation logs its inverse through ``txn`` (the owning
    database's transaction manager) so DDL participates in statement
    and transaction rollback, and may be aborted by an armed fault plan
    before it takes effect.
    """

    # default until a Database attaches its TransactionManager
    txn = None

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, ast.Select] = {}
        self._routines: dict[str, Routine] = {}
        # bumped on any change that could invalidate compiled plans:
        # add/drop of non-temporary tables, views, and routines.
        # Temporary tables (the stratum's constant-period scratch tables,
        # routine table variables) churn once per sequenced execution and
        # are exempt — plans validate their schema at run time instead.
        self.schema_version = 0

    def _guard(self, site: str, name: str, entry_tag: str, key: str, old: object) -> None:
        """Fault-check then log one catalog mutation's inverse."""
        txn = self.txn
        if txn is None:
            return
        if txn.fault_plan is not None:
            txn.fault_plan.hit(site, name)
        if txn.logging:
            txn.log.append((entry_tag, self, key, old, self.schema_version))

    def _claim_schema(self) -> None:
        """Claim the schema for writing: DDL is not versioned (it becomes
        globally visible on apply), but racing sessions get a 40001."""
        txn = self.txn
        if txn is not None and txn.mvcc.multi:
            txn.mvcc.claim_schema(txn)

    def note_schema_change(self) -> None:
        """Invalidate compiled plans after an out-of-band schema change
        (e.g. the stratum appending timestamp columns for ADD VALIDTIME)."""
        self._claim_schema()
        txn = self.txn
        if txn is not None and txn.logging:
            txn.log.append(("cat_schema", self, self.schema_version))
        self.schema_version += 1

    # -- tables ---------------------------------------------------------

    def add_table(self, table: Table, replace: bool = False) -> None:
        key = table.name.lower()
        if not replace and (key in self._tables or key in self._views):
            raise CatalogError(f"table or view {table.name} already exists")
        if not table.temporary:
            self._claim_schema()
        self._guard("catalog.add_table", table.name, "cat_table", key,
                    self._tables.get(key))
        txn = self.txn
        if txn is not None and txn.wal is not None and not table.temporary:
            txn.wal.record_create_table(table)
        table.txn = self.txn
        self._tables[key] = table
        if not table.temporary:
            self.schema_version += 1

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def drop_table(self, name: str) -> None:
        key = name.lower()
        table = self._tables.get(key)
        if table is None:
            raise CatalogError(f"no such table: {name}")
        if not table.temporary:
            self._claim_schema()
        self._guard("catalog.drop_table", name, "cat_table", key, table)
        txn = self.txn
        if txn is not None and txn.wal is not None and not table.temporary:
            txn.wal.record_drop_table(table.name)
        del self._tables[key]
        if not table.temporary:
            self.schema_version += 1

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    # -- views ----------------------------------------------------------

    def add_view(self, name: str, select: ast.Select, replace: bool = False) -> None:
        key = name.lower()
        if not replace and (key in self._views or key in self._tables):
            raise CatalogError(f"table or view {name} already exists")
        self._claim_schema()
        self._guard("catalog.add_view", name, "cat_view", key, self._views.get(key))
        txn = self.txn
        if txn is not None and txn.wal is not None:
            txn.wal.record_view(name, select.to_sql())
        self._views[key] = select
        self.schema_version += 1

    def get_view(self, name: str) -> Optional[ast.Select]:
        return self._views.get(name.lower())

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def drop_view(self, name: str) -> None:
        key = name.lower()
        select = self._views.get(key)
        if select is None:
            raise CatalogError(f"no such view: {name}")
        self._claim_schema()
        self._guard("catalog.drop_view", name, "cat_view", key, select)
        txn = self.txn
        if txn is not None and txn.wal is not None:
            txn.wal.record_drop_view(name)
        del self._views[key]
        self.schema_version += 1

    # -- routines -------------------------------------------------------

    def add_routine(self, routine: Routine, replace: bool = False) -> None:
        key = routine.name.lower()
        if not replace and key in self._routines:
            raise CatalogError(f"routine {routine.name} already exists")
        existing = self._routines.get(key)
        # re-installing an identical routine (a cached temporal
        # transform re-running) is not a schema change and must not
        # write-claim the schema — read-only sequenced queries would
        # otherwise conflict with each other
        changed = existing is None or existing.definition is not routine.definition
        if changed:
            self._claim_schema()
        self._guard("catalog.add_routine", routine.name, "cat_routine", key, existing)
        txn = self.txn
        if txn is not None and txn.wal is not None:
            txn.wal.record_routine(routine.definition.to_sql())
        self._routines[key] = routine
        if changed:
            self.schema_version += 1

    def get_routine(self, name: str) -> Routine:
        try:
            return self._routines[name.lower()]
        except KeyError:
            raise CatalogError(f"no such routine: {name}") from None

    def has_routine(self, name: str) -> bool:
        return name.lower() in self._routines

    def drop_routine(self, name: str) -> None:
        key = name.lower()
        routine = self._routines.get(key)
        if routine is None:
            raise CatalogError(f"no such routine: {name}")
        self._claim_schema()
        self._guard("catalog.drop_routine", name, "cat_routine", key, routine)
        txn = self.txn
        if txn is not None and txn.wal is not None:
            txn.wal.record_drop_routine(name)
        del self._routines[key]
        self.schema_version += 1

    def routines(self) -> list[Routine]:
        return list(self._routines.values())
