"""SQL data types and value coercion.

A :class:`SqlType` is carried on every column and routine parameter.
The engine is permissive in the way embedded engines usually are (it
stores Python values), but coercion at assignment boundaries applies
CHAR padding/truncation rules and DATE parsing so the transformed
PSM behaves like it would on a real DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sqlengine.errors import TypeError_
from repro.sqlengine.values import Date, Null

_NUMERIC_NAMES = frozenset(
    {"INTEGER", "INT", "SMALLINT", "BIGINT", "DECIMAL", "NUMERIC", "FLOAT",
     "REAL", "DOUBLE"}
)
_CHAR_NAMES = frozenset({"CHAR", "CHARACTER", "VARCHAR"})
_INTEGER_NAMES = frozenset({"INTEGER", "INT", "SMALLINT", "BIGINT"})


@dataclass(frozen=True)
class SqlType:
    """A resolved SQL type: name plus optional length / precision / scale."""

    name: str
    length: Optional[int] = None
    precision: Optional[int] = None
    scale: Optional[int] = None

    @property
    def is_numeric(self) -> bool:
        return self.name in _NUMERIC_NAMES

    @property
    def is_integer(self) -> bool:
        return self.name in _INTEGER_NAMES

    @property
    def is_character(self) -> bool:
        return self.name in _CHAR_NAMES

    @property
    def is_date(self) -> bool:
        return self.name == "DATE"

    @property
    def is_boolean(self) -> bool:
        return self.name == "BOOLEAN"

    def to_sql(self) -> str:
        """Render this type back to SQL text."""
        if self.name in ("CHAR", "CHARACTER", "VARCHAR") and self.length:
            return f"{self.name}({self.length})"
        if self.name in ("DECIMAL", "NUMERIC") and self.precision is not None:
            if self.scale is not None:
                return f"{self.name}({self.precision}, {self.scale})"
            return f"{self.name}({self.precision})"
        return self.name

    def __str__(self) -> str:
        return self.to_sql()


INTEGER = SqlType("INTEGER")
FLOAT = SqlType("FLOAT")
BOOLEAN = SqlType("BOOLEAN")
DATE = SqlType("DATE")


def char(length: int) -> SqlType:
    return SqlType("CHAR", length=length)


def varchar(length: int) -> SqlType:
    return SqlType("VARCHAR", length=length)


def decimal(precision: int, scale: int = 0) -> SqlType:
    return SqlType("DECIMAL", precision=precision, scale=scale)


def coerce(value: Any, target: SqlType) -> Any:
    """Coerce ``value`` to ``target`` at an assignment boundary.

    NULL passes through every type.  Raises :class:`TypeError_` when the
    value cannot represent the target type.
    """
    if value is Null:
        return Null
    if target.is_character:
        return _coerce_character(value, target)
    if target.is_numeric:
        return _coerce_numeric(value, target)
    if target.is_date:
        return _coerce_date(value)
    if target.is_boolean:
        if isinstance(value, bool):
            return value
        raise TypeError_(f"cannot coerce {value!r} to BOOLEAN")
    return value


def _coerce_character(value: Any, target: SqlType) -> str:
    if isinstance(value, str):
        text = value
    elif isinstance(value, bool):
        text = "TRUE" if value else "FALSE"
    elif isinstance(value, (int, float)):
        text = str(value)
    elif isinstance(value, Date):
        text = value.to_iso()
    else:
        raise TypeError_(f"cannot coerce {value!r} to {target}")
    if target.length is not None and len(text) > target.length:
        overflow = text[target.length:]
        if overflow.strip():
            # real data loss: VARCHAR raises; CHAR truncates blanks only,
            # so non-blank loss raises there too
            raise TypeError_(
                f"value {text!r} too long for {target.to_sql()}"
            )
        text = text[: target.length]
    return text


def _coerce_numeric(value: Any, target: SqlType) -> Any:
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return value if target.is_integer else float(value) if target.name in ("FLOAT", "REAL", "DOUBLE") else value
    if isinstance(value, float):
        if target.is_integer:
            if value != int(value):
                raise TypeError_(f"cannot coerce non-integral {value!r} to {target}")
            return int(value)
        return value
    if isinstance(value, str):
        text = value.strip()
        try:
            return int(text) if target.is_integer else float(text)
        except ValueError as exc:
            raise TypeError_(f"cannot coerce {value!r} to {target}") from exc
    raise TypeError_(f"cannot coerce {value!r} to {target}")


def _coerce_date(value: Any) -> Date:
    if isinstance(value, Date):
        return value
    if isinstance(value, str):
        return Date.from_iso(value)
    raise TypeError_(f"cannot coerce {value!r} to DATE")


def infer_type(value: Any) -> SqlType:
    """Best-effort type inference for literals and computed values."""
    if value is Null:
        return SqlType("NULL")
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return varchar(max(len(value), 1))
    if isinstance(value, Date):
        return DATE
    return SqlType("UNKNOWN")
