"""Exception hierarchy for the SQL/PSM engine.

Every error raised by the engine derives from :class:`SqlError`, so
callers (including the temporal stratum) can catch one base class.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all engine errors."""


class LexError(SqlError):
    """Raised when the lexer encounters malformed input."""

    def __init__(self, message: str, position: int, line: int) -> None:
        super().__init__(f"{message} (line {line}, offset {position})")
        self.position = position
        self.line = line


class ParseError(SqlError):
    """Raised when the parser cannot make sense of a token stream."""


class CatalogError(SqlError):
    """Raised for unknown or duplicate tables, routines, views, columns."""


class TypeError_(SqlError):
    """Raised on type mismatches and impossible coercions.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ExecutionError(SqlError):
    """Raised for runtime errors during statement execution."""


class DivisionByZeroError(ExecutionError):
    """Raised when SQL arithmetic divides by zero."""


class CardinalityError(ExecutionError):
    """Raised when a scalar subquery or row SELECT yields more than one row."""


class SignalError(ExecutionError):
    """Raised by ``SIGNAL SQLSTATE '...'`` — an explicitly raised
    condition, catchable by ``DECLARE ... HANDLER FOR SQLSTATE '...'``
    (or a generic SQLEXCEPTION handler)."""

    def __init__(self, sqlstate: str, message: "str | None" = None) -> None:
        super().__init__(message if message is not None else f"SQLSTATE {sqlstate}")
        self.sqlstate = sqlstate
        self.message = message


class FaultInjected(ExecutionError):
    """Raised by an armed :class:`~repro.sqlengine.txn.FaultPlan` — the
    fault-injection harness's stand-in for a mid-statement crash."""


class RoutineError(ExecutionError):
    """Raised for errors inside stored-routine execution."""


class CursorError(RoutineError):
    """Raised for cursor misuse (fetch before open, double open, ...)."""


class PlanInvalidated(Exception):
    """Internal signal: a cached execution plan no longer matches the
    catalog (schema drift, replaced view, redefined table function).

    Deliberately *not* an :class:`SqlError` — it never escapes the
    engine; the executor catches it, drops the stale plan, and re-runs
    the statement through the interpreted path.
    """
