"""Exception hierarchy for the SQL/PSM engine.

Every error raised by the engine derives from :class:`SqlError`, so
callers (including the temporal stratum) can catch one base class.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all engine errors."""


class LexError(SqlError):
    """Raised when the lexer encounters malformed input."""

    def __init__(self, message: str, position: int, line: int) -> None:
        super().__init__(f"{message} (line {line}, offset {position})")
        self.position = position
        self.line = line


class ParseError(SqlError):
    """Raised when the parser cannot make sense of a token stream."""


class CatalogError(SqlError):
    """Raised for unknown or duplicate tables, routines, views, columns."""


class TypeError_(SqlError):
    """Raised on type mismatches and impossible coercions.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ExecutionError(SqlError):
    """Raised for runtime errors during statement execution."""


class DivisionByZeroError(ExecutionError):
    """Raised when SQL arithmetic divides by zero."""


class CardinalityError(ExecutionError):
    """Raised when a scalar subquery or row SELECT yields more than one row."""


class SignalError(ExecutionError):
    """Raised by ``SIGNAL SQLSTATE '...'`` — an explicitly raised
    condition, catchable by ``DECLARE ... HANDLER FOR SQLSTATE '...'``
    (or a generic SQLEXCEPTION handler)."""

    def __init__(self, sqlstate: str, message: "str | None" = None) -> None:
        super().__init__(message if message is not None else f"SQLSTATE {sqlstate}")
        self.sqlstate = sqlstate
        self.message = message


class QueryCancelled(SignalError):
    """Raised by the query watchdog when a statement's deadline expires
    or an explicit cancellation is requested.

    Carries SQLSTATE ``57014`` (operator intervention / query canceled),
    so PSM ``DECLARE ... HANDLER FOR SQLSTATE '57014'`` catches it
    exactly like a SIGNAL-raised condition; an unhandled cancellation
    unwinds through the statement marks to full routine atomicity.
    """

    SQLSTATE = "57014"

    def __init__(self, message: "str | None" = None) -> None:
        super().__init__(
            self.SQLSTATE,
            message if message is not None else "query cancelled (57014)",
        )


class ResourceBudgetExceeded(SignalError):
    """Raised by the resource governor when a hard per-statement budget
    (row-scan or undo-depth) is breached and no degradation can help.

    Carries SQLSTATE ``53000`` (insufficient resources); handled like
    any SIGNAL-raised state.
    """

    SQLSTATE = "53000"

    def __init__(self, message: str, budget: str, limit: int, used: int) -> None:
        super().__init__(self.SQLSTATE, message)
        self.budget = budget
        self.limit = limit
        self.used = used


class SerializationError(SignalError):
    """Raised by the MVCC manager when a transaction's write conflicts
    with another session's in-flight or already-committed write
    (first-writer-wins / first-committer-wins under snapshot isolation).

    Carries SQLSTATE ``40001`` (serialization failure), so PSM
    ``DECLARE ... HANDLER FOR SQLSTATE '40001'`` catches it exactly like
    a SIGNAL-raised condition; unhandled, it unwinds through the
    statement marks and the client is expected to roll back and retry.
    """

    SQLSTATE = "40001"

    def __init__(self, message: "str | None" = None) -> None:
        super().__init__(
            self.SQLSTATE,
            message if message is not None else "serialization failure (40001)",
        )


class ReadOnlyError(SignalError):
    """Raised when a statement attempts to modify a read-only database —
    a hot standby serving replica reads before promotion.

    Carries SQLSTATE ``25006`` (read-only SQL transaction); surfaced to
    wire clients as an ordinary typed error so they can fail over to the
    primary instead of dying on an opaque exception.
    """

    SQLSTATE = "25006"

    def __init__(self, message: "str | None" = None) -> None:
        super().__init__(
            self.SQLSTATE,
            message
            if message is not None
            else "cannot execute a write statement on a read-only standby (25006)",
        )


class ReplicationError(ExecutionError):
    """A replication-link failure: a gap in the shipped WAL stream, a
    generation mismatch the standby cannot resume across, or an apply
    error that poisoned the standby state machine."""


class FaultInjected(ExecutionError):
    """Raised by an armed :class:`~repro.sqlengine.txn.FaultPlan` — the
    fault-injection harness's stand-in for a mid-statement crash."""


class DurabilityError(ExecutionError):
    """A durable-storage operation (WAL write/fsync, checkpoint
    tmp+rename) failed with an :class:`OSError` that bounded retry could
    not absorb.

    Carries the failing ``operation`` tag, the ``path`` involved, and
    how many ``attempts`` were made, so callers and PSM handlers can
    distinguish durability faults from engine bugs.  Defined here (not
    in :mod:`repro.sqlengine.wal`) so the resilience layer's retry
    helper can raise it without an import cycle.
    """

    def __init__(
        self,
        operation: str,
        path: str,
        attempts: int = 1,
        cause: "BaseException | None" = None,
    ) -> None:
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"durability failure in {operation} on {path}"
            f" after {attempts} attempt(s){detail}"
        )
        self.operation = operation
        self.path = path
        self.attempts = attempts


class RoutineError(ExecutionError):
    """Raised for errors inside stored-routine execution."""


class CursorError(RoutineError):
    """Raised for cursor misuse (fetch before open, double open, ...)."""


class PlanInvalidated(Exception):
    """Internal signal: a cached execution plan no longer matches the
    catalog (schema drift, replaced view, redefined table function).

    Deliberately *not* an :class:`SqlError` — it never escapes the
    engine; the executor catches it, drops the stale plan, and re-runs
    the statement through the interpreted path.
    """
