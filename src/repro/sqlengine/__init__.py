"""A from-scratch in-memory SQL + PSM engine.

This subpackage is the *conventional* substrate of the reproduction: it
plays the role DB2 played in the paper.  It knows nothing about time;
the temporal stratum (:mod:`repro.temporal`) rewrites Temporal SQL/PSM
into the conventional SQL/PSM this engine executes.

The public entry point is :class:`repro.sqlengine.engine.Database`.
"""

from repro.sqlengine.engine import Database
from repro.sqlengine.errors import (
    SqlError,
    LexError,
    ParseError,
    CatalogError,
    TypeError_,
    ExecutionError,
)
from repro.sqlengine.storage import Table
from repro.sqlengine.values import Date, Null, Row

__all__ = [
    "Database",
    "SqlError",
    "LexError",
    "ParseError",
    "CatalogError",
    "TypeError_",
    "ExecutionError",
    "Table",
    "Date",
    "Null",
    "Row",
]
