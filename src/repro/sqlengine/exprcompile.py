"""Expression compilation: AST → Python closures (the *bind* phase).

The interpreted evaluator in :mod:`repro.sqlengine.executor` re-walks
the expression tree and re-resolves every column name through
lowercased-string dictionary lookups *per row*.  This module performs
that resolution once per statement: given a *slot layout* — the mapping
from FROM-clause alias to its column→index map — a column reference
compiles to an integer row-index fetch, and every other node compiles to
a closure over its children's closures.

Compiled closures are drop-in equivalents of ``Executor.evaluate``:

* same results, including three-valued logic and NULL propagation,
* same errors, raised at the same points,
* mutable AST leaves (``Literal.value``) are re-read on every call, so
  the stratum's placeholder-literal trick keeps working.

Safety: a slot closure only takes the fast path when the runtime binding
carries the *identical* column map the expression was compiled against
(``binding.columns is colmap``); anything else — unbound alias,
shadowing parent environment, routine-frame record — falls back to
``Env.lookup_keyed``, which implements exactly the interpreted
resolution rules.

``compile_expression`` returns ``None`` for expression forms it does not
know, in which case callers run the interpreted path unchanged.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine import functions as fn
from repro.sqlengine.errors import (
    CardinalityError,
    CatalogError,
    ExecutionError,
    SqlError,
)
from repro.sqlengine.executor import (
    Env,
    Executor,
    _apply_binary,
    _like_regex,
    _negate,
)
from repro.sqlengine.types import coerce
from repro.sqlengine.values import (
    Date,
    Null,
    Unknown,
    compare,
    logic_and,
    logic_not,
    logic_or,
    truth,
)

# A compiled scalar expression: Env → value.
Compiled = Callable[[Env], Any]
# A compiled grouped expression: (group rows, base env) → value.
CompiledGrouped = Callable[[list, Env], Any]

# Layout: alias (lowercased) → column→index map.  The colmap dicts must
# be the very objects later placed into Binding.columns — slot closures
# guard on their identity.
Layout = dict


class _Unsupported(Exception):
    """Internal: expression form the compiler does not handle."""


def compile_expression(
    executor: Executor, expr: ast.Expression, layout: Layout
) -> Optional[Compiled]:
    """Compile ``expr`` to a closure, or None if any node is unsupported."""
    try:
        return _compile(executor, expr, layout)
    except _Unsupported:
        return None


def compile_grouped(
    executor: Executor, expr: ast.Expression, layout: Layout
) -> Optional[CompiledGrouped]:
    """Compile an expression that may contain aggregate calls."""
    try:
        return _compile_g(executor, expr, layout)
    except _Unsupported:
        return None


# ---------------------------------------------------------------------------
# per-row compilation (mirrors Executor.evaluate)
# ---------------------------------------------------------------------------


def _compile(executor: Executor, expr: ast.Expression, layout: Layout) -> Compiled:
    if isinstance(expr, ast.Literal):
        # Literal.value is mutable (the stratum substitutes context
        # bounds and period placeholders in place); read it per call.
        return lambda env, e=expr: e.value
    if isinstance(expr, ast.Name):
        return _compile_name(expr, layout)
    if isinstance(expr, ast.Parenthesized):
        return _compile(executor, expr.expr, layout)
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(executor, expr, layout)
    if isinstance(expr, ast.UnaryOp):
        operand_c = _compile(executor, expr.operand, layout)
        if expr.op == "NOT":
            return lambda env: logic_not(operand_c(env))
        return lambda env: _negate(operand_c(env))
    if isinstance(expr, ast.FunctionCall):
        return _compile_call(executor, expr, layout)
    if isinstance(expr, ast.Cast):
        inner_c = _compile(executor, expr.expr, layout)
        target = expr.target
        return lambda env: coerce(inner_c(env), target)
    if isinstance(expr, ast.CaseExpr):
        return _compile_case(executor, expr, layout)
    if isinstance(expr, ast.IsNullPredicate):
        inner_c = _compile(executor, expr.expr, layout)
        if expr.negated:
            return lambda env: inner_c(env) is not Null
        return lambda env: inner_c(env) is Null
    if isinstance(expr, ast.BetweenPredicate):
        return _compile_between(executor, expr, layout)
    if isinstance(expr, ast.InPredicate):
        return _compile_in(executor, expr, layout)
    if isinstance(expr, ast.ExistsPredicate):
        subquery = expr.subquery
        negated = expr.negated
        def exists_closure(env: Env) -> Any:
            result = executor.execute_select(subquery, env)
            answer = len(result.rows) > 0
            return not answer if negated else answer
        return exists_closure
    if isinstance(expr, ast.LikePredicate):
        return _compile_like(executor, expr, layout)
    if isinstance(expr, ast.ScalarSubquery):
        select = expr.select
        def scalar_closure(env: Env) -> Any:
            result = executor.execute_select(select, env)
            if not result.rows:
                return Null
            if len(result.rows) > 1:
                raise CardinalityError("scalar subquery returned more than one row")
            return result.rows[0][0]
        return scalar_closure
    raise _Unsupported(type(expr).__name__)


def _compile_name(expr: ast.Name, layout: Layout) -> Compiled:
    qualifier, name = expr.qualifier, expr.name
    qual = qualifier.lower() if qualifier is not None else None
    key = name.lower()
    if qual is not None:
        colmap = layout.get(qual)
        if colmap is not None:
            index = colmap.get(key)
            if index is not None:
                def qualified_slot(env: Env) -> Any:
                    binding = env.bindings.get(qual)
                    if binding is not None and binding.columns is colmap:
                        return binding.row[index]
                    return env.lookup_keyed(qual, key, qualifier, name)
                return qualified_slot
        return lambda env: env.lookup_keyed(qual, key, qualifier, name)
    hits = [
        (alias, colmap, colmap[key])
        for alias, colmap in layout.items()
        if key in colmap
    ]
    if len(hits) == 1:
        alias, colmap, index = hits[0]
        def bare_slot(env: Env) -> Any:
            binding = env.bindings.get(alias)
            if binding is not None and binding.columns is colmap:
                return binding.row[index]
            return env.lookup_keyed(None, key, None, name)
        return bare_slot
    # zero hits (parent env / frame variable) or an ambiguity: resolve
    # dynamically so the interpreted rules (and errors) apply verbatim
    return lambda env: env.lookup_keyed(None, key, None, name)


def _compile_binary(
    executor: Executor, expr: ast.BinaryOp, layout: Layout
) -> Compiled:
    left_c = _compile(executor, expr.left, layout)
    right_c = _compile(executor, expr.right, layout)
    op = expr.op
    if op == "AND":
        def and_closure(env: Env) -> Any:
            left = left_c(env)
            if left is False:
                return False
            return logic_and(left, right_c(env))
        return and_closure
    if op == "OR":
        def or_closure(env: Env) -> Any:
            left = left_c(env)
            if left is True:
                return True
            return logic_or(left, right_c(env))
        return or_closure
    if op == "=":
        def eq_closure(env: Env) -> Any:
            verdict = compare(left_c(env), right_c(env))
            if verdict is Unknown:
                return Unknown
            return verdict == 0
        return eq_closure
    if op in ("<>", "<", "<=", ">", ">="):
        return lambda env: _apply_binary(op, left_c(env), right_c(env))
    return lambda env: _apply_binary(op, left_c(env), right_c(env))


def _compile_call(
    executor: Executor, expr: ast.FunctionCall, layout: Layout
) -> Compiled:
    from repro.sqlengine.routines import RoutineInterpreter

    name = expr.name
    upper = name.upper()
    arg_cs = [_compile(executor, a, layout) for a in expr.args]
    catalog = executor.db.catalog
    db = executor.db
    interpreter = RoutineInterpreter(executor)

    def call_closure(env: Env) -> Any:
        if catalog.has_routine(name):
            return interpreter.invoke_function(name, [c(env) for c in arg_cs])
        if upper == "CURRENT_DATE":
            return db.now
        if fn.is_aggregate(upper):
            raise ExecutionError(
                f"aggregate {name} used outside of a grouped query"
            )
        if fn.is_scalar_builtin(upper):
            return fn.call_scalar_builtin(upper, [c(env) for c in arg_cs])
        raise CatalogError(f"no such function: {name}")

    return call_closure


def _compile_case(
    executor: Executor, expr: ast.CaseExpr, layout: Layout
) -> Compiled:
    operand_c = (
        _compile(executor, expr.operand, layout)
        if expr.operand is not None
        else None
    )
    whens = [
        (_compile(executor, when, layout), _compile(executor, then, layout))
        for when, then in expr.whens
    ]
    else_c = (
        _compile(executor, expr.else_expr, layout)
        if expr.else_expr is not None
        else None
    )

    def case_closure(env: Env) -> Any:
        if operand_c is not None:
            operand = operand_c(env)
            for when_c, then_c in whens:
                if compare(operand, when_c(env)) == 0:
                    return then_c(env)
        else:
            for when_c, then_c in whens:
                if truth(when_c(env)):
                    return then_c(env)
        if else_c is not None:
            return else_c(env)
        return Null

    return case_closure


def _compile_between(
    executor: Executor, expr: ast.BetweenPredicate, layout: Layout
) -> Compiled:
    value_c = _compile(executor, expr.expr, layout)
    low_c = _compile(executor, expr.low, layout)
    high_c = _compile(executor, expr.high, layout)
    negated = expr.negated

    def between_closure(env: Env) -> Any:
        value = value_c(env)
        lower = compare(value, low_c(env))
        upper = compare(value, high_c(env))
        if lower is Unknown or upper is Unknown:
            return Unknown
        answer = lower >= 0 and upper <= 0
        return (not answer) if negated else answer

    return between_closure


def _compile_in(
    executor: Executor, expr: ast.InPredicate, layout: Layout
) -> Compiled:
    value_c = _compile(executor, expr.expr, layout)
    negated = expr.negated
    subquery = expr.subquery
    item_cs = (
        [_compile(executor, e, layout) for e in expr.items or []]
        if subquery is None
        else None
    )

    def in_closure(env: Env) -> Any:
        value = value_c(env)
        if subquery is not None:
            result = executor.execute_select(subquery, env)
            candidates = [row[0] for row in result.rows]
        else:
            candidates = [c(env) for c in item_cs]
        saw_unknown = False
        for candidate in candidates:
            verdict = compare(value, candidate)
            if verdict is Unknown:
                saw_unknown = True
            elif verdict == 0:
                return False if negated else True
        if saw_unknown:
            return Unknown
        return True if negated else False

    return in_closure


def _compile_like(
    executor: Executor, expr: ast.LikePredicate, layout: Layout
) -> Compiled:
    value_c = _compile(executor, expr.expr, layout)
    pattern_c = _compile(executor, expr.pattern, layout)
    negated = expr.negated
    regex_cache: dict = {}

    def like_closure(env: Env) -> Any:
        value = value_c(env)
        pattern = pattern_c(env)
        if value is Null or pattern is Null:
            return Unknown
        text = str(pattern)
        regex = regex_cache.get(text)
        if regex is None:
            regex = regex_cache[text] = _like_regex(text)
        answer = regex.fullmatch(str(value)) is not None
        return (not answer) if negated else answer

    return like_closure


# ---------------------------------------------------------------------------
# grouped compilation (mirrors Executor._evaluate_grouped)
# ---------------------------------------------------------------------------


def _compile_g(
    executor: Executor, expr: ast.Expression, layout: Layout
) -> CompiledGrouped:
    if isinstance(expr, ast.FunctionCall) and fn.is_aggregate(expr.name):
        return _compile_g_aggregate(executor, expr, layout)
    if isinstance(expr, ast.BinaryOp):
        left_c = _compile_g(executor, expr.left, layout)
        right_c = _compile_g(executor, expr.right, layout)
        op = expr.op
        # no short circuit in the grouped evaluator: both sides evaluate
        if op == "AND":
            return lambda group, base: logic_and(
                left_c(group, base), right_c(group, base)
            )
        if op == "OR":
            return lambda group, base: logic_or(
                left_c(group, base), right_c(group, base)
            )
        return lambda group, base: _apply_binary(
            op, left_c(group, base), right_c(group, base)
        )
    if isinstance(expr, ast.Parenthesized):
        return _compile_g(executor, expr.expr, layout)
    if isinstance(expr, ast.UnaryOp):
        operand_c = _compile_g(executor, expr.operand, layout)
        if expr.op == "NOT":
            return lambda group, base: logic_not(operand_c(group, base))
        return lambda group, base: _negate(operand_c(group, base))
    if isinstance(expr, ast.Cast):
        inner_c = _compile_g(executor, expr.expr, layout)
        target = expr.target
        return lambda group, base: coerce(inner_c(group, base), target)
    # every other form evaluates per-row on a representative group row
    row_c = _compile(executor, expr, layout)
    return lambda group, base: row_c(group[0] if group else base)


def _compile_g_aggregate(
    executor: Executor, expr: ast.FunctionCall, layout: Layout
) -> CompiledGrouped:
    name = expr.name
    star = expr.star
    distinct = expr.distinct
    catalog = executor.db.catalog
    if not star and not expr.args:
        raise _Unsupported(f"aggregate {name} with no argument")
    arg_c = _compile(executor, expr.args[0], layout) if expr.args else None
    # a user routine shadowing the aggregate name is resolved per call,
    # exactly like the interpreted evaluator does
    row_c = _compile(executor, expr, layout)

    def aggregate_closure(group: list, base: Env) -> Any:
        if not catalog.has_routine(name):
            if star:
                return fn.evaluate_aggregate(name, [None] * len(group), star=True)
            values = [arg_c(row_env) for row_env in group]
            return fn.evaluate_aggregate(name, values, distinct=distinct)
        return row_c(group[0] if group else base)

    return aggregate_closure


# ---------------------------------------------------------------------------
# column-batch compilation (vectorized WHERE kernels)
# ---------------------------------------------------------------------------
#
# A *batch kernel* evaluates one WHERE conjunct over the table's derived
# column store (:class:`repro.sqlengine.storage.ColumnStore`) and keeps
# exactly the positions where the conjunct is **True** — rows where it is
# False *or* Unknown are dropped, which is precisely SQL's WHERE rule, so
# ANDing conjuncts reduces to sequentially filtering one selection vector.
#
# Kernels are deliberately conservative.  Only shapes whose semantics are
# provably identical to the interpreted evaluator compile:
#
# * ``col <op> const`` / ``const <op> col`` for the six comparisons,
# * ``col [NOT] BETWEEN const AND const``,
# * ``col IS [NOT] NULL``,
# * ``col [NOT] IN (const, ...)`` over literal lists,
#
# where *const* is a side-effect-free literal expression (the stratum's
# mutable placeholder Literals included — they are re-read per apply).
# Everything else — routine calls, subqueries, column-vs-column, LIKE —
# yields no kernel, and any runtime surprise (vector degraded to ``obj``,
# a constant whose type does not match the vector domain, an SqlError
# during constant evaluation) makes the kernel return ``None`` so the
# caller falls back to the row-at-a-time path, which reproduces the
# interpreted results *and errors* exactly.

_CMP_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_BATCH_FLIPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

# sentinels for constant-to-vector-domain conversion
_FALLBACK = object()  # type cannot be compared in the vector domain
_KEEP_NONE = object()  # NULL constant: the conjunct is Unknown everywhere


class BatchFilter:
    """The compiled batch kernels for one scanned table's conjuncts.

    ``consumes_all`` is True when *every* WHERE conjunct got a kernel —
    only then may the caller skip the per-row compiled predicate after a
    successful :meth:`apply`.
    """

    __slots__ = ("kernels", "consumes_all")

    def __init__(self, kernels: list, consumes_all: bool) -> None:
        self.kernels = kernels
        self.consumes_all = consumes_all

    def apply(self, table, positions, env: Env) -> Optional[list]:
        """Filter candidate ``positions`` through every kernel.

        Returns the surviving positions (ascending, a subset of the
        input), or ``None`` when any kernel cannot run vectorized — the
        caller must then evaluate row-at-a-time.
        """
        store = table.column_store()
        try:
            for kernel in self.kernels:
                positions = kernel(store, positions, env)
                if positions is None:
                    return None
                if not positions:
                    return []
        except SqlError:
            return None
        return list(positions) if not isinstance(positions, list) else positions


def compile_batch_filter(
    executor: Executor,
    table,
    alias: str,
    conjuncts: list,
    from_items: Optional[list],
) -> Optional["BatchFilter"]:
    """Compile the batchable subset of ``conjuncts`` against ``table``.

    Returns ``None`` when no conjunct is batchable (the scan then runs
    the classic row path with nothing lost).
    """
    kernels = []
    for conjunct in conjuncts:
        kernel = _batch_kernel(executor, table, alias, conjunct, from_items)
        if kernel is not None:
            kernels.append(kernel)
    if not kernels:
        return None
    return BatchFilter(kernels, len(kernels) == len(conjuncts))


def _batch_const(expr: ast.Expression) -> Optional[Compiled]:
    """A closure for a side-effect-free constant expression, else None.

    Literals are re-read per call (mutable placeholder semantics); the
    only other accepted forms are parentheses and numeric sign unary.
    """
    if isinstance(expr, ast.Literal):
        return lambda env, e=expr: e.value
    if isinstance(expr, ast.Parenthesized):
        return _batch_const(expr.expr)
    if isinstance(expr, ast.UnaryOp) and expr.op != "NOT":
        inner = _batch_const(expr.operand)
        if inner is None:
            return None
        return lambda env: _negate(inner(env))
    return None


def _vector_const(kind: str, value: Any) -> Any:
    """Map a constant into a vector's comparison domain.

    Returns ``_KEEP_NONE`` for NULL (comparisons are Unknown on every
    row) and ``_FALLBACK`` when the constant's type cannot be compared
    against this vector without the interpreted error behaviour.
    """
    if value is Null:
        return _KEEP_NONE
    if kind == "int" or kind == "float":
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float)):
            return value
        return _FALLBACK
    if kind == "date":
        if isinstance(value, Date):
            return value.ordinal
        return _FALLBACK
    if kind == "str":
        if isinstance(value, str):
            return value.rstrip()
        return _FALLBACK
    return _FALLBACK  # obj vectors are never batch-compared


# the comparison loops are specialized per operator: an inline compare
# in the comprehension beats an ``operator`` call per element by ~1.6x,
# and the NULL-free variants drop the validity lookup as well
_CMP_LOOPS = {
    "=": lambda data, ps, c: [p for p in ps if data[p] == c],
    "<>": lambda data, ps, c: [p for p in ps if data[p] != c],
    "<": lambda data, ps, c: [p for p in ps if data[p] < c],
    "<=": lambda data, ps, c: [p for p in ps if data[p] <= c],
    ">": lambda data, ps, c: [p for p in ps if data[p] > c],
    ">=": lambda data, ps, c: [p for p in ps if data[p] >= c],
}

_CMP_LOOPS_VALID = {
    "=": lambda data, v, ps, c: [p for p in ps if v[p] and data[p] == c],
    "<>": lambda data, v, ps, c: [p for p in ps if v[p] and data[p] != c],
    "<": lambda data, v, ps, c: [p for p in ps if v[p] and data[p] < c],
    "<=": lambda data, v, ps, c: [p for p in ps if v[p] and data[p] <= c],
    ">": lambda data, v, ps, c: [p for p in ps if v[p] and data[p] > c],
    ">=": lambda data, v, ps, c: [p for p in ps if v[p] and data[p] >= c],
}


def _make_compare_kernel(column_index: int, op: str, const_c: Compiled):
    loop = _CMP_LOOPS[op]
    loop_valid = _CMP_LOOPS_VALID[op]

    def kernel(store, positions, env: Env):
        vector = store.vectors[column_index]
        const = _vector_const(vector.kind, const_c(env))
        if const is _FALLBACK:
            return None
        if const is _KEEP_NONE:
            return []
        if vector.nulls:
            return loop_valid(vector.data, vector.valid, positions, const)
        return loop(vector.data, positions, const)

    return kernel


def _make_between_kernel(
    column_index: int, low_c: Compiled, high_c: Compiled, negated: bool
):
    def kernel(store, positions, env: Env):
        vector = store.vectors[column_index]
        low = _vector_const(vector.kind, low_c(env))
        high = _vector_const(vector.kind, high_c(env))
        if low is _FALLBACK or high is _FALLBACK:
            return None
        if low is _KEEP_NONE or high is _KEEP_NONE:
            # a NULL bound makes the predicate Unknown for every row,
            # negated or not (both compares must be known to negate)
            return []
        data = vector.data
        if vector.nulls:
            valid = vector.valid
            if negated:
                return [
                    p for p in positions
                    if valid[p] and not (low <= data[p] <= high)
                ]
            return [
                p for p in positions if valid[p] and low <= data[p] <= high
            ]
        if negated:
            return [p for p in positions if not (low <= data[p] <= high)]
        return [p for p in positions if low <= data[p] <= high]

    return kernel


def _make_null_kernel(column_index: int, negated: bool):
    def kernel(store, positions, env: Env):
        valid = store.vectors[column_index].valid
        if negated:  # IS NOT NULL
            return [p for p in positions if valid[p]]
        return [p for p in positions if not valid[p]]

    return kernel


def _make_in_kernel(column_index: int, item_cs: list, negated: bool):
    def kernel(store, positions, env: Env):
        vector = store.vectors[column_index]
        kind = vector.kind
        members = set()
        saw_null = False
        for item_c in item_cs:
            const = _vector_const(kind, item_c(env))
            if const is _KEEP_NONE:
                saw_null = True
                continue
            if const is _FALLBACK:
                # a type-mismatched candidate raises in the row path
                # only when no earlier candidate matched — irreducibly
                # order-dependent, so let the row path handle it
                return None
            members.add(const)
        data = vector.data
        if negated and saw_null:
            # NOT IN with a NULL candidate is never True
            return []
        if vector.nulls:
            valid = vector.valid
            if negated:
                return [
                    p for p in positions
                    if valid[p] and data[p] not in members
                ]
            return [p for p in positions if valid[p] and data[p] in members]
        if negated:
            return [p for p in positions if data[p] not in members]
        return [p for p in positions if data[p] in members]

    return kernel


def _batch_kernel(
    executor: Executor,
    table,
    alias: str,
    conjunct: ast.Expression,
    from_items: Optional[list],
):
    while isinstance(conjunct, ast.Parenthesized):
        conjunct = conjunct.expr
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in _CMP_OPS:
        op = conjunct.op
        for lhs, rhs, normalized in (
            (conjunct.left, conjunct.right, op),
            (conjunct.right, conjunct.left, _BATCH_FLIPPED[op]),
        ):
            column = executor._column_of(lhs, table, alias, from_items)
            if column is None:
                continue
            const_c = _batch_const(rhs)
            if const_c is None:
                continue
            return _make_compare_kernel(column, normalized, const_c)
        return None
    if isinstance(conjunct, ast.BetweenPredicate):
        column = executor._column_of(conjunct.expr, table, alias, from_items)
        if column is None:
            return None
        low_c = _batch_const(conjunct.low)
        high_c = _batch_const(conjunct.high)
        if low_c is None or high_c is None:
            return None
        return _make_between_kernel(column, low_c, high_c, conjunct.negated)
    if isinstance(conjunct, ast.IsNullPredicate):
        column = executor._column_of(conjunct.expr, table, alias, from_items)
        if column is None:
            return None
        return _make_null_kernel(column, conjunct.negated)
    if isinstance(conjunct, ast.InPredicate):
        if conjunct.subquery is not None or not conjunct.items:
            return None
        column = executor._column_of(conjunct.expr, table, alias, from_items)
        if column is None:
            return None
        item_cs = [_batch_const(item) for item in conjunct.items]
        if any(c is None for c in item_cs):
            return None
        return _make_in_kernel(column, item_cs, conjunct.negated)
    return None
