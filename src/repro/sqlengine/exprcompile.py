"""Expression compilation: AST → Python closures (the *bind* phase).

The interpreted evaluator in :mod:`repro.sqlengine.executor` re-walks
the expression tree and re-resolves every column name through
lowercased-string dictionary lookups *per row*.  This module performs
that resolution once per statement: given a *slot layout* — the mapping
from FROM-clause alias to its column→index map — a column reference
compiles to an integer row-index fetch, and every other node compiles to
a closure over its children's closures.

Compiled closures are drop-in equivalents of ``Executor.evaluate``:

* same results, including three-valued logic and NULL propagation,
* same errors, raised at the same points,
* mutable AST leaves (``Literal.value``) are re-read on every call, so
  the stratum's placeholder-literal trick keeps working.

Safety: a slot closure only takes the fast path when the runtime binding
carries the *identical* column map the expression was compiled against
(``binding.columns is colmap``); anything else — unbound alias,
shadowing parent environment, routine-frame record — falls back to
``Env.lookup_keyed``, which implements exactly the interpreted
resolution rules.

``compile_expression`` returns ``None`` for expression forms it does not
know, in which case callers run the interpreted path unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine import functions as fn
from repro.sqlengine.errors import (
    CardinalityError,
    CatalogError,
    ExecutionError,
)
from repro.sqlengine.executor import (
    Env,
    Executor,
    _apply_binary,
    _like_regex,
    _negate,
)
from repro.sqlengine.types import coerce
from repro.sqlengine.values import (
    Null,
    Unknown,
    compare,
    logic_and,
    logic_not,
    logic_or,
    truth,
)

# A compiled scalar expression: Env → value.
Compiled = Callable[[Env], Any]
# A compiled grouped expression: (group rows, base env) → value.
CompiledGrouped = Callable[[list, Env], Any]

# Layout: alias (lowercased) → column→index map.  The colmap dicts must
# be the very objects later placed into Binding.columns — slot closures
# guard on their identity.
Layout = dict


class _Unsupported(Exception):
    """Internal: expression form the compiler does not handle."""


def compile_expression(
    executor: Executor, expr: ast.Expression, layout: Layout
) -> Optional[Compiled]:
    """Compile ``expr`` to a closure, or None if any node is unsupported."""
    try:
        return _compile(executor, expr, layout)
    except _Unsupported:
        return None


def compile_grouped(
    executor: Executor, expr: ast.Expression, layout: Layout
) -> Optional[CompiledGrouped]:
    """Compile an expression that may contain aggregate calls."""
    try:
        return _compile_g(executor, expr, layout)
    except _Unsupported:
        return None


# ---------------------------------------------------------------------------
# per-row compilation (mirrors Executor.evaluate)
# ---------------------------------------------------------------------------


def _compile(executor: Executor, expr: ast.Expression, layout: Layout) -> Compiled:
    if isinstance(expr, ast.Literal):
        # Literal.value is mutable (the stratum substitutes context
        # bounds and period placeholders in place); read it per call.
        return lambda env, e=expr: e.value
    if isinstance(expr, ast.Name):
        return _compile_name(expr, layout)
    if isinstance(expr, ast.Parenthesized):
        return _compile(executor, expr.expr, layout)
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(executor, expr, layout)
    if isinstance(expr, ast.UnaryOp):
        operand_c = _compile(executor, expr.operand, layout)
        if expr.op == "NOT":
            return lambda env: logic_not(operand_c(env))
        return lambda env: _negate(operand_c(env))
    if isinstance(expr, ast.FunctionCall):
        return _compile_call(executor, expr, layout)
    if isinstance(expr, ast.Cast):
        inner_c = _compile(executor, expr.expr, layout)
        target = expr.target
        return lambda env: coerce(inner_c(env), target)
    if isinstance(expr, ast.CaseExpr):
        return _compile_case(executor, expr, layout)
    if isinstance(expr, ast.IsNullPredicate):
        inner_c = _compile(executor, expr.expr, layout)
        if expr.negated:
            return lambda env: inner_c(env) is not Null
        return lambda env: inner_c(env) is Null
    if isinstance(expr, ast.BetweenPredicate):
        return _compile_between(executor, expr, layout)
    if isinstance(expr, ast.InPredicate):
        return _compile_in(executor, expr, layout)
    if isinstance(expr, ast.ExistsPredicate):
        subquery = expr.subquery
        negated = expr.negated
        def exists_closure(env: Env) -> Any:
            result = executor.execute_select(subquery, env)
            answer = len(result.rows) > 0
            return not answer if negated else answer
        return exists_closure
    if isinstance(expr, ast.LikePredicate):
        return _compile_like(executor, expr, layout)
    if isinstance(expr, ast.ScalarSubquery):
        select = expr.select
        def scalar_closure(env: Env) -> Any:
            result = executor.execute_select(select, env)
            if not result.rows:
                return Null
            if len(result.rows) > 1:
                raise CardinalityError("scalar subquery returned more than one row")
            return result.rows[0][0]
        return scalar_closure
    raise _Unsupported(type(expr).__name__)


def _compile_name(expr: ast.Name, layout: Layout) -> Compiled:
    qualifier, name = expr.qualifier, expr.name
    qual = qualifier.lower() if qualifier is not None else None
    key = name.lower()
    if qual is not None:
        colmap = layout.get(qual)
        if colmap is not None:
            index = colmap.get(key)
            if index is not None:
                def qualified_slot(env: Env) -> Any:
                    binding = env.bindings.get(qual)
                    if binding is not None and binding.columns is colmap:
                        return binding.row[index]
                    return env.lookup_keyed(qual, key, qualifier, name)
                return qualified_slot
        return lambda env: env.lookup_keyed(qual, key, qualifier, name)
    hits = [
        (alias, colmap, colmap[key])
        for alias, colmap in layout.items()
        if key in colmap
    ]
    if len(hits) == 1:
        alias, colmap, index = hits[0]
        def bare_slot(env: Env) -> Any:
            binding = env.bindings.get(alias)
            if binding is not None and binding.columns is colmap:
                return binding.row[index]
            return env.lookup_keyed(None, key, None, name)
        return bare_slot
    # zero hits (parent env / frame variable) or an ambiguity: resolve
    # dynamically so the interpreted rules (and errors) apply verbatim
    return lambda env: env.lookup_keyed(None, key, None, name)


def _compile_binary(
    executor: Executor, expr: ast.BinaryOp, layout: Layout
) -> Compiled:
    left_c = _compile(executor, expr.left, layout)
    right_c = _compile(executor, expr.right, layout)
    op = expr.op
    if op == "AND":
        def and_closure(env: Env) -> Any:
            left = left_c(env)
            if left is False:
                return False
            return logic_and(left, right_c(env))
        return and_closure
    if op == "OR":
        def or_closure(env: Env) -> Any:
            left = left_c(env)
            if left is True:
                return True
            return logic_or(left, right_c(env))
        return or_closure
    if op == "=":
        def eq_closure(env: Env) -> Any:
            verdict = compare(left_c(env), right_c(env))
            if verdict is Unknown:
                return Unknown
            return verdict == 0
        return eq_closure
    if op in ("<>", "<", "<=", ">", ">="):
        return lambda env: _apply_binary(op, left_c(env), right_c(env))
    return lambda env: _apply_binary(op, left_c(env), right_c(env))


def _compile_call(
    executor: Executor, expr: ast.FunctionCall, layout: Layout
) -> Compiled:
    from repro.sqlengine.routines import RoutineInterpreter

    name = expr.name
    upper = name.upper()
    arg_cs = [_compile(executor, a, layout) for a in expr.args]
    catalog = executor.db.catalog
    db = executor.db
    interpreter = RoutineInterpreter(executor)

    def call_closure(env: Env) -> Any:
        if catalog.has_routine(name):
            return interpreter.invoke_function(name, [c(env) for c in arg_cs])
        if upper == "CURRENT_DATE":
            return db.now
        if fn.is_aggregate(upper):
            raise ExecutionError(
                f"aggregate {name} used outside of a grouped query"
            )
        if fn.is_scalar_builtin(upper):
            return fn.call_scalar_builtin(upper, [c(env) for c in arg_cs])
        raise CatalogError(f"no such function: {name}")

    return call_closure


def _compile_case(
    executor: Executor, expr: ast.CaseExpr, layout: Layout
) -> Compiled:
    operand_c = (
        _compile(executor, expr.operand, layout)
        if expr.operand is not None
        else None
    )
    whens = [
        (_compile(executor, when, layout), _compile(executor, then, layout))
        for when, then in expr.whens
    ]
    else_c = (
        _compile(executor, expr.else_expr, layout)
        if expr.else_expr is not None
        else None
    )

    def case_closure(env: Env) -> Any:
        if operand_c is not None:
            operand = operand_c(env)
            for when_c, then_c in whens:
                if compare(operand, when_c(env)) == 0:
                    return then_c(env)
        else:
            for when_c, then_c in whens:
                if truth(when_c(env)):
                    return then_c(env)
        if else_c is not None:
            return else_c(env)
        return Null

    return case_closure


def _compile_between(
    executor: Executor, expr: ast.BetweenPredicate, layout: Layout
) -> Compiled:
    value_c = _compile(executor, expr.expr, layout)
    low_c = _compile(executor, expr.low, layout)
    high_c = _compile(executor, expr.high, layout)
    negated = expr.negated

    def between_closure(env: Env) -> Any:
        value = value_c(env)
        lower = compare(value, low_c(env))
        upper = compare(value, high_c(env))
        if lower is Unknown or upper is Unknown:
            return Unknown
        answer = lower >= 0 and upper <= 0
        return (not answer) if negated else answer

    return between_closure


def _compile_in(
    executor: Executor, expr: ast.InPredicate, layout: Layout
) -> Compiled:
    value_c = _compile(executor, expr.expr, layout)
    negated = expr.negated
    subquery = expr.subquery
    item_cs = (
        [_compile(executor, e, layout) for e in expr.items or []]
        if subquery is None
        else None
    )

    def in_closure(env: Env) -> Any:
        value = value_c(env)
        if subquery is not None:
            result = executor.execute_select(subquery, env)
            candidates = [row[0] for row in result.rows]
        else:
            candidates = [c(env) for c in item_cs]
        saw_unknown = False
        for candidate in candidates:
            verdict = compare(value, candidate)
            if verdict is Unknown:
                saw_unknown = True
            elif verdict == 0:
                return False if negated else True
        if saw_unknown:
            return Unknown
        return True if negated else False

    return in_closure


def _compile_like(
    executor: Executor, expr: ast.LikePredicate, layout: Layout
) -> Compiled:
    value_c = _compile(executor, expr.expr, layout)
    pattern_c = _compile(executor, expr.pattern, layout)
    negated = expr.negated
    regex_cache: dict = {}

    def like_closure(env: Env) -> Any:
        value = value_c(env)
        pattern = pattern_c(env)
        if value is Null or pattern is Null:
            return Unknown
        text = str(pattern)
        regex = regex_cache.get(text)
        if regex is None:
            regex = regex_cache[text] = _like_regex(text)
        answer = regex.fullmatch(str(value)) is not None
        return (not answer) if negated else answer

    return like_closure


# ---------------------------------------------------------------------------
# grouped compilation (mirrors Executor._evaluate_grouped)
# ---------------------------------------------------------------------------


def _compile_g(
    executor: Executor, expr: ast.Expression, layout: Layout
) -> CompiledGrouped:
    if isinstance(expr, ast.FunctionCall) and fn.is_aggregate(expr.name):
        return _compile_g_aggregate(executor, expr, layout)
    if isinstance(expr, ast.BinaryOp):
        left_c = _compile_g(executor, expr.left, layout)
        right_c = _compile_g(executor, expr.right, layout)
        op = expr.op
        # no short circuit in the grouped evaluator: both sides evaluate
        if op == "AND":
            return lambda group, base: logic_and(
                left_c(group, base), right_c(group, base)
            )
        if op == "OR":
            return lambda group, base: logic_or(
                left_c(group, base), right_c(group, base)
            )
        return lambda group, base: _apply_binary(
            op, left_c(group, base), right_c(group, base)
        )
    if isinstance(expr, ast.Parenthesized):
        return _compile_g(executor, expr.expr, layout)
    if isinstance(expr, ast.UnaryOp):
        operand_c = _compile_g(executor, expr.operand, layout)
        if expr.op == "NOT":
            return lambda group, base: logic_not(operand_c(group, base))
        return lambda group, base: _negate(operand_c(group, base))
    if isinstance(expr, ast.Cast):
        inner_c = _compile_g(executor, expr.expr, layout)
        target = expr.target
        return lambda group, base: coerce(inner_c(group, base), target)
    # every other form evaluates per-row on a representative group row
    row_c = _compile(executor, expr, layout)
    return lambda group, base: row_c(group[0] if group else base)


def _compile_g_aggregate(
    executor: Executor, expr: ast.FunctionCall, layout: Layout
) -> CompiledGrouped:
    name = expr.name
    star = expr.star
    distinct = expr.distinct
    catalog = executor.db.catalog
    if not star and not expr.args:
        raise _Unsupported(f"aggregate {name} with no argument")
    arg_c = _compile(executor, expr.args[0], layout) if expr.args else None
    # a user routine shadowing the aggregate name is resolved per call,
    # exactly like the interpreted evaluator does
    row_c = _compile(executor, expr, layout)

    def aggregate_closure(group: list, base: Env) -> Any:
        if not catalog.has_routine(name):
            if star:
                return fn.evaluate_aggregate(name, [None] * len(group), star=True)
            values = [arg_c(row_env) for row_env in group]
            return fn.evaluate_aggregate(name, values, distinct=distinct)
        return row_c(group[0] if group else base)

    return aggregate_closure
