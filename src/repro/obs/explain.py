"""``EXPLAIN [ANALYZE]`` rendering for the stratum and the engine.

``EXPLAIN <stmt>`` answers *what would run*: the strategy the §VII-F
heuristic picks (and which rule fired), the resolved temporal context,
the constant-period count, the conventional SQL the statement
transforms into, the routine clones it needs, and the engine's bound
plan — all without executing the statement.

``EXPLAIN ANALYZE <stmt>`` executes it with tracing enabled and adds
measured facts: wall time, slice count and per-slice latency, routine
invocations, plan/transform cache traffic, rows scanned/written, and
the span tree.

Everything returns an :class:`ExplainResult`, which duck-types enough
of a result set (``columns`` / ``rows``) for the shell to print while
keeping ``text()`` for golden-file tests.
"""

from __future__ import annotations

import time
from typing import Any, Optional, TYPE_CHECKING

from repro.sqlengine import ast_nodes as ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.sqlengine.engine import Database
    from repro.temporal.stratum import TemporalStratum


class ExplainResult:
    """Rendered EXPLAIN output: one line per row."""

    def __init__(self, lines: list[str], result: Any = None) -> None:
        self.lines = lines
        self.columns = ["plan"]
        self.rows = [[line] for line in lines]
        # EXPLAIN ANALYZE executed the statement; its (discarded) result
        # is kept for callers that want to inspect it
        self.result = result

    def text(self) -> str:
        return "\n".join(self.lines)

    def __len__(self) -> int:
        return len(self.lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ExplainResult({len(self.lines)} lines)"


# ---------------------------------------------------------------------------
# engine plan rendering
# ---------------------------------------------------------------------------


def describe_plan(plan: Any, depth: int = 0) -> list[str]:
    """Text tree for a bound plan (SelectPlan / DML plans / sources)."""
    from repro.sqlengine import planner

    pad = "  " * depth
    if plan is None:
        return [pad + "(interpreted: statement not plannable)"]
    if isinstance(plan, planner.SelectPlan):
        shape = []
        if plan.grouped:
            shape.append("grouped")
        if plan.distinct:
            shape.append("distinct")
        if plan.order_entries:
            shape.append("ordered")
        suffix = f" [{', '.join(shape)}]" if shape else ""
        lines = [pad + f"Select ({len(plan.columns)} columns{suffix})"]
        if plan.where_c is not None:
            if plan.single_scan is not None:
                lines.append(
                    pad + "  filter: vectorized selection (evaluated in scan)"
                )
            else:
                lines.append(pad + "  filter: compiled predicate")
        for source in plan.sources:
            lines.extend(_describe_source(source, depth + 1))
        return lines
    if isinstance(plan, planner.InsertPlan):
        return [pad + f"Insert {plan.table} ({len(plan.value_rows or [])} rows)"
                if plan.select is None
                else pad + f"Insert {plan.table} (from query)"]
    if isinstance(plan, planner.UpdatePlan):
        return [pad + f"Update {plan.table}"]
    if isinstance(plan, planner.DeletePlan):
        return [pad + f"Delete {plan.table}"]
    if isinstance(plan, planner.IntervalJoin):
        shape = []
        if plan.residual_conjuncts:
            shape.append(f"residual: {plan.residual_conjuncts} conjuncts")
        if plan.distinct:
            shape.append("distinct per period")
        suffix = f" [{'; '.join(shape)}]" if shape else ""
        lines = [pad + f"IntervalJoin ({len(plan.inputs)} inputs{suffix})"]
        for aligned in plan.inputs:
            lines.extend(describe_plan(aligned, depth + 1))
        return lines
    if isinstance(plan, planner.TemporalAlign):
        alias = f" AS {plan.alias}" if plan.alias != plan.name.lower() else ""
        if plan.temporal:
            begin_column, end_column = plan.pair
            head = f"TemporalAlign {plan.name}{alias} ({begin_column}/{end_column})"
        else:
            head = f"TemporalAlign {plan.name}{alias} (non-temporal: every period)"
        note = (
            f" (vectorized filter: {plan.kernel_count} kernels)"
            if plan.kernel_count
            else ""
        )
        return [pad + head + note]
    return [pad + type(plan).__name__]


def _scan_filter_note(source: Any) -> str:
    """How the scan's pushed-down conjuncts will be evaluated."""
    if not source.conjuncts:
        return ""
    batch = source.batch
    if batch is not None and batch.consumes_all:
        return f" (vectorized filter: {len(batch.kernels)} kernels)"
    return " (row-at-a-time filter)"


def _describe_source(source: Any, depth: int) -> list[str]:
    from repro.sqlengine import planner

    pad = "  " * depth
    if isinstance(source, planner._IntervalScan):
        alias = f" AS {source.alias}" if source.alias.lower() != source.name.lower() else ""
        begin_column, end_column = source.pair
        return [
            pad + f"IntervalIndexScan {source.name}{alias}"
            f" ({begin_column}/{end_column})" + _scan_filter_note(source)
        ]
    if isinstance(source, planner._Scan):
        alias = f" AS {source.alias}" if source.alias.lower() != source.name.lower() else ""
        return [pad + f"Scan {source.name}{alias}{_scan_filter_note(source)}"]
    if isinstance(source, planner._View):
        return [pad + f"View {source.name}"]
    if isinstance(source, planner._Subquery):
        return [pad + f"Subquery AS {source.key}"]
    if isinstance(source, planner._TableFunc):
        return [pad + f"TableFunction {source.name} AS {source.key}"]
    if isinstance(source, (planner._JoinNode, planner._LeftJoinNode)):
        kind = "LeftJoin" if isinstance(source, planner._LeftJoinNode) else "Join"
        lines = [pad + kind]
        lines.extend(_describe_source(source.left, depth + 1))
        lines.extend(_describe_source(source.right, depth + 1))
        return lines
    return [pad + type(source).__name__]


def _engine_plan_lines(db: "Database", stmt: ast.Statement) -> list[str]:
    """Bind ``stmt`` through the planner (cached) and render the plan."""
    if not isinstance(stmt, ast.Select) or stmt.set_op:
        return []
    from repro.sqlengine.planner import build_select_plan

    hit, plan = db.plan_cache.fetch(stmt, db.catalog.schema_version)
    if not hit:
        try:
            plan = build_select_plan(db.executor, stmt, None)
        except Exception:  # planner bails on names only live envs resolve
            return ["engine plan:", "  (not plannable outside execution)"]
        db.plan_cache.store(stmt, db.catalog.schema_version, plan)
    return ["engine plan:"] + ["  " + line for line in describe_plan(plan)]


# ---------------------------------------------------------------------------
# conventional (engine-level) EXPLAIN
# ---------------------------------------------------------------------------


def explain_engine_statement(
    db: "Database", stmt: ast.Statement, analyze: bool = False
) -> ExplainResult:
    """EXPLAIN for a conventional statement on a bare :class:`Database`."""
    lines = [f"statement: {stmt.to_sql()}"]
    lines.extend(_engine_plan_lines(db, stmt))
    if not analyze:
        return ExplainResult(lines)
    result, report = _run_analyzed(db, lambda: db.execute_ast(stmt))
    lines.extend(report)
    return ExplainResult(lines, result=result)


# ---------------------------------------------------------------------------
# temporal (stratum-level) EXPLAIN
# ---------------------------------------------------------------------------


def explain_statement(
    stratum: "TemporalStratum",
    stmt: ast.Statement,
    analyze: bool = False,
    strategy: Optional[Any] = None,
) -> ExplainResult:
    """EXPLAIN for a Temporal SQL/PSM statement through the stratum."""
    from repro.temporal.stratum import SlicingStrategy

    if strategy is None:
        strategy = SlicingStrategy.AUTO
    modifier = getattr(stmt, "modifier", None)
    lines = [f"statement: {stmt.to_sql()}"]
    if modifier is None:
        lines.extend(_explain_current(stratum, stmt))
    elif modifier.flavor is ast.TemporalFlavor.NONSEQUENCED:
        lines.extend(_explain_nonsequenced(stratum, stmt, modifier))
    else:
        lines.extend(_explain_sequenced(stratum, stmt, modifier, strategy))
    if not analyze:
        return ExplainResult(lines)
    db = stratum.db
    result, report = _run_analyzed(
        db, lambda: stratum.execute_ast(stmt, strategy)
    )
    lines.extend(report)
    return ExplainResult(lines, result=result)


def _explain_current(stratum: "TemporalStratum", stmt: ast.Statement) -> list[str]:
    from repro.temporal import analysis
    from repro.temporal.current import transform_current

    db = stratum.db
    touches_vt = analysis.reads_temporal(stmt, db.catalog, stratum.registry)
    touches_tt = analysis.reads_temporal(stmt, db.catalog, stratum.tt_registry)
    if not touches_vt and not touches_tt:
        lines = ["semantics: conventional (no temporal tables reached)"]
        lines.extend(_engine_plan_lines(db, stmt))
        return lines
    dims = [d for d, hit in (("valid time", touches_vt),
                             ("transaction time", touches_tt)) if hit]
    lines = [f"semantics: temporal upward compatibility (current) on {', '.join(dims)}"]
    rendered = stmt
    if touches_vt:
        result = transform_current(stmt, db.catalog, stratum.registry)
        rendered = result.statement
        if result.routines:
            lines.append(
                "routine clones: "
                + ", ".join(sorted(r.name for r in result.routines))
            )
    lines.append("transformed SQL:")
    lines.extend("  " + line for line in rendered.to_sql().splitlines())
    lines.extend(_engine_plan_lines(db, rendered))
    return lines


def _explain_nonsequenced(
    stratum: "TemporalStratum", stmt: ast.Statement, modifier: ast.TemporalModifier
) -> list[str]:
    from repro.temporal.transform_util import clone

    plain = clone(stmt)
    plain.modifier = None
    lines = [
        f"semantics: nonsequenced {modifier.dimension.lower()} time"
        " (timestamps exposed raw)"
    ]
    lines.append("transformed SQL:")
    lines.extend("  " + line for line in plain.to_sql().splitlines())
    lines.extend(_engine_plan_lines(stratum.db, plain))
    return lines


def _explain_sequenced(
    stratum: "TemporalStratum",
    stmt: ast.Statement,
    modifier: ast.TemporalModifier,
    strategy: Any,
) -> list[str]:
    from repro.sqlengine.values import Date
    from repro.temporal import analysis
    from repro.temporal.constant_periods import compute_constant_periods
    from repro.temporal.heuristic import choose_strategy, estimate_costs
    from repro.temporal.max_slicing import transform_query_max
    from repro.temporal.perst_slicing import PerstTransformer
    from repro.temporal.stratum import (
        MAX_CP_TABLE,
        SlicingStrategy,
        substitute_context,
    )
    from repro.temporal.transform_util import clone

    db = stratum.db
    registry = (
        stratum.tt_registry if modifier.dimension == "TRANSACTION" else stratum.registry
    )
    context = stratum._resolve_context(stmt, modifier, registry)
    lines = [
        f"semantics: sequenced {modifier.dimension.lower()} time",
        f"context: [{Date(context.begin).to_iso()}, {Date(context.end).to_iso()})"
        f" ({context.duration} days)",
    ]
    if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
        lines.append(
            "plan: sequenced modification (paper §VI close/split/reinsert)"
        )
        return lines
    other_registry = (
        stratum.registry if registry is stratum.tt_registry
        else stratum.tt_registry
    )
    # resolve AUTO / COST exactly the way execution would
    if strategy is SlicingStrategy.AUTO:
        choice = choose_strategy(
            stmt, db, registry, context, other_registry=other_registry
        )
        strategy = choice.strategy
        lines.append(
            f"strategy: {strategy.value}"
            f" (rule {choice.rule}: {choice.reason})"
        )
    elif strategy is SlicingStrategy.COST:
        from repro.temporal.heuristic import perst_applicable
        from repro.temporal.seqset import seqset_applicable

        applicable, why = perst_applicable(stmt, db, registry)
        covered, _s_why = seqset_applicable(
            stmt, db, registry, other_registry=other_registry
        )
        if not applicable and not covered:
            strategy = SlicingStrategy.MAX
            lines.append(f"strategy: max (cost model; PERST inapplicable: {why})")
        else:
            estimate = estimate_costs(
                stmt, db, registry, context, obs=db.obs,
                include_seqset=covered,
            )
            candidates = [(estimate.max_cost, 0, SlicingStrategy.MAX)]
            if applicable:
                candidates.append(
                    (estimate.perst_cost, 1, SlicingStrategy.PERST)
                )
            if covered and estimate.seqset_cost is not None:
                candidates.append(
                    (estimate.seqset_cost, 2, SlicingStrategy.SEQSET)
                )
            strategy = min(candidates)[2]
            costs = (
                f" max={estimate.max_cost:.4f} perst={estimate.perst_cost:.4f}"
            )
            if estimate.seqset_cost is not None:
                costs += f" seqset={estimate.seqset_cost:.4f}"
            lines.append(
                f"strategy: {strategy.value}"
                f" (cost model [{estimate.mode}]:{costs})"
            )
    else:
        lines.append(f"strategy: {strategy.value} (requested)")
    tables = analysis.reachable_temporal_tables(stmt, db.catalog, registry)
    slices = len(compute_constant_periods(db, tables, registry, context))
    lines.append(
        f"temporal tables: {', '.join(tables) if tables else '(none)'}"
    )
    indexed = [
        name
        for name in tables
        if (
            (info := registry.get(name)) is not None
            and (info.begin_column.lower(), info.end_column.lower())
            in db.catalog.get_table(name).interval_pairs
        )
    ]
    if indexed:
        state = "on" if db.interval_indexing_enabled else "off"
        lines.append(f"interval index [{state}]: {', '.join(indexed)}")
    if strategy is SlicingStrategy.SEQSET:
        from repro.temporal.seqset import SeqSetUnsupportedError, compile_seqset

        try:
            seqset_plan = compile_seqset(
                db, registry, stmt, other_registry=other_registry
            )
        except SeqSetUnsupportedError as exc:
            lines.append(f"seqset: fallback to max ({exc})")
            strategy = SlicingStrategy.MAX
        else:
            lines.append(
                f"constant periods: {slices} into {MAX_CP_TABLE}"
                " (aligned in one set-oriented pass)"
            )
            lines.append("seqset plan:")
            lines.extend("  " + line for line in describe_plan(seqset_plan.root))
            lines.append("transformed SQL:")
            lines.extend(
                "  " + line
                for line in seqset_plan.select.to_sql().splitlines()
            )
            return lines
    if strategy is SlicingStrategy.MAX:
        result = transform_query_max(stmt, db.catalog, registry, MAX_CP_TABLE)
        lines.append(
            f"constant periods: {slices} into {result.cp_table}"
            f" (one evaluation per period)"
        )
        transformed = result.statement
        clones = result.routines
    else:
        transformer = PerstTransformer(db.catalog, registry)
        result = transformer.transform(stmt)
        transformed = clone(result.statement)
        substitute_context(transformed, context)
        clones = result.routines
        if result.cp_requirements:
            reqs = ", ".join(
                f"{cp} ({', '.join(tabs)})"
                for cp, tabs in sorted(result.cp_requirements.items())
            )
            lines.append(
                f"constant periods: {slices}; per-statement loops over: {reqs}"
            )
        else:
            lines.append(
                "constant periods: not needed (algebraic fragment,"
                " single data pass)"
            )
    if clones:
        lines.append(
            "routine clones: " + ", ".join(sorted(r.name for r in clones))
        )
    lines.append("transformed SQL:")
    lines.extend("  " + line for line in transformed.to_sql().splitlines())
    lines.extend(_engine_plan_lines(db, transformed))
    return lines


# ---------------------------------------------------------------------------
# ANALYZE
# ---------------------------------------------------------------------------

_ANALYZE_COUNTERS = (
    ("plans compiled", "plans_compiled"),
    ("plan cache hits", "plan_cache_hits"),
    ("transforms", "transforms"),
    ("transform cache hits", "transform_cache_hits"),
    ("rows scanned", "rows_scanned"),
    ("rows written", "rows_written"),
)


def _run_analyzed(db: "Database", thunk) -> tuple[Any, list[str]]:
    """Execute ``thunk`` traced; render the measured report lines."""
    tracer = db.tracer
    was_enabled = tracer.enabled
    tracer.enabled = True
    before = db.stats.snapshot()
    slices_before = db.obs.value("stratum.slices")
    interval_hits_before = db.obs.value("engine.interval_index_hits")
    interval_pruned_before = db.obs.value("engine.interval_rows_pruned")
    cp_hits_before = db.obs.value("stratum.cp.cache_hits")
    degradations_before = db.obs.value("resilience.degradations.vectorized")
    cancellations_before = db.obs.value("resilience.cancellations")
    budget_stops_before = db.obs.value("resilience.budget_stops")
    retries_before = db.obs.value("wal.retries")
    started = time.perf_counter()
    try:
        result = thunk()
    finally:
        tracer.enabled = was_enabled
    elapsed = time.perf_counter() - started
    after = db.stats.snapshot()
    slices = db.obs.value("stratum.slices") - slices_before
    lines = ["measured:", f"  wall time: {elapsed * 1000.0:.3f}ms"]
    if slices:
        lines.append(
            f"  slices: {slices}"
            f" (mean {elapsed / slices * 1000.0:.3f}ms/slice)"
        )
    calls = after["total_routine_calls"] - before["total_routine_calls"]
    lines.append(f"  routine invocations: {calls}")
    lines.append(
        f"  statements executed: {after['statements'] - before['statements']}"
    )
    for label, key in _ANALYZE_COUNTERS:
        delta = after.get(key, 0) - before.get(key, 0)
        if delta:
            lines.append(f"  {label}: {delta}")
    interval_hits = db.obs.value("engine.interval_index_hits") - interval_hits_before
    if interval_hits:
        pruned = db.obs.value("engine.interval_rows_pruned") - interval_pruned_before
        lines.append(
            f"  interval index hits: {interval_hits} ({pruned} rows pruned)"
        )
    cp_hits = db.obs.value("stratum.cp.cache_hits") - cp_hits_before
    if cp_hits:
        lines.append(f"  constant-period cache hits: {cp_hits}")
    # resilience: the governor's degradations (and any watchdog events
    # a handler absorbed) must be visible, not silent
    degradations = (
        db.obs.value("resilience.degradations.vectorized") - degradations_before
    )
    if degradations:
        lines.append(
            f"  governor degradations: {degradations}"
            " (vectorized scan -> row-at-a-time)"
        )
    cancellations = (
        db.obs.value("resilience.cancellations") - cancellations_before
    )
    if cancellations:
        lines.append(f"  watchdog cancellations (handled): {cancellations}")
    budget_stops = db.obs.value("resilience.budget_stops") - budget_stops_before
    if budget_stops:
        lines.append(f"  budget stops (handled): {budget_stops}")
    retries = db.obs.value("wal.retries") - retries_before
    if retries:
        lines.append(f"  wal transient-fault retries: {retries}")
    resilience = db.resilience
    if resilience.armed:
        budgets = []
        if resilience.statement_timeout is not None:
            budgets.append(f"timeout={resilience.statement_timeout:g}s")
        if resilience.max_rows_scanned is not None:
            budgets.append(f"max_rows_scanned={resilience.max_rows_scanned}")
        if resilience.max_undo_depth is not None:
            budgets.append(f"max_undo_depth={resilience.max_undo_depth}")
        if resilience.max_resident_bytes is not None:
            budgets.append(
                f"max_resident_bytes={resilience.max_resident_bytes}"
            )
        if budgets:
            lines.append(
                "  resilience: armed (" + ", ".join(budgets) + "),"
                f" {resilience.checks} watchdog checks"
            )
    lines.append(f"  result rows: {_result_rows(result)}")
    if db.durability is not None:
        state = db.durability.state()
        lines.append(
            "  wal: generation"
            f" {state['generation']},"
            f" {state['records_written']} records"
            f" / {state['bytes_written']} bytes written,"
            f" {state['fsyncs']} fsyncs,"
            f" {state['checkpoints']} checkpoints"
        )
    if tracer.last_root is not None:
        lines.append("trace:")
        lines.extend(
            "  " + line for line in tracer.last_root.render().splitlines()
        )
    return result, lines


def _result_rows(result: Any) -> int:
    if result is None:
        return 0
    if isinstance(result, int):
        return result
    if isinstance(result, list):
        return sum(_result_rows(r) for r in result)
    try:
        return len(result)
    except TypeError:
        return 0
