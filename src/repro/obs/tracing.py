"""Structured trace spans for the stratum and engine.

A :class:`Span` is one timed region of work with attributes and child
spans; a :class:`Tracer` maintains the current span stack and keeps the
most recent completed top-level span as :attr:`Tracer.last_root`.

Tracing is **off by default** and the disabled path is a single
attribute check plus a shared no-op context manager, so instrumented
code can write::

    with db.tracer.span("stratum.transform", strategy="max") as span:
        ...
        span.set(cached=False)

unconditionally.  ``span.set`` on the no-op span is a no-op; nothing
allocates while tracing is disabled.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Optional


class Span:
    """One timed region: name, attributes, children, wall seconds."""

    __slots__ = ("name", "attrs", "children", "seconds", "_started")

    def __init__(self, name: str, attrs: Optional[dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.children: list["Span"] = []
        self.seconds: float = 0.0
        self._started: float = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes to this span."""
        self.attrs.update(attrs)

    # -- introspection ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [span for span in self.walk() if span.name == name]

    def shape(self) -> Any:
        """The tree as nested ``(name, [children...])`` — what the
        span-tree shape tests compare, independent of timings."""
        return (self.name, [child.shape() for child in self.children])

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, include_timing: bool = True) -> str:
        """Indented text tree (the ``repro trace`` / EXPLAIN ANALYZE view)."""
        lines: list[str] = []
        self._render_into(lines, 0, include_timing)
        return "\n".join(lines)

    def _render_into(self, lines: list[str], depth: int, timing: bool) -> None:
        attrs = " ".join(
            f"{key}={_fmt_attr(value)}" for key, value in self.attrs.items()
        )
        parts = [self.name]
        if timing:
            parts.append(f"({self.seconds * 1000.0:.3f}ms)")
        if attrs:
            parts.append(attrs)
        lines.append("  " * depth + " ".join(parts))
        for child in self.children:
            child._render_into(lines, depth + 1, timing)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name}, {len(self.children)} children)"


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


class _NullSpan:
    """Shared span stand-in while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NoopContext:
    """Shared context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP = _NoopContext()


class _SpanContext:
    """Context manager for one live span."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.span._started = time.perf_counter()
        self.tracer._push(self.span)
        return self.span

    def __exit__(self, *exc: Any) -> bool:
        self.span.seconds = time.perf_counter() - self.span._started
        self.tracer._pop(self.span)
        return False


class Tracer:
    """Span-stack owner; one per :class:`Database`."""

    __slots__ = ("enabled", "_stack", "last_root")

    def __init__(self) -> None:
        self.enabled = False
        self._stack: list[Span] = []
        self.last_root: Optional[Span] = None

    def span(self, name: str, /, **attrs: Any):
        """Open a span (no-op context manager when disabled).

        ``name`` is positional-only so an attribute may also be called
        ``name`` (e.g. ``span("routine", name="get_author_name")``).
        """
        if not self.enabled:
            return _NOOP
        return _SpanContext(self, Span(name, attrs))

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate enable/disable mid-flight: pop only if it is ours
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if not self._stack:
            self.last_root = span

    def reset(self) -> None:
        self._stack = []
        self.last_root = None
