"""Observability: metrics registry, trace spans, EXPLAIN rendering.

See DESIGN.md §3.3.  Every :class:`~repro.sqlengine.engine.Database`
owns a :class:`MetricsRegistry` (``db.obs``) and a :class:`Tracer`
(``db.tracer``); the stratum and engine report into them, and
``EXPLAIN [ANALYZE]`` / ``repro explain`` / ``repro trace`` read them
back out.

The explain renderer is exported lazily: :mod:`repro.obs.explain`
reaches back into :mod:`repro.sqlengine`, and the engine imports this
package at module level — eager re-export here would be a cycle.
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    Timer,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

_LAZY = {
    "ExplainResult",
    "describe_plan",
    "explain_engine_statement",
    "explain_statement",
}

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "Timer",
    "Span",
    "Tracer",
    "NULL_SPAN",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    if name in _LAZY:
        from repro.obs import explain

        return getattr(explain, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
